"""The unified host-program API: one object drives one incremental program.

Everything a host needs to run an LML program incrementally used to be
scattered over three modules with three backend-selection mechanisms
(``App.instance``, the old ``repro.testing.verify_app``, the removed
``CompiledProgram.self_adjusting_instance``).  :class:`Session` is now the
single entry point::

    from repro.api import Session

    session = Session(SOURCE)                  # LML source, app name,
                                               # App, or CompiledProgram
    xs = session.input_list([1, 2, 3])
    output = session.run(xs.head)              # initial run builds the trace
    xs.insert(1, 10)                           # edits stage; nothing re-runs
    session.propagate()                        # one change-propagation pass

    with session.batch():                      # coalesce many edits into
        xs.insert(0, 7)                        # ... one propagation pass
        xs.remove(4)                           # (auto-propagates at exit)

    session.stats()                            # meter, trace size, tables

Backend selection happens in exactly one place,
:func:`repro.backends.resolve_backend`, with precedence *explicit
``backend=`` argument > ``$REPRO_BACKEND`` > ``"interp"``*.

The edit convention, uniform across the API: an edit entry point
(:meth:`Session.edit`, ``ModList.insert/set/remove``, the marshalled input
handles) stages the change **without propagating** and returns the number
of read edges it dirtied; propagation is always an explicit
:meth:`Session.propagate` or the close of a :meth:`Session.batch` scope.

This module also hosts the canonical verification
(:func:`verify_app`, :func:`oracle_app`) and measurement
(:func:`measure_app`) drivers, reimplemented on top of ``Session``.  (Their
old homes, ``repro.testing`` and ``repro.bench.runner.measure_app``, were
deprecation shims for two releases and have been removed.)
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.backends import BACKENDS, resolve_backend
from repro.core.pipeline import CompiledProgram, compile_program
from repro.sac.engine import Batch, Engine
from repro.sac.exceptions import (
    EnginePoisonedError,
    PropagationBudgetExceeded,
    ReexecutionError,
)
from repro.sac.modifiable import Modifiable

__all__ = [
    "BACKENDS",
    "EnginePoisonedError",
    "OracleResult",
    "PropagateStats",
    "PropagationBudgetExceeded",
    "ReexecutionError",
    "Session",
    "VerificationError",
    "VerifyResult",
    "measure_app",
    "oracle_app",
    "resolve_backend",
    "values_close",
    "verify_app",
]

_UNSET = object()


@dataclass
class PropagateStats:
    """Outcome of one :meth:`Session.propagate` call.

    ``reexecuted`` counts read edges actually re-run; ``drained`` counts
    dirty-queue entries conclusively popped (the difference is stale
    entries skipped without work); ``seconds`` is wall time.

    ``path`` reports which route ran: ``"propagate"`` for a normal eager
    pass, ``"demand"`` for a lazy :meth:`Session.demand` walk,
    ``"rollback"`` when a failed re-execution was undone back to the
    last-good state (``undone`` edits reverted, ``restaged`` of them left
    staged for a later propagate), ``"rebuild"`` when the session fell
    back to a from-scratch re-run.  On a recovery path ``error`` holds
    the exception that triggered it.

    ``demanded`` / ``skipped_clean`` are filled by demand walks: the
    number of modifiables demanded and how many of those were served with
    zero propagation work because they were not suspect.
    """

    reexecuted: int
    drained: int
    seconds: float
    path: str = "propagate"
    undone: int = 0
    restaged: int = 0
    demanded: int = 0
    skipped_clean: int = 0
    error: Optional[BaseException] = None

    def __str__(self) -> str:
        if self.path == "demand":
            return (
                f"demanded in {self.seconds:.6f}s: {self.demanded} "
                f"modifiable(s) walked ({self.skipped_clean} already clean), "
                f"{self.reexecuted} reads re-executed, {self.drained} queue "
                f"entries drained"
            )
        if self.path == "rollback":
            return (
                f"rolled back in {self.seconds:.6f}s: {self.undone} edits "
                f"undone, {self.reexecuted} reads re-executed to recover, "
                f"{self.restaged} edits re-staged"
            )
        if self.path == "rebuild":
            return f"rebuilt from scratch in {self.seconds:.6f}s"
        return (
            f"propagated in {self.seconds:.6f}s: {self.reexecuted} reads "
            f"re-executed, {self.drained} queue entries drained"
        )


class Session:
    """One incremental computation: compile pipeline + engine + instance +
    edits + propagation + metering behind a single object.

    ``app`` may be:

    * LML source text -- compiled through the full pipeline;
    * the name of a registered benchmark app (``python -m repro apps``);
    * an :class:`repro.apps.base.App` object;
    * an already-compiled :class:`repro.core.pipeline.CompiledProgram`
      (the compiler options then come from the program, and the
      ``optimize``/``memoize``/``coarse`` arguments must be left at their
      defaults).

    ``backend`` resolves through :func:`repro.backends.resolve_backend`
    (explicit argument > ``$REPRO_BACKEND`` > ``"interp"``).  ``engine``
    lets several sessions share one engine (or supply a pre-instrumented
    one); ``hook`` attaches an observability hook
    (:class:`repro.obs.events.TraceHook`) before anything runs.

    ``mode`` selects the propagation discipline:

    * ``"eager"`` (default) -- :meth:`propagate` drains the whole dirty
      queue in timestamp order; reads of the output are plain peeks.
    * ``"lazy"`` -- edits only mark the affected part of the dependence
      graph *suspect*; work happens when a value is *demanded*
      (:meth:`get` / :meth:`demand`), and only the dirty cone feeding the
      demanded modifiable re-executes.  :meth:`propagate` still works and
      flushes everything.

    When an ``engine`` is supplied its mode wins; asking for
    ``mode="lazy"`` with an eager engine is an error.
    """

    def __init__(
        self,
        app: Any,
        *,
        backend: Optional[str] = None,
        optimize: bool = True,
        memoize: bool = True,
        coarse: bool = False,
        engine: Optional[Engine] = None,
        hook: Optional[Any] = None,
        mode: str = "eager",
        feeds: Optional[str] = None,
        feeds_oracle: Optional[bool] = None,
    ) -> None:
        if mode not in ("eager", "lazy"):
            raise ValueError(f'mode must be "eager" or "lazy", got {mode!r}')
        if engine is not None and feeds is not None and engine.feeds_impl != feeds:
            raise ValueError(
                f"feeds={feeds!r} conflicts with the supplied engine "
                f"(feeds={engine.feeds_impl!r})"
            )
        if engine is not None and mode == "lazy" and not engine.lazy:
            raise ValueError(
                'mode="lazy" conflicts with the supplied eager engine; '
                'construct it with Engine(mode="lazy")'
            )
        self.backend = resolve_backend(backend)
        self.app = None
        if isinstance(app, CompiledProgram):
            if (optimize, memoize, coarse) != (True, True, False):
                raise ValueError(
                    "compiler options cannot be overridden for an "
                    "already-compiled program"
                )
            self.program = app
        else:
            if isinstance(app, str):
                from repro.apps import REGISTRY

                if app in REGISTRY:
                    app = REGISTRY[app]
                else:
                    self.program = compile_program(
                        app,
                        memoize=memoize,
                        optimize_flag=optimize,
                        coarse=coarse,
                    )
            if self.app is None and not isinstance(app, str):
                # An App object (directly or via the registry).
                self.app = app
                self.program = app.compiled(
                    memoize=memoize, optimize_flag=optimize, coarse=coarse
                )
        self.options = self.program.options
        self.engine = (
            engine
            if engine is not None
            else Engine(mode=mode, feeds=feeds, feeds_oracle=feeds_oracle)
        )
        self.mode = self.engine.mode
        #: relevance implementation carried to :meth:`rebuild` replacements.
        self.feeds = self.engine.feeds_impl
        if hook is not None:
            self.engine.attach_hook(hook)
        self.instance = None
        self.input_handle = None
        self.input_value: Any = _UNSET
        self.output: Any = None
        self.propagations = 0
        self.demands = 0
        self.rebuilds = 0
        # Wire-addressable handle layer (see :meth:`handle`): stable
        # string names for modifiables, so out-of-process callers can
        # address cells without holding engine objects.
        self._handles: Dict[str, Modifiable] = {}
        self._handle_names: Dict[int, str] = {}
        self._handle_seq = 0
        #: Optional write-ahead journal (see :meth:`enable_journal`).
        self._journal = None

    # -- running --------------------------------------------------------

    def _ensure_instance(self):
        if self.instance is None:
            self.instance = self.program._self_adjusting_instance(
                self.engine, backend=self.backend
            )
        return self.instance

    def prepare(self, data: Any = _UNSET, *, input_value: Any = _UNSET) -> "Session":
        """Stage the instance and (optionally) the input without running.

        For an app-backed session, ``data`` is plain Python input; the
        app's marshaller builds the runtime input and the change *handle*
        (exposed as :attr:`input_handle`).  Splitting preparation from
        :meth:`run` keeps input construction and backend staging out of
        timed sections, as the paper's methodology requires.
        """
        self._ensure_instance()
        if data is not _UNSET:
            if self.app is None:
                raise ValueError(
                    "data= requires an app-backed Session; pass input_value="
                )
            self.input_value, self.input_handle = self.app.make_sa_input(
                self.engine, data
            )
        elif input_value is not _UNSET:
            self.input_value = input_value
        return self

    def run(self, input_value: Any = _UNSET, *, data: Any = _UNSET) -> Any:
        """Perform a complete (trace-building) run and return the output.

        ``input_value`` is a runtime input (a modifiable, constructor
        value, tuple, ...); ``data`` is plain Python input for an
        app-backed session (marshalled via the app, setting
        :attr:`input_handle`).  With neither, runs on whatever a previous
        :meth:`prepare` staged.  May be called again with a new input to
        grow the same trace (each run extends the engine's timeline).
        """
        if data is not _UNSET or input_value is not _UNSET:
            self.prepare(data, input_value=input_value)
        else:
            self._ensure_instance()
        if self.input_value is _UNSET:
            raise ValueError("no input: pass input_value=/data= or prepare() first")
        # Transactional initial run: a raising program must not leave a
        # half-built trace behind, or later runs on this engine would stack
        # on garbage.  Truncate back to the pre-run checkpoint and re-raise.
        checkpoint = self.engine.now
        try:
            self.output = self.instance.apply(self.input_value)
        except BaseException:
            self.engine.truncate_after(checkpoint)
            raise
        return self.output

    # -- edits and propagation ------------------------------------------

    def edit(self, mod: Union[str, Modifiable], value: Any) -> int:
        """Stage one input edit; return the number of reads it dirtied.

        ``mod`` is a modifiable or a handle string bound via
        :meth:`handle`.  Nothing re-executes until :meth:`propagate` (or
        the enclosing :meth:`batch` scope closes).  A return of 0 means
        the new value compared equal and the edit cut off immediately.

        With a write-ahead journal enabled (:meth:`enable_journal`) the
        edit is durably appended *before* this method returns -- callers
        may acknowledge it to clients as soon as they see the result --
        and the edit must address a named handle with a
        JSON-representable value so recovery can replay it.
        """
        if self._journal is not None:
            # Resolve the journal name and serialize the record *before*
            # staging: an edit that recovery could never replay (no named
            # handle, non-JSON value) is refused with the engine
            # untouched.
            name = self._journal_name(mod)
            target = self.resolve(mod)
            record = self._journal.encode([(name, value)])
            restore = target.value
            dirtied = self.engine.change(target, value)
            try:
                self._journal.commit(record)
            except BaseException:
                # The durable write failed after the edit was staged:
                # undo it, so the state the caller sees (and any later
                # checkpoint) agrees with the failure they are told
                # about.  The re-dirtied reads cut off on equality at
                # the next propagation.
                if dirtied:
                    try:
                        self.engine.change(target, restore)
                    except Exception:
                        pass  # the journal failure is the primary error
                raise
            return dirtied
        return self.engine.change(self.resolve(mod), value)

    def batch(
        self,
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Batch:
        """Open a batched-edit scope; one propagation pass at exit.

        See :meth:`repro.sac.engine.Engine.batch`: edits inside the scope
        coalesce, and a read that observed several edited inputs
        re-executes once instead of once per edit.

        Under ``mode="lazy"`` the scope stages its edits without a
        closing propagation -- the drain is deferred to the next
        :meth:`get` / :meth:`demand`, which still re-executes each
        affected read once for the whole batch.
        """
        return self.engine.batch(budget=budget, deadline=deadline)

    def propagate(
        self,
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
        on_error: str = "raise",
    ) -> PropagateStats:
        """Propagate all staged edits; return :class:`PropagateStats`.

        ``budget`` / ``deadline`` bound the pass (see
        :meth:`repro.sac.engine.Engine.propagate`); on overrun a
        :class:`PropagationBudgetExceeded` is raised and a later call
        resumes the remaining work.

        ``on_error`` selects the recovery policy when a re-executed
        reader raises (see DESIGN.md Section 7):

        * ``"raise"`` (default) -- let the typed
          :class:`~repro.sac.exceptions.ReexecutionError` propagate; the
          failing edge stays queued for retry.
        * ``"rollback"`` -- undo the staged edits back to the last-good
          state via :meth:`repro.sac.engine.Engine.rollback` and re-stage
          them; the returned stats have ``path="rollback"``.  Only
          possible while the trace is consistent: a poisoned engine
          re-raises instead.
        * ``"rebuild"`` -- fall back to a from-scratch re-run on the
          current input data (:meth:`rebuild`); works even from a
          poisoned engine, because it replaces the engine outright.
        """
        if on_error not in ("raise", "rollback", "rebuild"):
            raise ValueError(
                f'on_error must be "raise", "rollback" or "rebuild", '
                f"got {on_error!r}"
            )
        meter = self.engine.meter
        drained_before = meter.queue_drained
        started = time.perf_counter()
        try:
            reexecuted = self.engine.propagate(budget=budget, deadline=deadline)
        except (ReexecutionError, EnginePoisonedError) as exc:
            if on_error == "raise":
                raise
            if on_error == "rollback":
                if isinstance(exc, EnginePoisonedError) or not exc.consistent:
                    raise  # nothing consistent left to roll back to
                undone, recovery_reexecuted, restaged = self.engine.rollback()
                self.propagations += 1
                return PropagateStats(
                    reexecuted=recovery_reexecuted,
                    drained=meter.queue_drained - drained_before,
                    seconds=time.perf_counter() - started,
                    path="rollback",
                    undone=undone,
                    restaged=restaged,
                    error=exc,
                )
            self.rebuild()
            self.propagations += 1
            return PropagateStats(
                reexecuted=0,
                drained=0,
                seconds=time.perf_counter() - started,
                path="rebuild",
                error=exc,
            )
        seconds = time.perf_counter() - started
        self.propagations += 1
        return PropagateStats(
            reexecuted=reexecuted,
            drained=meter.queue_drained - drained_before,
            seconds=seconds,
        )

    def get(
        self,
        mod: Union[str, Modifiable],
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Any:
        """Return the up-to-date value of one modifiable.

        ``mod`` is a modifiable or a handle string bound via
        :meth:`handle`.  In lazy mode this is the demand entry point:
        only the dirty subgraph feeding ``mod`` re-executes (zero work
        when ``mod`` is not suspect).  In eager mode it is a plain peek
        -- the caller is expected to have propagated already.
        """
        mod = self.resolve(mod)
        if self.mode == "lazy":
            return self.engine.demand(mod, budget=budget, deadline=deadline)
        return mod.peek()

    def demand(
        self,
        target: Any = _UNSET,
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
        on_error: str = "raise",
    ) -> PropagateStats:
        """Bring ``target`` (default: the session's output) fully up to
        date; return :class:`PropagateStats` with ``path="demand"``.

        Unlike :meth:`get`, which demands a single modifiable, this walks
        the whole *value* -- every modifiable reachable through
        constructor values and tuples is demanded, so reading the result
        back afterwards observes no stale cell.  Dirty work that feeds
        nothing in ``target`` stays queued for a later demand or
        propagate.

        ``target`` may also be a handle string (see :meth:`handle`) or a
        list of targets (values, modifiables, handle strings): all of
        them are brought up to date in *one* reachability-filtered drain
        -- shared feeders re-execute once, not once per target -- which
        is how a server serves a batch of reads in a single pass.

        ``budget`` / ``deadline`` bound the combined walk the same way
        they bound :meth:`propagate`; ``on_error`` supports the same
        ``"raise"`` / ``"rollback"`` / ``"rebuild"`` recovery policies.
        Requires ``mode="lazy"``.
        """
        if on_error not in ("raise", "rollback", "rebuild"):
            raise ValueError(
                f'on_error must be "raise", "rollback" or "rebuild", '
                f"got {on_error!r}"
            )
        if self.mode != "lazy":
            raise ValueError('demand() requires Session(mode="lazy")')
        if target is _UNSET:
            if self.output is None:
                raise ValueError(
                    "no output to demand: run() first or pass a target"
                )
            target = self.output
        elif isinstance(target, str):
            target = self.resolve(target)
        elif isinstance(target, (list, tuple)):
            target = tuple(
                self.resolve(t) if isinstance(t, str) else t for t in target
            )
        meter = self.engine.meter
        drained_before = meter.queue_drained
        reexec_before = meter.edges_reexecuted
        demands_before = meter.demands
        clean_before = meter.demands_clean
        started = time.perf_counter()
        try:
            self._demand_value(target, budget, deadline)
        except (ReexecutionError, EnginePoisonedError) as exc:
            if on_error == "raise":
                raise
            if on_error == "rollback":
                if isinstance(exc, EnginePoisonedError) or not exc.consistent:
                    raise
                undone, recovery_reexecuted, restaged = self.engine.rollback()
                self.demands += 1
                return PropagateStats(
                    reexecuted=recovery_reexecuted,
                    drained=meter.queue_drained - drained_before,
                    seconds=time.perf_counter() - started,
                    path="rollback",
                    undone=undone,
                    restaged=restaged,
                    error=exc,
                )
            self.rebuild()
            self.demands += 1
            return PropagateStats(
                reexecuted=0,
                drained=0,
                seconds=time.perf_counter() - started,
                path="rebuild",
                error=exc,
            )
        self.demands += 1
        return PropagateStats(
            reexecuted=meter.edges_reexecuted - reexec_before,
            drained=meter.queue_drained - drained_before,
            seconds=time.perf_counter() - started,
            path="demand",
            demanded=meter.demands - demands_before,
            skipped_clean=meter.demands_clean - clean_before,
        )

    def _demand_value(
        self, value: Any, budget: Optional[int], deadline: Optional[float]
    ) -> None:
        """Demand every modifiable reachable from ``value``.

        Iterative walk over the runtime value grammar -- the same one
        :func:`repro.interp.values.deep_read` reads back (modifiables,
        constructor values, tuples, ref cells; both backends share the
        representation).  A shared ``budget``/``deadline`` spans all the
        :meth:`Engine.demand` calls it makes.

        One pass is not enough: demanding a later modifiable can
        re-execute *shared* feeders and re-dirty one visited (clean)
        earlier in the same pass -- msort's merge cells share sublists,
        so cell 50's demand can stale cells 0..49 again.  The walk
        therefore repeats until a whole pass re-executes nothing, which
        proves every reachable modifiable was clean when visited.  Extra
        passes over a consistent value are cheap: a clean demand is the
        O(1) fast path.

        Within a pass, modifiables discovered at the same container depth
        form a *frontier* demanded in one multi-target
        :meth:`Engine.demand` call -- one reachability-filtered drain
        serves the whole level, so siblings (a tuple of outputs, a
        vector's cells) never pay per-target drain overhead.
        """
        from repro.interp.values import ConValue, RefCell

        engine = self.engine
        meter = engine.meter
        reexec_base = meter.edges_reexecuted
        deadline_at = (
            None if deadline is None else time.monotonic() + deadline
        )
        while True:
            pass_base = meter.edges_reexecuted
            # Interning can share constructor subtrees; dedup every
            # container by identity so each pass is linear in the live
            # DAG, not the tree.
            seen = set()
            stack = [value]
            frontier: List[Modifiable] = []
            while stack or frontier:
                while stack:
                    v = stack.pop()
                    if isinstance(v, (Modifiable, ConValue, tuple, RefCell)):
                        if id(v) in seen:
                            continue
                        seen.add(id(v))
                    if isinstance(v, Modifiable):
                        frontier.append(v)
                    elif isinstance(v, ConValue):
                        if v.arg is not None:
                            stack.append(v.arg)
                    elif isinstance(v, tuple):
                        stack.extend(v)
                    elif isinstance(v, RefCell):
                        stack.append(v.value)
                if frontier:
                    remaining_budget = None
                    if budget is not None:
                        spent = meter.edges_reexecuted - reexec_base
                        remaining_budget = max(budget - spent, 0)
                    remaining_deadline = None
                    if deadline_at is not None:
                        remaining_deadline = max(
                            deadline_at - time.monotonic(), 0.0
                        )
                    stack.extend(
                        engine.demand(
                            frontier,
                            budget=remaining_budget,
                            deadline=remaining_deadline,
                        )
                    )
                    frontier = []
            if meter.edges_reexecuted == pass_base:
                return

    def rebuild(self) -> Any:
        """From-scratch fallback: re-run on the current input data.

        Marshals the data currently held by :attr:`input_handle` into a
        *fresh*
        engine, re-runs the program, and swaps the new engine, instance,
        handle and output into this session -- the incremental trace is
        abandoned, which is always safe (self-adjusting semantics
        guarantee a from-scratch run is the reference behaviour).  This
        is the escape hatch that works even when the old engine is
        poisoned.  The old engine's hook is deliberately *not* carried
        over: a hook can itself be the failure source (fault injection),
        and a rebuild must converge; re-attach one via
        ``session.engine.attach_hook`` afterwards if wanted.

        Requires an app-backed session whose input was marshalled via
        ``run(data=...)``/``prepare(data)`` (the handle is what lets the
        session reconstruct the current input).
        """
        if self.app is None or self.input_handle is None:
            raise ValueError(
                "rebuild() requires an app-backed session with marshalled "
                "input (run with data=...)"
            )
        data = self.app.handle_data(self.input_handle)
        self.engine = Engine(mode=self.mode, feeds=self.feeds)
        self.instance = None
        self.input_handle = None
        self.input_value = _UNSET
        # Every modifiable the old engine owned is dead; handle names do
        # not carry over (the caller re-binds against the fresh input).
        self._handles.clear()
        self._handle_names.clear()
        self.rebuilds += 1
        return self.run(data=data)

    def compact(self) -> dict:
        """Force a trace-table compaction (normally automatic); return the
        removed-entry counts."""
        return self.engine.compact()

    # -- inputs ---------------------------------------------------------

    def input_list(self, items, nil: str = "Nil", cons: str = "Cons"):
        """Build a modifiable list input bound to this session's engine."""
        from repro.interp.marshal import ModListInput

        return ModListInput(self.engine, items, nil=nil, cons=cons)

    def make_input(self, value: Any) -> Modifiable:
        """Create one input modifiable on this session's engine."""
        return self.engine.make_input(value)

    # -- handles: wire-addressable names for modifiables ----------------

    def handle(self, mod: Modifiable, name: Optional[str] = None) -> str:
        """Bind ``mod`` to a stable string handle and return it.

        The handle layer is what lets a :class:`Session` be driven from
        outside the process (see ``repro.server``): a handle is a plain
        serializable string that :meth:`edit`, :meth:`get` and
        :meth:`demand` accept anywhere they accept a
        :class:`~repro.sac.modifiable.Modifiable`.

        Binding is idempotent: a modifiable already bound returns its
        existing handle (an explicit conflicting ``name`` is an error).
        Without ``name`` a fresh ``"mod:<k>"`` name is generated.
        Handles do not survive :meth:`rebuild` -- a rebuild replaces the
        engine and every modifiable in it, so the registry is cleared and
        the caller re-binds against the fresh input handle.
        """
        if not isinstance(mod, Modifiable):
            raise TypeError(
                f"handle() binds a Modifiable, got {type(mod).__name__}"
            )
        existing = self._handle_names.get(id(mod))
        if existing is not None:
            if name is not None and name != existing:
                raise ValueError(
                    f"modifiable is already bound to handle {existing!r}"
                )
            return existing
        if name is None:
            name = f"mod:{self._handle_seq}"
            self._handle_seq += 1
        elif name in self._handles:
            if self._handles[name] is not mod:
                raise ValueError(
                    f"handle {name!r} is already bound to a different "
                    f"modifiable"
                )
            return name
        self._handles[name] = mod
        self._handle_names[id(mod)] = name
        return name

    def resolve(self, ref: Union[str, Modifiable]) -> Modifiable:
        """Return the modifiable a handle names (modifiables pass through).

        Raises :class:`KeyError` for an unknown handle string.
        """
        if isinstance(ref, Modifiable):
            return ref
        if not isinstance(ref, str):
            raise TypeError(
                f"resolve() takes a handle string or a Modifiable, got "
                f"{type(ref).__name__}"
            )
        try:
            return self._handles[ref]
        except KeyError:
            raise KeyError(f"unknown handle {ref!r}") from None

    def handles(self) -> Dict[str, Modifiable]:
        """A snapshot of the current handle registry (name -> modifiable)."""
        return dict(self._handles)

    # -- durability (DESIGN.md Section 10) -------------------------------

    def snapshot(self, path: str) -> dict:
        """Write a content-addressed snapshot of this session to ``path``.

        The engine must be quiescent (no propagation/batch in flight);
        staged lazy edits are fine and round-trip.  Returns the snapshot
        header (content address, sizes).  Restore with :meth:`restore`.
        """
        from repro.persist import save_session

        return save_session(self, path)

    @classmethod
    def restore(
        cls,
        path: str,
        app: Any = None,
        *,
        backend: Optional[str] = None,
        hook: Optional[Any] = None,
    ) -> "Session":
        """Rebuild a session from a snapshot written by :meth:`snapshot`.

        Recompiles the program (from ``app`` or the snapshot's recorded
        app name) and verifies the snapshot's content address against it;
        corrupt or mismatched snapshots raise typed
        :class:`repro.persist.PersistError` subclasses and never produce a
        half-restored session.  The restored session is meter-equivalent
        to the one that was saved: subsequent ``edit``/``propagate``/
        ``demand`` perform identical work.
        """
        from repro.persist import load_session

        return load_session(path, app, backend=backend, hook=hook)

    def enable_journal(self, path: str, *, fsync: bool = True):
        """Turn on the write-ahead edit journal at ``path``.

        Every subsequent :meth:`edit` (including edits inside
        :meth:`batch` scopes) is durably appended before it returns.
        Journaled edits must address named handles with
        JSON-representable values -- the handles are how replay finds the
        cells in a restored session.  Returns the
        :class:`repro.persist.EditJournal`.
        """
        from repro.persist import EditJournal

        self._journal = EditJournal(path, fsync=fsync)
        return self._journal

    def disable_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def replay_journal(self, path: str) -> int:
        """Re-stage the edits recorded in a journal file; returns the
        number of records applied.

        Recovery = :meth:`restore` the last snapshot, replay the journal,
        then propagate (or let the next demand drain).  Records the
        snapshot already absorbed re-apply as no-ops (absolute values cut
        off on equality), so an un-truncated journal is harmless.
        Journaling is suspended during the replay itself.
        """
        from repro.persist import replay_journal

        journal, self._journal = self._journal, None
        try:
            records = replay_journal(path)
            for _seq, edits in records:
                for handle, value in edits:
                    self.engine.change(self.resolve(handle), value)
        finally:
            self._journal = journal
        return len(records)

    def _journal_name(self, mod: Union[str, Modifiable]) -> str:
        if isinstance(mod, str):
            return mod
        name = self._handle_names.get(id(mod))
        if name is None:
            from repro.persist import JournalError

            raise JournalError(
                "journaled sessions must edit through named handles "
                "(bind one with Session.handle) so recovery can replay"
            )
        return name

    # -- metering -------------------------------------------------------

    def trace_size(self) -> int:
        return self.engine.trace_size()

    def stats(self) -> dict:
        """One merged view of the session's accounting: backend, compiler
        options, propagation count, live trace size, table residency, and
        the full meter snapshot."""
        options = self.options
        return {
            "backend": self.backend,
            "options": {
                "memoize": options.memoize,
                "optimize": options.optimize,
                "coarse": options.coarse,
            },
            "propagations": self.propagations,
            "rebuilds": self.rebuilds,
            "trace_size": self.engine.trace_size(),
            "tables": self.engine.table_residency(),
            "meter": self.engine.meter.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.app.name if self.app is not None else "<source>"
        return (
            f"<Session {name} backend={self.backend} "
            f"trace_size={self.engine.trace_size()}>"
        )


# ----------------------------------------------------------------------
# Verification (the paper's Section 4.3 framework, Session-powered)


class VerificationError(AssertionError):
    """The self-adjusting output diverged from the reference."""


def values_close(a: Any, b: Any, rel: float = 1e-9) -> bool:
    """Structural comparison with float tolerance."""
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(float(a), float(b), rel_tol=rel, abs_tol=1e-12)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(values_close(x, y, rel) for x, y in zip(a, b))
    return a == b


@dataclass
class VerifyResult:
    name: str
    n: int
    changes: int
    reexecuted_total: int
    #: dirty-queue entries drained across all propagations; the gap to
    #: ``reexecuted_total`` is stale entries skipped without re-execution.
    drained_total: int = 0

    def __str__(self) -> str:
        return (
            f"{self.name}: n={self.n}, {self.changes} changes verified, "
            f"{self.reexecuted_total} reads re-executed "
            f"({self.drained_total} queue entries drained)"
        )


def _resolve_app(app: Any):
    if isinstance(app, str):
        from repro.apps import REGISTRY

        return REGISTRY[app]
    return app


def verify_app(
    app: Any,
    n: int,
    changes: int,
    seed: int = 0,
    *,
    memoize: bool = True,
    optimize_flag: bool = True,
    coarse: bool = False,
    check_conventional: bool = True,
    backend: Optional[str] = None,
    batch: int = 1,
    mode: str = "eager",
) -> VerifyResult:
    """Run the Section 4.3 random-change verification for one application.

    ``app`` is an :class:`repro.apps.base.App` or a registry name.
    ``backend`` resolves via :func:`resolve_backend`.  ``batch`` > 1
    coalesces that many random changes per propagation through
    :meth:`Session.batch` (the output is re-verified after each batch).
    ``mode="lazy"`` updates via :meth:`Session.demand` after each change
    instead of a full propagation; combined with ``batch`` > 1 the batch
    scope stages the edits and the following demand drains them all in
    one reachability-filtered pass.
    """
    app = _resolve_app(app)
    rng = random.Random(seed)
    session = Session(
        app,
        backend=backend,
        optimize=optimize_flag,
        memoize=memoize,
        coarse=coarse,
        mode=mode,
    )
    data = app.make_data(n, rng)

    if check_conventional:
        conv = session.program.conventional_instance()
        conv_out = app.readback(conv.apply(app.make_conv_input(data)))
        expected = app.reference(data)
        if not values_close(conv_out, expected):
            raise VerificationError(
                f"{app.name}: conventional output diverges from reference\n"
                f"  got:      {conv_out!r}\n  expected: {expected!r}"
            )

    output = session.run(data=data)
    got = app.readback(output)
    expected = app.reference(data)
    if not values_close(got, expected):
        raise VerificationError(
            f"{app.name}: initial self-adjusting output diverges\n"
            f"  got:      {got!r}\n  expected: {expected!r}"
        )

    reexecuted = drained = 0
    step = 0
    while step < changes:
        group = min(batch, changes - step)
        if group == 1:
            app.apply_change(session.input_handle, rng, step)
            step += 1
            stats = session.demand() if mode == "lazy" else session.propagate()
        else:
            drained_before = session.engine.meter.queue_drained
            with session.batch() as b:
                for _ in range(group):
                    app.apply_change(session.input_handle, rng, step)
                    step += 1
            if mode == "lazy":
                # Lazy batches defer the drain; the demand below is what
                # actually re-executes (once per affected read).
                stats = session.demand()
            else:
                stats = PropagateStats(
                    b.reexecuted,
                    session.engine.meter.queue_drained - drained_before,
                    0.0,
                )
        reexecuted += stats.reexecuted
        drained += stats.drained
        got = app.readback(output)
        expected = app.reference(app.handle_data(session.input_handle))
        if not values_close(got, expected):
            raise VerificationError(
                f"{app.name}: output diverges after change {step - 1}\n"
                f"  got:      {got!r}\n  expected: {expected!r}"
            )
    return VerifyResult(app.name, n, changes, reexecuted, drained)


@dataclass
class OracleResult:
    """Outcome of one :func:`oracle_app` run."""

    name: str
    n: int
    changes: int
    reexecuted_total: int
    invariant_checks: int

    def __str__(self) -> str:
        text = (
            f"{self.name}: n={self.n}, {self.changes} changes consistent "
            f"with from-scratch reruns, {self.reexecuted_total} reads re-executed"
        )
        if self.invariant_checks:
            text += f", {self.invariant_checks} invariant checks"
        return text


def oracle_app(
    app: Any,
    n: int,
    changes: int,
    seed: int = 0,
    *,
    memoize: bool = True,
    optimize_flag: bool = True,
    coarse: bool = False,
    check_invariants: bool = True,
    check_reference: bool = True,
    backend: Optional[str] = None,
    mode: str = "eager",
) -> OracleResult:
    """From-scratch-consistency oracle for one application.

    Applies ``changes`` random input changes through a :class:`Session`,
    and after each propagation asserts that the incrementally updated
    output equals the output of a *fresh* session run on the current
    input data -- the property the consistency theorems actually state.
    With ``check_invariants`` (default), an
    :class:`repro.obs.invariants.InvariantChecker` rides along.
    ``mode="lazy"`` replaces each eager propagation with a demand of the
    full output (:meth:`Session.demand`), exercising the dirty-marking /
    demand-walk discipline against the same oracle.
    """
    app = _resolve_app(app)
    rng = random.Random(seed)
    checker = None
    hook = None
    if check_invariants:
        from repro.obs.invariants import InvariantChecker

        checker = hook = InvariantChecker()
    session = Session(
        app,
        backend=backend,
        optimize=optimize_flag,
        memoize=memoize,
        coarse=coarse,
        hook=hook,
        mode=mode,
    )
    data = app.make_data(n, rng)
    output = session.run(data=data)

    if check_reference:
        got = app.readback(output)
        expected = app.reference(data)
        if not values_close(got, expected):
            raise VerificationError(
                f"{app.name}: initial self-adjusting output diverges\n"
                f"  got:      {got!r}\n  expected: {expected!r}"
            )

    reexecuted = 0
    for step in range(changes):
        app.apply_change(session.input_handle, rng, step)
        if mode == "lazy":
            reexecuted += session.demand().reexecuted
        else:
            reexecuted += session.propagate().reexecuted
        got = app.readback(output)

        # The oracle: a fresh run of the same program over the current data.
        current = app.handle_data(session.input_handle)
        scratch = Session(session.program, backend=session.backend)
        scratch.app = app
        scratch_out = app.readback(scratch.run(data=current))

        if not values_close(got, scratch_out):
            raise VerificationError(
                f"{app.name}: propagated output diverges from a "
                f"from-scratch rerun after change {step} (seed {seed})\n"
                f"  propagated:   {got!r}\n  from scratch: {scratch_out!r}"
            )
        if check_reference:
            expected = app.reference(current)
            if not values_close(got, expected):
                raise VerificationError(
                    f"{app.name}: output diverges from reference after "
                    f"change {step} (seed {seed})\n"
                    f"  got:      {got!r}\n  expected: {expected!r}"
                )
    return OracleResult(
        app.name,
        n,
        changes,
        reexecuted,
        checker.total_checks() if checker is not None else 0,
    )


# ----------------------------------------------------------------------
# Measurement (the paper's Section 4.2 methodology, Session-powered)


def measure_app(
    app: Any,
    n: int,
    *,
    prop_samples: int = 20,
    seed: int = 0,
    repeats: int = 1,
    memoize: bool = True,
    optimize_flag: bool = True,
    coarse: bool = False,
    gc_enabled: bool = False,
    skip_conventional: bool = False,
    hook: Optional[Any] = None,
    backend: Optional[str] = None,
    batch: int = 1,
):
    """Measure one compiled benchmark at input size ``n``; returns a
    :class:`repro.bench.runner.BenchRow`.

    As in the paper, input construction and instance staging are excluded
    from timed sections, and GC is excluded unless ``gc_enabled``.
    ``batch`` > 1 applies that many random changes per propagation (one
    coalesced pass each), so ``avg_prop`` becomes average time per
    *batch*; ``prop_samples`` still counts individual changes.
    """
    from repro.bench.runner import BenchRow, _phase, _timed

    app = _resolve_app(app)
    rng = random.Random(seed)
    session = Session(
        app,
        backend=backend,
        optimize=optimize_flag,
        memoize=memoize,
        coarse=coarse,
        hook=hook,
    )
    data = app.make_data(n, rng)

    # Conventional run (fresh instance per repeat; average).
    conv_time = 0.0
    if not skip_conventional:
        times = []
        for _ in range(repeats):
            conv = session.program.conventional_instance()
            conv_input = app.make_conv_input(data)
            times.append(_timed(lambda: conv.apply(conv_input), gc_enabled))
        conv_time = sum(times) / len(times)

    # Self-adjusting complete run (input construction and staging untimed).
    engine = session.engine
    session.prepare(data)
    before_run = engine.meter.snapshot()
    sa_time = _timed(session.run, gc_enabled)
    after_run = engine.meter.snapshot()
    trace_size = engine.trace_size()
    mods = engine.meter.mods_created

    # Average propagation over random changes (per pass: one change, or
    # one ``batch``-sized coalesced group).
    prop_total = 0.0
    passes = 0
    step = 0
    while step < prop_samples:
        group = min(batch, prop_samples - step)
        if group == 1:
            app.apply_change(session.input_handle, rng, step)
            step += 1
            prop_total += _timed(engine.propagate, gc_enabled)
        else:

            def one_batch():
                nonlocal step
                with session.batch():
                    for _ in range(group):
                        app.apply_change(session.input_handle, rng, step)
                        step += 1

            prop_total += _timed(one_batch, gc_enabled)
        passes += 1
    avg_prop = prop_total / passes if passes else float("nan")
    after_prop = engine.meter.snapshot()

    row = BenchRow(
        name=app.name,
        n=n,
        conv_run=conv_time,
        sa_run=sa_time,
        avg_prop=avg_prop,
        trace_size=max(trace_size, engine.trace_size()),
        mods_created=mods,
        prop_samples=prop_samples,
    )
    row.extra["phases"] = {
        "initial-run": _phase(sa_time, before_run, after_run),
        "propagation": _phase(
            prop_total, after_run, after_prop, samples=max(passes, 1)
        ),
    }
    if batch > 1:
        row.extra["batch"] = batch
    return row
