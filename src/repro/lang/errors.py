"""Source-located diagnostics for the LML frontend and compiler."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceSpan:
    """A half-open region of the source text, for error messages."""

    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0

    def __str__(self) -> str:
        if self.line == 0:
            return "<unknown>"
        return f"{self.line}:{self.col}"


NO_SPAN = SourceSpan()


class LmlError(Exception):
    """Base class for all LML language errors."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None) -> None:
        self.span = span or NO_SPAN
        self.message = message
        super().__init__(f"{self.span}: {message}" if span else message)


class LmlSyntaxError(LmlError):
    """Lexing or parsing failure."""


class LmlTypeError(LmlError):
    """ML type error (unification failure, arity mismatch, unbound name)."""


class LmlLevelError(LmlError):
    """Level inference failure.

    Raised when changeable data flows into a position whose level is rigidly
    stable (an unannotated datatype field), telling the programmer where a
    ``$C`` annotation is needed -- the analogue of the paper's level type
    checking.
    """


class LmlCompileError(LmlError):
    """Internal consistency failure in a compiler pass."""
