"""Lexer for LML.

LML's concrete syntax is a subset of Standard ML plus the ``$C`` level
qualifier (paper Section 3.2: "we extended the MLton lexer and parser to
handle types with $C annotations").  Comments are SML's ``(* ... *)`` and
nest.  Real literals require a digit on both sides of the dot.  ``~`` is
accepted as the unary minus on literals, as in SML.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List

from repro.lang.errors import LmlSyntaxError, SourceSpan

KEYWORDS = {
    "datatype",
    "type",
    "fun",
    "val",
    "and",
    "fn",
    "case",
    "of",
    "let",
    "in",
    "end",
    "if",
    "then",
    "else",
    "andalso",
    "orelse",
    "ref",
    "true",
    "false",
    "div",
    "mod",
    "not",
    "rec",
}

# Multi-character symbols must come before their prefixes.
SYMBOLS = [
    "=>",
    "->",
    ":=",
    "<=",
    ">=",
    "<>",
    "$C",
    "$S",
    "(",
    ")",
    ",",
    "|",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    ";",
    ":",
    "_",
    "!",
    "^",
    "~",
    "#",
    "'",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'tyvar' | 'int' | 'real' | 'string' | keyword | symbol | 'eof'
    value: Any
    span: SourceSpan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, raising :class:`LmlSyntaxError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def span(length: int = 1) -> SourceSpan:
        return SourceSpan(line, col, line, col + length)

    while i < n:
        ch = source[i]
        # Whitespace
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # Nested comments
        if source.startswith("(*", i):
            depth = 1
            start_span = span(2)
            i += 2
            col += 2
            while i < n and depth > 0:
                if source.startswith("(*", i):
                    depth += 1
                    i += 2
                    col += 2
                elif source.startswith("*)", i):
                    depth -= 1
                    i += 2
                    col += 2
                elif source[i] == "\n":
                    i += 1
                    line += 1
                    col = 1
                else:
                    i += 1
                    col += 1
            if depth > 0:
                raise LmlSyntaxError("unterminated comment", start_span)
            continue
        # String literals
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                elif source[j] == "\n":
                    raise LmlSyntaxError("newline in string literal", span())
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise LmlSyntaxError("unterminated string literal", span())
            text = "".join(buf)
            yield Token("string", text, span(j + 1 - i))
            col += j + 1 - i
            i = j + 1
            continue
        # Numbers (with optional SML-style ~ negation)
        if ch.isdigit() or (ch == "~" and i + 1 < n and source[i + 1].isdigit()):
            j = i
            neg = False
            if source[j] == "~":
                neg = True
                j += 1
            k = j
            while k < n and source[k].isdigit():
                k += 1
            is_real = False
            if k < n and source[k] == "." and k + 1 < n and source[k + 1].isdigit():
                is_real = True
                k += 1
                while k < n and source[k].isdigit():
                    k += 1
            if k < n and source[k] in "eE":
                m = k + 1
                if m < n and source[m] in "+-~":
                    m += 1
                if m < n and source[m].isdigit():
                    is_real = True
                    k = m
                    while k < n and source[k].isdigit():
                        k += 1
            text = source[j:k].replace("~", "-")
            if is_real:
                value: Any = float(text)
            else:
                value = int(text)
            if neg:
                value = -value
            yield Token("real" if is_real else "int", value, span(k - i))
            col += k - i
            i = k
            continue
        # Type variables 'a
        if ch == "'" and i + 1 < n and (source[i + 1].isalpha() or source[i + 1] == "_"):
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            yield Token("tyvar", source[i:j], span(j - i))
            col += j - i
            i = j
            continue
        # Identifiers and keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_'"):
                j += 1
            word = source[i:j]
            if word == "_" and j - i == 1:
                yield Token("_", "_", span(1))
            elif word in KEYWORDS:
                yield Token(word, word, span(j - i))
            else:
                yield Token("ident", word, span(j - i))
            col += j - i
            i = j
            continue
        # Symbols
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                yield Token(sym, sym, span(len(sym)))
                col += len(sym)
                i += len(sym)
                break
        else:
            raise LmlSyntaxError(f"unexpected character {ch!r}", span())
    yield Token("eof", None, SourceSpan(line, col, line, col))
