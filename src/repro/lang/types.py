"""ML types, schemes, and unification for LML.

Levels are *not* represented here: following the paper's pipeline, level
inference runs later on the monomorphic program (:mod:`repro.core.levels`).
Level annotations are carried separately as :class:`LevelSpec` trees built
from the same type syntax (see :mod:`repro.lang.elaborate`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.errors import LmlTypeError, SourceSpan

_fresh_counter = itertools.count()


class Type:
    """Base class of semantic types."""

    __slots__ = ()


class TVar(Type):
    """A unification variable (mutable link)."""

    __slots__ = ("id", "link")

    def __init__(self) -> None:
        self.id = next(_fresh_counter)
        self.link: Optional[Type] = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"'t{self.id}" if self.link is None else repr(self.link)


class TCon(Type):
    """A named type constructor application: base types, ``vector``, ``ref``,
    and (possibly monomorphized) datatypes."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Optional[List[Type]] = None) -> None:
        self.name = name
        self.args = args or []

    def __repr__(self) -> str:  # pragma: no cover
        if not self.args:
            return self.name
        return f"({', '.join(map(repr, self.args))}) {self.name}"


class TTuple(Type):
    __slots__ = ("items",)

    def __init__(self, items: List[Type]) -> None:
        self.items = items

    def __repr__(self) -> str:  # pragma: no cover
        return "(" + " * ".join(map(repr, self.items)) + ")"


class TArrow(Type):
    __slots__ = ("dom", "cod")

    def __init__(self, dom: Type, cod: Type) -> None:
        self.dom = dom
        self.cod = cod

    def __repr__(self) -> str:  # pragma: no cover
        return f"({self.dom!r} -> {self.cod!r})"


# Base type singletons are functions (fresh nodes are unnecessary: TCon with
# no args is immutable, so sharing is safe).
INT = TCon("int")
REAL = TCon("real")
BOOL = TCon("bool")
STRING = TCon("string")
UNIT = TCon("unit")

BASE_NAMES = {"int", "real", "bool", "string", "unit"}


def vector_of(elem: Type) -> Type:
    return TCon("vector", [elem])


def ref_of(inner: Type) -> Type:
    return TCon("ref", [inner])


def force(ty: Type) -> Type:
    """Resolve unification links (with path compression)."""
    while isinstance(ty, TVar) and ty.link is not None:
        if isinstance(ty.link, TVar) and ty.link.link is not None:
            ty.link = ty.link.link  # path compression
        ty = ty.link
    return ty


def occurs(var: TVar, ty: Type) -> bool:
    ty = force(ty)
    if ty is var:
        return True
    if isinstance(ty, TCon):
        return any(occurs(var, a) for a in ty.args)
    if isinstance(ty, TTuple):
        return any(occurs(var, t) for t in ty.items)
    if isinstance(ty, TArrow):
        return occurs(var, ty.dom) or occurs(var, ty.cod)
    return False


def unify(a: Type, b: Type, span: Optional[SourceSpan] = None) -> None:
    """Unify two types in place, raising :class:`LmlTypeError` on mismatch."""
    a = force(a)
    b = force(b)
    if a is b:
        return
    if isinstance(a, TVar):
        if occurs(a, b):
            raise LmlTypeError(f"occurs check: circular type {a!r} in {b!r}", span)
        a.link = b
        return
    if isinstance(b, TVar):
        unify(b, a, span)
        return
    if isinstance(a, TCon) and isinstance(b, TCon):
        if a.name != b.name or len(a.args) != len(b.args):
            raise LmlTypeError(f"type mismatch: {a!r} vs {b!r}", span)
        for x, y in zip(a.args, b.args):
            unify(x, y, span)
        return
    if isinstance(a, TTuple) and isinstance(b, TTuple):
        if len(a.items) != len(b.items):
            raise LmlTypeError(
                f"tuple arity mismatch: {len(a.items)} vs {len(b.items)}", span
            )
        for x, y in zip(a.items, b.items):
            unify(x, y, span)
        return
    if isinstance(a, TArrow) and isinstance(b, TArrow):
        unify(a.dom, b.dom, span)
        unify(a.cod, b.cod, span)
        return
    raise LmlTypeError(f"type mismatch: {a!r} vs {b!r}", span)


def zonk(ty: Type) -> Type:
    """Fully resolve a type, rebuilding nodes so no live TVar links remain.

    Unresolved variables are left in place (they become scheme parameters or
    get defaulted).
    """
    ty = force(ty)
    if isinstance(ty, TVar):
        return ty
    if isinstance(ty, TCon):
        if not ty.args:
            return ty
        return TCon(ty.name, [zonk(a) for a in ty.args])
    if isinstance(ty, TTuple):
        return TTuple([zonk(t) for t in ty.items])
    if isinstance(ty, TArrow):
        return TArrow(zonk(ty.dom), zonk(ty.cod))
    raise AssertionError(f"unknown type node {ty!r}")


def free_type_vars(ty: Type, acc: Optional[List[TVar]] = None) -> List[TVar]:
    """Free unification variables of ``ty`` in first-occurrence order."""
    if acc is None:
        acc = []
    ty = force(ty)
    if isinstance(ty, TVar):
        if ty not in acc:
            acc.append(ty)
    elif isinstance(ty, TCon):
        for a in ty.args:
            free_type_vars(a, acc)
    elif isinstance(ty, TTuple):
        for t in ty.items:
            free_type_vars(t, acc)
    elif isinstance(ty, TArrow):
        free_type_vars(ty.dom, acc)
        free_type_vars(ty.cod, acc)
    return acc


@dataclass
class Scheme:
    """A type scheme: forall qvars. body."""

    qvars: List[TVar]
    body: Type

    def instantiate(self) -> Tuple[Type, List[Type]]:
        """Return (fresh instance, instantiation types for each qvar)."""
        mapping: Dict[int, Type] = {}
        inst: List[Type] = []
        for qv in self.qvars:
            fresh = TVar()
            mapping[id(qv)] = fresh
            inst.append(fresh)
        return _subst_qvars(self.body, mapping), inst

    @staticmethod
    def mono(ty: Type) -> "Scheme":
        return Scheme([], ty)


def _subst_qvars(ty: Type, mapping: Dict[int, Type]) -> Type:
    ty = force(ty)
    if isinstance(ty, TVar):
        return mapping.get(id(ty), ty)
    if isinstance(ty, TCon):
        if not ty.args:
            return ty
        return TCon(ty.name, [_subst_qvars(a, mapping) for a in ty.args])
    if isinstance(ty, TTuple):
        return TTuple([_subst_qvars(t, mapping) for t in ty.items])
    if isinstance(ty, TArrow):
        return TArrow(_subst_qvars(ty.dom, mapping), _subst_qvars(ty.cod, mapping))
    raise AssertionError(f"unknown type node {ty!r}")


def subst_vars(ty: Type, mapping: Dict[int, Type]) -> Type:
    """Substitute for free TVars by id (used by monomorphization)."""
    return _subst_qvars(ty, mapping)


def type_equal(a: Type, b: Type) -> bool:
    """Structural equality of (zonked) types; TVars compare by identity."""
    a = force(a)
    b = force(b)
    if a is b:
        return True
    if isinstance(a, TCon) and isinstance(b, TCon):
        return (
            a.name == b.name
            and len(a.args) == len(b.args)
            and all(type_equal(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, TTuple) and isinstance(b, TTuple):
        return len(a.items) == len(b.items) and all(
            type_equal(x, y) for x, y in zip(a.items, b.items)
        )
    if isinstance(a, TArrow) and isinstance(b, TArrow):
        return type_equal(a.dom, b.dom) and type_equal(a.cod, b.cod)
    return False


def mangle(ty: Type) -> str:
    """A canonical string for a ground type (monomorphization keys)."""
    ty = force(ty)
    if isinstance(ty, TVar):
        # Residual polymorphism defaults to unit during monomorphization.
        return "unit"
    if isinstance(ty, TCon):
        if not ty.args:
            return ty.name
        return ty.name + "<" + ",".join(mangle(a) for a in ty.args) + ">"
    if isinstance(ty, TTuple):
        return "(" + "*".join(mangle(t) for t in ty.items) + ")"
    if isinstance(ty, TArrow):
        return "(" + mangle(ty.dom) + "->" + mangle(ty.cod) + ")"
    raise AssertionError(f"unknown type node {ty!r}")


def pretty(ty: Type) -> str:
    """Human-readable rendering for diagnostics."""
    ty = force(ty)
    if isinstance(ty, TVar):
        return f"'t{ty.id}"
    if isinstance(ty, TCon):
        if not ty.args:
            return ty.name
        if len(ty.args) == 1:
            return f"{pretty(ty.args[0])} {ty.name}"
        return "(" + ", ".join(pretty(a) for a in ty.args) + f") {ty.name}"
    if isinstance(ty, TTuple):
        return "(" + " * ".join(pretty(t) for t in ty.items) + ")"
    if isinstance(ty, TArrow):
        return f"({pretty(ty.dom)} -> {pretty(ty.cod)})"
    raise AssertionError
