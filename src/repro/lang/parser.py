"""Recursive-descent parser for LML.

Produces the surface AST of :mod:`repro.lang.ast`.  The grammar is the SML
subset described in DESIGN.md, with the ``$C`` qualifier as a postfix type
operator (binding tighter than ``*`` and ``->``), so ``(int $C) vector`` and
``int $C vector`` both denote a stable vector of changeable integers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast as A
from repro.lang.errors import LmlSyntaxError
from repro.lang.lexer import Token, tokenize

# Tokens that may start an atomic expression (used to detect application).
_ATOM_START = {"ident", "int", "real", "string", "true", "false", "(", "let", "#", "ref"}

# Tokens that may start an atomic pattern.
_PATOM_START = {"ident", "int", "real", "string", "true", "false", "(", "_"}

_CMP_OPS = {"=", "<>", "<", "<=", ">", ">="}
_ADD_OPS = {"+", "-", "^"}
_MUL_OPS = {"*", "/", "div", "mod"}


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token utilities ------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise LmlSyntaxError(f"expected {kind!r}, found {tok.kind!r}", tok.span)
        return self.advance()

    # -- program and declarations ----------------------------------------

    def parse_program(self) -> A.Program:
        decls: List[A.Decl] = []
        while not self.at("eof"):
            decls.append(self.parse_decl())
            while self.at(";"):
                self.advance()
        return A.Program(decls)

    def parse_decl(self) -> A.Decl:
        tok = self.peek()
        if tok.kind == "datatype":
            return self.parse_datatype()
        if tok.kind == "type":
            return self.parse_type_abbrev()
        if tok.kind == "fun":
            return self.parse_fun()
        if tok.kind == "val":
            return self.parse_val()
        raise LmlSyntaxError(f"expected a declaration, found {tok.kind!r}", tok.span)

    def parse_tyvar_prefix(self) -> List[str]:
        """Parse the optional type parameter prefix: ``'a`` or ``('a, 'b)``."""
        if self.at("tyvar"):
            return [self.advance().value]
        if self.at("(") and self.peek(1).kind == "tyvar":
            self.advance()
            names = [self.expect("tyvar").value]
            while self.at(","):
                self.advance()
                names.append(self.expect("tyvar").value)
            self.expect(")")
            return names
        return []

    def parse_datatype(self) -> A.DDatatype:
        span = self.expect("datatype").span
        tyvars = self.parse_tyvar_prefix()
        name = self.expect("ident").value
        self.expect("=")
        constructors: List[Tuple[str, Optional[A.TySyn]]] = []
        while True:
            con = self.expect("ident").value
            arg_ty = None
            if self.at("of"):
                self.advance()
                arg_ty = self.parse_type()
            constructors.append((con, arg_ty))
            if self.at("|"):
                self.advance()
                continue
            break
        return A.DDatatype(name=name, tyvars=tyvars, constructors=constructors, span=span)

    def parse_type_abbrev(self) -> A.DTypeAbbrev:
        span = self.expect("type").span
        tyvars = self.parse_tyvar_prefix()
        name = self.expect("ident").value
        self.expect("=")
        body = self.parse_type()
        return A.DTypeAbbrev(name=name, tyvars=tyvars, body=body, span=span)

    def parse_fun(self) -> A.DFun:
        span = self.expect("fun").span
        clauses = [self.parse_fun_clause()]
        while self.at("and"):
            self.advance()
            clauses.append(self.parse_fun_clause())
        return A.DFun(clauses=clauses, span=span)

    def parse_fun_clause(self) -> A.FunClause:
        name_tok = self.expect("ident")
        params: List[A.Pat] = []
        while self.peek().kind in _PATOM_START:
            params.append(self.parse_pat_atom())
        if not params:
            raise LmlSyntaxError("function binding needs parameters", name_tok.span)
        result_ty = None
        if self.at(":"):
            self.advance()
            result_ty = self.parse_type()
        self.expect("=")
        body = self.parse_expr()
        return A.FunClause(
            name=name_tok.value,
            params=params,
            result_ty=result_ty,
            body=body,
            span=name_tok.span,
        )

    def parse_val(self) -> A.DVal:
        span = self.expect("val").span
        pat = self.parse_pattern()
        self.expect("=")
        expr = self.parse_expr()
        return A.DVal(pat=pat, expr=expr, span=span)

    # -- patterns ---------------------------------------------------------

    def parse_pattern(self) -> A.Pat:
        pat = self.parse_pat_app()
        if self.at(":"):
            self.advance()
            ty = self.parse_type()
            return A.PAnnot(pat=pat, ty=ty, span=pat.span)
        return pat

    def parse_pat_app(self) -> A.Pat:
        if self.at("ident") and self.peek(1).kind in _PATOM_START:
            name_tok = self.advance()
            arg = self.parse_pat_atom()
            return A.PCon(name=name_tok.value, arg=arg, span=name_tok.span)
        return self.parse_pat_atom()

    def parse_pat_atom(self) -> A.Pat:
        tok = self.peek()
        if tok.kind == "_":
            self.advance()
            return A.PWild(span=tok.span)
        if tok.kind == "ident":
            self.advance()
            return A.PVar(name=tok.value, span=tok.span)
        if tok.kind == "int":
            self.advance()
            return A.PConst(value=tok.value, kind="int", span=tok.span)
        if tok.kind == "real":
            self.advance()
            return A.PConst(value=tok.value, kind="real", span=tok.span)
        if tok.kind == "string":
            self.advance()
            return A.PConst(value=tok.value, kind="string", span=tok.span)
        if tok.kind in ("true", "false"):
            self.advance()
            return A.PConst(value=tok.kind == "true", kind="bool", span=tok.span)
        if tok.kind == "(":
            self.advance()
            if self.at(")"):
                self.advance()
                return A.PConst(value=(), kind="unit", span=tok.span)
            items = [self.parse_pattern()]
            while self.at(","):
                self.advance()
                items.append(self.parse_pattern())
            self.expect(")")
            if len(items) == 1:
                return items[0]
            return A.PTuple(items=items, span=tok.span)
        raise LmlSyntaxError(f"expected a pattern, found {tok.kind!r}", tok.span)

    # -- types --------------------------------------------------------------

    def parse_type(self) -> A.TySyn:
        left = self.parse_type_tuple()
        if self.at("->"):
            self.advance()
            right = self.parse_type()
            return A.TSArrow(dom=left, cod=right, span=left.span)
        return left

    def parse_type_tuple(self) -> A.TySyn:
        items = [self.parse_type_post()]
        while self.at("*"):
            self.advance()
            items.append(self.parse_type_post())
        if len(items) == 1:
            return items[0]
        return A.TSTuple(items=items, span=items[0].span)

    def parse_type_post(self) -> A.TySyn:
        ty = self.parse_type_atom()
        while True:
            tok = self.peek()
            if tok.kind == "ident":
                self.advance()
                ty = A.TSCon(name=tok.value, args=[ty], span=tok.span)
            elif tok.kind == "ref":
                self.advance()
                ty = A.TSCon(name="ref", args=[ty], span=tok.span)
            elif tok.kind == "$C":
                self.advance()
                ty = A.TSLevel(body=ty, level="C", span=tok.span)
            elif tok.kind == "$S":
                self.advance()
                ty = A.TSLevel(body=ty, level="S", span=tok.span)
            else:
                break
        return ty

    def parse_type_atom(self) -> A.TySyn:
        tok = self.peek()
        if tok.kind == "tyvar":
            self.advance()
            return A.TSVar(name=tok.value, span=tok.span)
        if tok.kind == "ident":
            self.advance()
            return A.TSCon(name=tok.value, args=[], span=tok.span)
        if tok.kind == "(":
            self.advance()
            first = self.parse_type()
            if self.at(","):
                args = [first]
                while self.at(","):
                    self.advance()
                    args.append(self.parse_type())
                self.expect(")")
                name_tok = self.expect("ident")
                return A.TSCon(name=name_tok.value, args=args, span=tok.span)
            self.expect(")")
            return first
        raise LmlSyntaxError(f"expected a type, found {tok.kind!r}", tok.span)

    # -- expressions -----------------------------------------------------

    def parse_expr(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "fn":
            self.advance()
            param = self.parse_pat_app()
            self.expect("=>")
            body = self.parse_expr()
            return A.EFn(param=param, body=body, span=tok.span)
        if tok.kind == "if":
            self.advance()
            cond = self.parse_expr()
            self.expect("then")
            then = self.parse_expr()
            self.expect("else")
            els = self.parse_expr()
            return A.EIf(cond=cond, then=then, els=els, span=tok.span)
        if tok.kind == "case":
            self.advance()
            scrut = self.parse_expr()
            self.expect("of")
            clauses = [self.parse_case_clause()]
            while self.at("|"):
                self.advance()
                clauses.append(self.parse_case_clause())
            return A.ECase(scrut=scrut, clauses=clauses, span=tok.span)
        return self.parse_assign()

    def parse_case_clause(self) -> Tuple[A.Pat, A.Expr]:
        pat = self.parse_pattern()
        self.expect("=>")
        body = self.parse_expr()
        return (pat, body)

    def parse_assign(self) -> A.Expr:
        left = self.parse_orelse()
        if self.at(":="):
            tok = self.advance()
            right = self.parse_expr()
            return A.EAssign(ref=left, value=right, span=tok.span)
        return left

    def parse_orelse(self) -> A.Expr:
        left = self.parse_andalso()
        while self.at("orelse"):
            tok = self.advance()
            right = self.parse_andalso()
            # e1 orelse e2  ==  if e1 then true else e2
            left = A.EIf(
                cond=left,
                then=A.EConst(value=True, kind="bool", span=tok.span),
                els=right,
                span=tok.span,
            )
        return left

    def parse_andalso(self) -> A.Expr:
        left = self.parse_cmp()
        while self.at("andalso"):
            tok = self.advance()
            right = self.parse_cmp()
            # e1 andalso e2  ==  if e1 then e2 else false
            left = A.EIf(
                cond=left,
                then=right,
                els=A.EConst(value=False, kind="bool", span=tok.span),
                span=tok.span,
            )
        return left

    def parse_cmp(self) -> A.Expr:
        left = self.parse_additive()
        if self.peek().kind in _CMP_OPS:
            tok = self.advance()
            right = self.parse_additive()
            return A.EPrim(op=tok.kind, args=[left, right], span=tok.span)
        return left

    def parse_additive(self) -> A.Expr:
        left = self.parse_mult()
        while self.peek().kind in _ADD_OPS:
            tok = self.advance()
            right = self.parse_mult()
            left = A.EPrim(op=tok.kind, args=[left, right], span=tok.span)
        return left

    def parse_mult(self) -> A.Expr:
        left = self.parse_unary()
        while self.peek().kind in _MUL_OPS:
            tok = self.advance()
            right = self.parse_unary()
            left = A.EPrim(op=tok.kind, args=[left, right], span=tok.span)
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "~":
            self.advance()
            return A.EPrim(op="~", args=[self.parse_unary()], span=tok.span)
        if tok.kind == "not":
            self.advance()
            return A.EPrim(op="not", args=[self.parse_unary()], span=tok.span)
        if tok.kind == "!":
            self.advance()
            return A.EDeref(arg=self.parse_unary(), span=tok.span)
        return self.parse_app()

    def parse_app(self) -> A.Expr:
        expr = self.parse_atom()
        while self.peek().kind in _ATOM_START:
            arg = self.parse_atom()
            expr = A.EApp(fn=expr, arg=arg, span=expr.span)
        return expr

    def parse_atom(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "ident":
            self.advance()
            return A.EVar(name=tok.value, span=tok.span)
        if tok.kind == "int":
            self.advance()
            return A.EConst(value=tok.value, kind="int", span=tok.span)
        if tok.kind == "real":
            self.advance()
            return A.EConst(value=tok.value, kind="real", span=tok.span)
        if tok.kind == "string":
            self.advance()
            return A.EConst(value=tok.value, kind="string", span=tok.span)
        if tok.kind in ("true", "false"):
            self.advance()
            return A.EConst(value=tok.kind == "true", kind="bool", span=tok.span)
        if tok.kind == "ref":
            self.advance()
            return A.ERef(arg=self.parse_atom(), span=tok.span)
        if tok.kind == "#":
            self.advance()
            index_tok = self.expect("int")
            arg = self.parse_atom()
            return A.EProj(index=index_tok.value, arg=arg, span=tok.span)
        if tok.kind == "let":
            self.advance()
            decls = []
            while not self.at("in"):
                decls.append(self.parse_decl())
                while self.at(";"):
                    self.advance()
            self.expect("in")
            body = self.parse_expr()
            self.expect("end")
            return A.ELet(decls=decls, body=body, span=tok.span)
        if tok.kind == "(":
            self.advance()
            if self.at(")"):
                self.advance()
                return A.EConst(value=(), kind="unit", span=tok.span)
            first = self.parse_expr()
            if self.at(":"):
                self.advance()
                ty = self.parse_type()
                self.expect(")")
                return A.EAnnot(expr=first, ty=ty, span=tok.span)
            if self.at(";"):
                exprs = [first]
                while self.at(";"):
                    self.advance()
                    exprs.append(self.parse_expr())
                self.expect(")")
                result = exprs[-1]
                for e in reversed(exprs[:-1]):
                    result = A.ESeq(first=e, second=result, span=e.span)
                return result
            if self.at(","):
                items = [first]
                while self.at(","):
                    self.advance()
                    items.append(self.parse_expr())
                self.expect(")")
                return A.ETuple(items=items, span=tok.span)
            self.expect(")")
            return first
        raise LmlSyntaxError(f"expected an expression, found {tok.kind!r}", tok.span)


def parse_program(source: str) -> A.Program:
    """Parse an LML compilation unit (a sequence of declarations)."""
    return Parser(tokenize(source)).parse_program()


def parse_expr(source: str) -> A.Expr:
    """Parse a single LML expression (useful in tests)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr
