"""Surface abstract syntax for LML.

The surface language is the SML subset used by the paper's benchmarks:
datatypes, type abbreviations, (mutually) recursive functions, ``val``
bindings, higher-order functions, tuples, ``case`` with nested patterns,
references, and the ``$C`` level qualifier on types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.errors import NO_SPAN, SourceSpan


# ----------------------------------------------------------------------
# Type syntax


@dataclass
class TySyn:
    span: SourceSpan = field(default=NO_SPAN, kw_only=True)


@dataclass
class TSVar(TySyn):
    """A type variable, e.g. ``'a``."""

    name: str = ""


@dataclass
class TSCon(TySyn):
    """A (possibly parameterized) named type: ``int``, ``int list``,
    ``(int, bool) pair``, ``t vector``, ``t ref``."""

    name: str = ""
    args: List[TySyn] = field(default_factory=list)


@dataclass
class TSTuple(TySyn):
    """A product type ``t1 * t2 * ... * tn`` (n >= 2)."""

    items: List[TySyn] = field(default_factory=list)


@dataclass
class TSArrow(TySyn):
    dom: Optional[TySyn] = None
    cod: Optional[TySyn] = None


@dataclass
class TSLevel(TySyn):
    """A level-qualified type ``t $C`` (the paper's changeable qualifier)."""

    body: Optional[TySyn] = None
    level: str = "C"  # '$S' is accepted and means "explicitly stable"


# ----------------------------------------------------------------------
# Patterns


@dataclass
class Pat:
    span: SourceSpan = field(default=NO_SPAN, kw_only=True)


@dataclass
class PWild(Pat):
    pass


@dataclass
class PVar(Pat):
    name: str = ""


@dataclass
class PConst(Pat):
    value: object = None
    kind: str = "int"  # int | real | string | bool | unit


@dataclass
class PTuple(Pat):
    items: List[Pat] = field(default_factory=list)


@dataclass
class PCon(Pat):
    """Constructor pattern ``C`` or ``C pat``."""

    name: str = ""
    arg: Optional[Pat] = None


@dataclass
class PAnnot(Pat):
    """Pattern with a type ascription, ``pat : ty``."""

    pat: Optional[Pat] = None
    ty: Optional[TySyn] = None


# ----------------------------------------------------------------------
# Expressions


@dataclass
class Expr:
    span: SourceSpan = field(default=NO_SPAN, kw_only=True)


@dataclass
class EVar(Expr):
    name: str = ""


@dataclass
class EConst(Expr):
    value: object = None
    kind: str = "int"  # int | real | string | bool | unit


@dataclass
class EApp(Expr):
    fn: Optional[Expr] = None
    arg: Optional[Expr] = None


@dataclass
class EPrim(Expr):
    """Built-in operator application (infix/unary operators)."""

    op: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class ETuple(Expr):
    items: List[Expr] = field(default_factory=list)


@dataclass
class EIf(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    els: Optional[Expr] = None


@dataclass
class ECase(Expr):
    scrut: Optional[Expr] = None
    clauses: List[Tuple[Pat, Expr]] = field(default_factory=list)


@dataclass
class EFn(Expr):
    param: Optional[Pat] = None
    body: Optional[Expr] = None


@dataclass
class ELet(Expr):
    decls: List["Decl"] = field(default_factory=list)
    body: Optional[Expr] = None


@dataclass
class EAnnot(Expr):
    expr: Optional[Expr] = None
    ty: Optional[TySyn] = None


@dataclass
class ERef(Expr):
    arg: Optional[Expr] = None


@dataclass
class EDeref(Expr):
    arg: Optional[Expr] = None


@dataclass
class EAssign(Expr):
    ref: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class ESeq(Expr):
    """Sequencing ``(e1; e2)``."""

    first: Optional[Expr] = None
    second: Optional[Expr] = None


@dataclass
class EProj(Expr):
    """Tuple projection ``#1 e`` (1-based, as in SML)."""

    index: int = 1
    arg: Optional[Expr] = None


# ----------------------------------------------------------------------
# Declarations


@dataclass
class Decl:
    span: SourceSpan = field(default=NO_SPAN, kw_only=True)


@dataclass
class DDatatype(Decl):
    """``datatype 'a name = C1 of ty | C2 | ...`` (possibly ``and``-joined)."""

    name: str = ""
    tyvars: List[str] = field(default_factory=list)
    constructors: List[Tuple[str, Optional[TySyn]]] = field(default_factory=list)


@dataclass
class DTypeAbbrev(Decl):
    name: str = ""
    tyvars: List[str] = field(default_factory=list)
    body: Optional[TySyn] = None


@dataclass
class DVal(Decl):
    """``val pat = e`` or ``val pat : ty = e``."""

    pat: Optional[Pat] = None
    expr: Optional[Expr] = None


@dataclass
class FunClause:
    """One function binding ``f p1 p2 ... = e`` with optional result type."""

    name: str = ""
    params: List[Pat] = field(default_factory=list)
    result_ty: Optional[TySyn] = None
    body: Optional[Expr] = None
    span: SourceSpan = NO_SPAN


@dataclass
class DFun(Decl):
    """``fun f ... = e [and g ... = e]`` -- mutually recursive functions."""

    clauses: List[FunClause] = field(default_factory=list)


@dataclass
class Program:
    decls: List[Decl] = field(default_factory=list)
