"""Elaboration: Hindley-Milner type inference producing typed Core IR.

This is the analogue of MLton's front-end phases that the paper modified to
accept and propagate level annotations (Section 3.2).  Elaboration:

* resolves names (values, constructors, named primitives, builtins);
* infers ML types with let-polymorphism (value restriction; top-level
  bindings generalize, local ``let`` bindings stay monomorphic);
* resolves SML-style operator overloading (``+`` etc. over int/real,
  defaulting to int);
* expands type abbreviations;
* collects ``$C`` annotations into :class:`~repro.lang.levelspec.LSpec`
  trees attached to the Core IR (``CAscribe`` nodes, lambda parameter
  specs, and datatype field specs), for consumption by the level-inference
  pass that runs after monomorphization.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.lang import ast as A
from repro.lang.builtins import (
    BUILTIN_SCHEMES,
    NAMED_PRIMS,
    PRIMS,
    prim_instance,
)
from repro.lang.errors import LmlTypeError, SourceSpan
from repro.lang.levelspec import LSpec, flex
from repro.lang.types import (
    BASE_NAMES,
    BOOL,
    INT,
    REAL,
    STRING,
    UNIT,
    Scheme,
    TArrow,
    TCon,
    TTuple,
    TVar,
    Type,
    force,
    free_type_vars,
    pretty,
    ref_of,
    unify,
    vector_of,
    zonk,
)
from repro.core import ir as C

_CONST_TYPES = {"int": INT, "real": REAL, "bool": BOOL, "string": STRING, "unit": UNIT}


class Elaborator:
    def __init__(self) -> None:
        self.datatypes: Dict[str, C.DataInfo] = {}
        self.constructors: Dict[str, C.ConInfo] = {}
        self.abbrevs: Dict[str, Tuple[List[str], A.TySyn]] = {}
        self.overloads: List[Tuple[TVar, Tuple[str, ...], str, SourceSpan]] = []
        self._fresh = itertools.count()

    def fresh_name(self, hint: str = "t") -> str:
        return f"{hint}%{next(self._fresh)}"

    # ------------------------------------------------------------------
    # Types from syntax

    def elab_ty(
        self,
        ts: A.TySyn,
        tvenv: Dict[str, Type],
        rigid: bool,
    ) -> Tuple[Type, LSpec]:
        """Elaborate type syntax to (ML type, level spec).

        ``rigid`` is True inside datatype declarations, where unannotated
        concrete positions are rigidly stable.
        """
        if isinstance(ts, A.TSVar):
            if ts.name not in tvenv:
                raise LmlTypeError(f"unbound type variable {ts.name}", ts.span)
            return tvenv[ts.name], flex()
        if isinstance(ts, A.TSLevel):
            ty, spec = self.elab_ty(ts.body, tvenv, rigid)
            # $C is a lower bound (forces changeable); an explicit $S is a
            # rigid upper bound (changeable data flowing there is an error).
            return ty, spec.with_level(ts.level, rigid=(ts.level == "S"))
        if isinstance(ts, A.TSTuple):
            parts = [self.elab_ty(t, tvenv, rigid) for t in ts.items]
            spec = LSpec("tuple", None, False, [s for _, s in parts])
            return TTuple([t for t, _ in parts]), spec
        if isinstance(ts, A.TSArrow):
            dom_ty, dom_spec = self.elab_ty(ts.dom, tvenv, rigid)
            cod_ty, cod_spec = self.elab_ty(ts.cod, tvenv, rigid)
            spec = LSpec("arrow", None, False, [dom_spec, cod_spec])
            return TArrow(dom_ty, cod_ty), spec
        if isinstance(ts, A.TSCon):
            name = ts.name
            if name in self.abbrevs:
                params, body = self.abbrevs[name]
                if len(params) != len(ts.args):
                    raise LmlTypeError(
                        f"type abbreviation {name} expects {len(params)} "
                        f"arguments, got {len(ts.args)}",
                        ts.span,
                    )
                expanded = _subst_tysyn(body, dict(zip(params, ts.args)))
                return self.elab_ty(expanded, tvenv, rigid)
            if name in BASE_NAMES:
                if ts.args:
                    raise LmlTypeError(f"{name} takes no type arguments", ts.span)
                base_ty = _CONST_TYPES.get(name, UNIT)
                return base_ty, LSpec("base", None, False, [], name)
            if name in ("vector", "ref"):
                if len(ts.args) != 1:
                    raise LmlTypeError(f"{name} takes one type argument", ts.span)
                inner_ty, inner_spec = self.elab_ty(ts.args[0], tvenv, rigid)
                level = "C" if name == "ref" else None
                spec = LSpec("con", level, False, [inner_spec], name)
                return TCon(name, [inner_ty]), spec
            if name in self.datatypes:
                info = self.datatypes[name]
                if len(info.tyvars) != len(ts.args):
                    raise LmlTypeError(
                        f"datatype {name} expects {len(info.tyvars)} "
                        f"type arguments, got {len(ts.args)}",
                        ts.span,
                    )
                parts = [self.elab_ty(t, tvenv, rigid) for t in ts.args]
                spec = LSpec("con", None, False, [s for _, s in parts], name)
                return TCon(name, [t for t, _ in parts]), spec
            raise LmlTypeError(f"unbound type constructor {name}", ts.span)
        raise AssertionError(f"unknown type syntax {ts!r}")

    # ------------------------------------------------------------------
    # Overloads

    def add_overload(
        self, var: TVar, options: Tuple[str, ...], default: str, span: SourceSpan
    ) -> None:
        self.overloads.append((var, options, default, span))

    def resolve_overloads(self) -> None:
        """Default or check all pending overload constraints."""
        for var, options, default, span in self.overloads:
            ty = force(var)
            if isinstance(ty, TVar):
                unify(ty, _CONST_TYPES[default], span)
            else:
                if not (isinstance(ty, TCon) and ty.name in options):
                    raise LmlTypeError(
                        f"operator not available at type {pretty(ty)}", span
                    )
        self.overloads.clear()

    # ------------------------------------------------------------------
    # Declarations

    def elab_program(self, program: A.Program, main: str = "main") -> C.CoreProgram:
        env: Dict[str, Scheme] = {}
        wrappers = []
        for decl in program.decls:
            wrappers.append(self.elab_decl(decl, env, toplevel=True))
        if main not in env:
            raise LmlTypeError(f"program has no binding for {main!r}")
        scheme = env[main]
        main_ty, inst = scheme.instantiate()
        body: C.CoreExpr = C.CVar(
            ty=main_ty, name=main, inst=inst if scheme.qvars else None
        )
        for wrap in reversed(wrappers):
            body = wrap(body)
        return C.CoreProgram(
            body=body, datatypes=self.datatypes, main_type=zonk(main_ty)
        )

    def elab_decl(self, decl: A.Decl, env: Dict[str, Scheme], toplevel: bool):
        """Elaborate a declaration, extending ``env`` in place.

        Returns a wrapper: a function from the continuation Core expression
        to the Core expression including this declaration's bindings.
        """
        if isinstance(decl, A.DDatatype):
            self.elab_datatype(decl)
            return lambda body: body
        if isinstance(decl, A.DTypeAbbrev):
            if decl.name in self.abbrevs or decl.name in self.datatypes:
                raise LmlTypeError(f"duplicate type name {decl.name}", decl.span)
            self.abbrevs[decl.name] = (decl.tyvars, decl.body)
            return lambda body: body
        if isinstance(decl, A.DVal):
            return self.elab_val(decl, env, toplevel)
        if isinstance(decl, A.DFun):
            return self.elab_fun(decl, env, toplevel)
        raise AssertionError(f"unknown declaration {decl!r}")

    def elab_datatype(self, decl: A.DDatatype) -> None:
        if decl.name in self.datatypes or decl.name in self.abbrevs:
            raise LmlTypeError(f"duplicate type name {decl.name}", decl.span)
        tyvars = [TVar() for _ in decl.tyvars]
        tvenv = dict(zip(decl.tyvars, tyvars))
        info = C.DataInfo(name=decl.name, tyvars=tyvars)
        # Register the datatype before elaborating fields (recursion).
        self.datatypes[decl.name] = info
        for index, (tag, arg_syntax) in enumerate(decl.constructors):
            if tag in self.constructors:
                raise LmlTypeError(f"duplicate constructor {tag}", decl.span)
            if arg_syntax is None:
                arg_ty, arg_spec = None, None
            else:
                arg_ty, arg_spec = self.elab_ty(arg_syntax, tvenv, rigid=True)
            con = C.ConInfo(
                dt=decl.name, tag=tag, index=index, arg_ty=arg_ty, arg_spec=arg_spec
            )
            info.constructors.append(con)
            self.constructors[tag] = con

    def elab_val(self, decl: A.DVal, env: Dict[str, Scheme], toplevel: bool):
        pat = decl.pat
        spec: Optional[LSpec] = None
        if isinstance(pat, A.PAnnot):
            annot_ty, spec = self.elab_ty(pat.ty, {}, rigid=False)
            pat = pat.pat
        else:
            annot_ty = None

        rhs = self.elab_expr(decl.expr, env)
        if annot_ty is not None:
            unify(rhs.ty, annot_ty, decl.span)
            if spec is not None and not spec.is_trivial():
                rhs = C.CAscribe(ty=rhs.ty, expr=rhs, spec=spec, span=decl.span)

        if isinstance(pat, A.PVar):
            name = pat.name
            if toplevel:
                self.resolve_overloads()
                scheme = self.generalize(rhs.ty) if _is_value(decl.expr) else Scheme.mono(rhs.ty)
            else:
                scheme = Scheme.mono(rhs.ty)
            env[name] = scheme

            def wrap(body: C.CoreExpr, name=name, scheme=scheme, rhs=rhs) -> C.CoreExpr:
                return C.CLet(
                    ty=body.ty, name=name, scheme=scheme, rhs=rhs, body=body,
                    span=decl.span,
                )

            return wrap

        # Destructuring val: bind a scratch variable and match.
        cpat, bindings = self.elab_pat(pat, rhs.ty, env)
        if toplevel:
            self.resolve_overloads()
        for bname, bty in bindings.items():
            env[bname] = Scheme.mono(bty)
        scratch = self.fresh_name("val")

        def wrap_destruct(body: C.CoreExpr) -> C.CoreExpr:
            case = C.CCase(
                ty=body.ty,
                scrut=C.CVar(ty=rhs.ty, name=scratch),
                clauses=[(cpat, body)],
                span=decl.span,
            )
            return C.CLet(
                ty=body.ty, name=scratch, scheme=Scheme.mono(rhs.ty),
                rhs=rhs, body=case, span=decl.span,
            )

        return wrap_destruct

    def elab_fun(self, decl: A.DFun, env: Dict[str, Scheme], toplevel: bool):
        # Give each function a fresh monomorphic type for recursive uses.
        fn_tys = {clause.name: TVar() for clause in decl.clauses}
        if len(fn_tys) != len(decl.clauses):
            raise LmlTypeError("duplicate function name in fun group", decl.span)
        inner_env = dict(env)
        for name, ty in fn_tys.items():
            inner_env[name] = Scheme.mono(ty)

        lams: List[Tuple[str, C.CoreExpr]] = []
        for clause in decl.clauses:
            lam = self.elab_clause(clause, inner_env)
            unify(fn_tys[clause.name], lam.ty, clause.span)
            lams.append((clause.name, lam))

        if toplevel:
            self.resolve_overloads()
        bindings = []
        if toplevel:
            # Group members share one quantifier list, so monomorphization
            # can specialize the whole mutually recursive group per key.
            zonked = [(name, zonk(lam.ty), lam) for name, lam in lams]
            qvars: List[TVar] = []
            for _name, zty, _lam in zonked:
                free_type_vars(zty, qvars)
            for name, zty, lam in zonked:
                scheme = Scheme(qvars, zty)
                env[name] = scheme
                bindings.append((name, scheme, lam))
        else:
            for name, lam in lams:
                scheme = Scheme.mono(lam.ty)
                env[name] = scheme
                bindings.append((name, scheme, lam))

        def wrap(body: C.CoreExpr) -> C.CoreExpr:
            return C.CLetRec(ty=body.ty, bindings=bindings, body=body, span=decl.span)

        return wrap

    def elab_clause(self, clause: A.FunClause, env: Dict[str, Scheme]) -> C.CoreExpr:
        """Elaborate one ``fun`` clause into nested lambdas."""
        return self._elab_params(clause.params, clause, env)

    def _elab_params(
        self, params: List[A.Pat], clause: A.FunClause, env: Dict[str, Scheme]
    ) -> C.CoreExpr:
        if not params:
            body = self.elab_expr(clause.body, env)
            if clause.result_ty is not None:
                annot_ty, spec = self.elab_ty(clause.result_ty, {}, rigid=False)
                unify(body.ty, annot_ty, clause.span)
                if not spec.is_trivial():
                    body = C.CAscribe(ty=body.ty, expr=body, spec=spec, span=clause.span)
            return body
        pat, rest = params[0], params[1:]
        param_spec: Optional[LSpec] = None
        if isinstance(pat, A.PAnnot):
            annot_ty, param_spec = self.elab_ty(pat.ty, {}, rigid=False)
            inner = pat.pat
        else:
            annot_ty = None
            inner = pat
        param_ty: Type = TVar()
        if annot_ty is not None:
            unify(param_ty, annot_ty, pat.span)
        if isinstance(inner, A.PVar):
            inner_env = dict(env)
            inner_env[inner.name] = Scheme.mono(param_ty)
            body = self._elab_params(rest, clause, inner_env)
            lam = C.CLam(
                ty=TArrow(param_ty, body.ty),
                param=inner.name,
                param_ty=param_ty,
                body=body,
                span=pat.span,
            )
        else:
            cpat, bindings = self.elab_pat(inner, param_ty, env)
            inner_env = dict(env)
            for bname, bty in bindings.items():
                inner_env[bname] = Scheme.mono(bty)
            body = self._elab_params(rest, clause, inner_env)
            scratch = self.fresh_name("p")
            case = C.CCase(
                ty=body.ty,
                scrut=C.CVar(ty=param_ty, name=scratch),
                clauses=[(cpat, body)],
                span=pat.span,
            )
            lam = C.CLam(
                ty=TArrow(param_ty, body.ty),
                param=scratch,
                param_ty=param_ty,
                body=case,
                span=pat.span,
            )
        if param_spec is not None and not param_spec.is_trivial():
            lam.param_spec = param_spec  # type: ignore[attr-defined]
        return lam

    def generalize(self, ty: Type) -> Scheme:
        """Generalize all residual unification variables (top level only)."""
        ty = zonk(ty)
        return Scheme(free_type_vars(ty), ty)

    # ------------------------------------------------------------------
    # Patterns

    def elab_pat(
        self, pat: A.Pat, expected: Type, env: Dict[str, Scheme]
    ) -> Tuple[C.CPat, Dict[str, Type]]:
        bindings: Dict[str, Type] = {}
        cpat = self._elab_pat(pat, expected, bindings)
        return cpat, bindings

    def _elab_pat(self, pat: A.Pat, expected: Type, bindings: Dict[str, Type]) -> C.CPat:
        if isinstance(pat, A.PAnnot):
            annot_ty, _spec = self.elab_ty(pat.ty, {}, rigid=False)
            unify(expected, annot_ty, pat.span)
            return self._elab_pat(pat.pat, expected, bindings)
        if isinstance(pat, A.PWild):
            return C.CPWild(ty=expected, span=pat.span)
        if isinstance(pat, A.PVar):
            if pat.name in self.constructors:
                con = self.constructors[pat.name]
                if con.arg_ty is not None:
                    raise LmlTypeError(
                        f"constructor {pat.name} expects an argument", pat.span
                    )
                self._unify_con_result(con, expected, pat.span)
                return C.CPCon(ty=expected, dt=con.dt, tag=con.tag, args=[], span=pat.span)
            if pat.name in bindings:
                raise LmlTypeError(f"duplicate pattern variable {pat.name}", pat.span)
            bindings[pat.name] = expected
            return C.CPVar(ty=expected, name=pat.name, span=pat.span)
        if isinstance(pat, A.PConst):
            unify(expected, _CONST_TYPES[pat.kind], pat.span)
            return C.CPConst(ty=expected, value=pat.value, kind=pat.kind, span=pat.span)
        if isinstance(pat, A.PTuple):
            item_tys: List[Type] = [TVar() for _ in pat.items]
            unify(expected, TTuple(item_tys), pat.span)
            items = [
                self._elab_pat(p, t, bindings) for p, t in zip(pat.items, item_tys)
            ]
            return C.CPTuple(ty=expected, items=items, span=pat.span)
        if isinstance(pat, A.PCon):
            if pat.name not in self.constructors:
                raise LmlTypeError(f"unknown constructor {pat.name}", pat.span)
            con = self.constructors[pat.name]
            if con.arg_ty is None:
                raise LmlTypeError(
                    f"constructor {pat.name} takes no argument", pat.span
                )
            field_ty = self._unify_con_result(con, expected, pat.span)
            arg = self._elab_pat(pat.arg, field_ty, bindings)
            return C.CPCon(
                ty=expected, dt=con.dt, tag=con.tag, args=[arg], span=pat.span
            )
        raise AssertionError(f"unknown pattern {pat!r}")

    def _unify_con_result(
        self, con: C.ConInfo, expected: Type, span: SourceSpan
    ) -> Optional[Type]:
        """Unify ``expected`` with the constructor's datatype; return the
        instantiated field type (None for nullary constructors)."""
        info = self.datatypes[con.dt]
        mapping = {id(tv): TVar() for tv in info.tyvars}
        from repro.lang.types import subst_vars

        result = TCon(con.dt, [mapping[id(tv)] for tv in info.tyvars])
        unify(expected, result, span)
        if con.arg_ty is None:
            return None
        return subst_vars(con.arg_ty, mapping)

    # ------------------------------------------------------------------
    # Expressions

    def elab_expr(self, expr: A.Expr, env: Dict[str, Scheme]) -> C.CoreExpr:
        if isinstance(expr, A.EConst):
            return C.CConst(
                ty=_CONST_TYPES[expr.kind], value=expr.value, kind=expr.kind,
                span=expr.span,
            )
        if isinstance(expr, A.EVar):
            return self.elab_var(expr, env)
        if isinstance(expr, A.EPrim):
            return self.elab_prim(expr.op, expr.args, env, expr.span)
        if isinstance(expr, A.EApp):
            return self.elab_app(expr, env)
        if isinstance(expr, A.ETuple):
            items = [self.elab_expr(e, env) for e in expr.items]
            return C.CTuple(
                ty=TTuple([e.ty for e in items]), items=items, span=expr.span
            )
        if isinstance(expr, A.EProj):
            arg = self.elab_expr(expr.arg, env)
            arg_ty = force(arg.ty)
            if not isinstance(arg_ty, TTuple):
                raise LmlTypeError(
                    "cannot determine tuple shape for #%d projection; "
                    "add a type annotation" % expr.index,
                    expr.span,
                )
            if not 1 <= expr.index <= len(arg_ty.items):
                raise LmlTypeError("projection index out of range", expr.span)
            return C.CProj(
                ty=arg_ty.items[expr.index - 1], index=expr.index, arg=arg,
                span=expr.span,
            )
        if isinstance(expr, A.EIf):
            cond = self.elab_expr(expr.cond, env)
            unify(cond.ty, BOOL, expr.span)
            then = self.elab_expr(expr.then, env)
            els = self.elab_expr(expr.els, env)
            unify(then.ty, els.ty, expr.span)
            return C.CIf(ty=then.ty, cond=cond, then=then, els=els, span=expr.span)
        if isinstance(expr, A.ECase):
            scrut = self.elab_expr(expr.scrut, env)
            result_ty: Type = TVar()
            clauses = []
            for pat, body_expr in expr.clauses:
                cpat, bindings = self.elab_pat(pat, scrut.ty, env)
                inner_env = dict(env)
                for bname, bty in bindings.items():
                    inner_env[bname] = Scheme.mono(bty)
                body = self.elab_expr(body_expr, inner_env)
                unify(body.ty, result_ty, expr.span)
                clauses.append((cpat, body))
            return C.CCase(ty=result_ty, scrut=scrut, clauses=clauses, span=expr.span)
        if isinstance(expr, A.EFn):
            clause = A.FunClause(
                name="<fn>", params=[expr.param], result_ty=None, body=expr.body,
                span=expr.span,
            )
            return self._elab_params([expr.param], clause, env)
        if isinstance(expr, A.ELet):
            inner_env = dict(env)
            wrappers = [
                self.elab_decl(d, inner_env, toplevel=False) for d in expr.decls
            ]
            body = self.elab_expr(expr.body, inner_env)
            for wrap in reversed(wrappers):
                body = wrap(body)
            return body
        if isinstance(expr, A.EAnnot):
            inner = self.elab_expr(expr.expr, env)
            annot_ty, spec = self.elab_ty(expr.ty, {}, rigid=False)
            unify(inner.ty, annot_ty, expr.span)
            if spec.is_trivial():
                return inner
            return C.CAscribe(ty=inner.ty, expr=inner, spec=spec, span=expr.span)
        if isinstance(expr, A.ERef):
            arg = self.elab_expr(expr.arg, env)
            return C.CRef(ty=ref_of(arg.ty), arg=arg, span=expr.span)
        if isinstance(expr, A.EDeref):
            arg = self.elab_expr(expr.arg, env)
            inner_ty: Type = TVar()
            unify(arg.ty, ref_of(inner_ty), expr.span)
            return C.CDeref(ty=inner_ty, arg=arg, span=expr.span)
        if isinstance(expr, A.EAssign):
            ref = self.elab_expr(expr.ref, env)
            value = self.elab_expr(expr.value, env)
            unify(ref.ty, ref_of(value.ty), expr.span)
            return C.CAssign(ty=UNIT, ref=ref, value=value, span=expr.span)
        if isinstance(expr, A.ESeq):
            first = self.elab_expr(expr.first, env)
            second = self.elab_expr(expr.second, env)
            return C.CLet(
                ty=second.ty,
                name=self.fresh_name("seq"),
                scheme=Scheme.mono(first.ty),
                rhs=first,
                body=second,
                span=expr.span,
            )
        raise AssertionError(f"unknown expression {expr!r}")

    def elab_var(self, expr: A.EVar, env: Dict[str, Scheme]) -> C.CoreExpr:
        name = expr.name
        if name in env:
            scheme = env[name]
            ty, inst = scheme.instantiate()
            return C.CVar(
                ty=ty, name=name, inst=inst if scheme.qvars else None, span=expr.span
            )
        if name in self.constructors:
            con = self.constructors[name]
            if con.arg_ty is None:
                result: Type = TVar()
                self._unify_con_result(con, result, expr.span)
                return C.CCon(ty=result, dt=con.dt, tag=con.tag, args=[], span=expr.span)
            # Eta-expand a bare non-nullary constructor.
            result = TVar()
            field_ty = self._unify_con_result(con, result, expr.span)
            assert field_ty is not None
            param = self.fresh_name("x")
            body = C.CCon(
                ty=result, dt=con.dt, tag=con.tag,
                args=[C.CVar(ty=field_ty, name=param, span=expr.span)],
                span=expr.span,
            )
            return C.CLam(
                ty=TArrow(field_ty, result), param=param, param_ty=field_ty,
                body=body, span=expr.span,
            )
        if name in BUILTIN_SCHEMES:
            scheme = BUILTIN_SCHEMES[name]
            ty, inst = scheme.instantiate()
            return C.CVar(
                ty=ty, name=name, inst=inst, is_builtin=True, span=expr.span
            )
        if name in NAMED_PRIMS:
            return self._eta_prim(name, expr.span)
        raise LmlTypeError(f"unbound variable {name}", expr.span)

    def _eta_prim(self, op: str, span: SourceSpan) -> C.CoreExpr:
        """Eta-expand a named primitive used in value position."""
        sig = PRIMS[op]
        arg_tys, result_ty, over = prim_instance(sig)
        if over is not None:
            self.add_overload(over, sig.overload, sig.default, span)
        if len(arg_tys) == 1:
            param = self.fresh_name("x")
            body = C.CPrim(
                ty=result_ty, op=op, args=[C.CVar(ty=arg_tys[0], name=param, span=span)],
                span=span,
            )
            return C.CLam(
                ty=TArrow(arg_tys[0], result_ty), param=param, param_ty=arg_tys[0],
                body=body, span=span,
            )
        tup_ty = TTuple(arg_tys)
        param = self.fresh_name("p")
        args = [
            C.CProj(
                ty=t, index=i + 1, arg=C.CVar(ty=tup_ty, name=param, span=span),
                span=span,
            )
            for i, t in enumerate(arg_tys)
        ]
        body = C.CPrim(ty=result_ty, op=op, args=args, span=span)
        return C.CLam(
            ty=TArrow(tup_ty, result_ty), param=param, param_ty=tup_ty, body=body,
            span=span,
        )

    def elab_prim(
        self, op: str, args: List[A.Expr], env: Dict[str, Scheme], span: SourceSpan
    ) -> C.CoreExpr:
        sig = PRIMS[op]
        arg_tys, result_ty, over = prim_instance(sig)
        if over is not None:
            self.add_overload(over, sig.overload, sig.default, span)
        if len(args) != len(arg_tys):
            raise LmlTypeError(f"operator {op} expects {len(arg_tys)} arguments", span)
        cargs = []
        for a, expected in zip(args, arg_tys):
            ca = self.elab_expr(a, env)
            unify(ca.ty, expected, span)
            cargs.append(ca)
        return C.CPrim(ty=result_ty, op=op, args=cargs, span=span)

    def elab_app(self, expr: A.EApp, env: Dict[str, Scheme]) -> C.CoreExpr:
        fn = expr.fn
        # Named primitive applied to arguments
        if isinstance(fn, A.EVar) and fn.name not in env and fn.name in NAMED_PRIMS:
            sig = PRIMS[fn.name]
            if len(sig.arg_kinds) == 1:
                return self.elab_prim(fn.name, [expr.arg], env, expr.span)
            if isinstance(expr.arg, A.ETuple) and len(expr.arg.items) == len(sig.arg_kinds):
                return self.elab_prim(fn.name, expr.arg.items, env, expr.span)
            raise LmlTypeError(
                f"primitive {fn.name} must be applied to a "
                f"{len(sig.arg_kinds)}-tuple",
                expr.span,
            )
        # Constructor application
        if isinstance(fn, A.EVar) and fn.name not in env and fn.name in self.constructors:
            con = self.constructors[fn.name]
            if con.arg_ty is None:
                raise LmlTypeError(
                    f"constructor {fn.name} takes no argument", expr.span
                )
            result: Type = TVar()
            field_ty = self._unify_con_result(con, result, expr.span)
            assert field_ty is not None
            arg = self.elab_expr(expr.arg, env)
            unify(arg.ty, field_ty, expr.span)
            return C.CCon(
                ty=result, dt=con.dt, tag=con.tag, args=[arg], span=expr.span
            )
        cfn = self.elab_expr(fn, env)
        carg = self.elab_expr(expr.arg, env)
        result_ty: Type = TVar()
        unify(cfn.ty, TArrow(carg.ty, result_ty), expr.span)
        return C.CApp(ty=result_ty, fn=cfn, arg=carg, span=expr.span)


def _subst_tysyn(ts: A.TySyn, mapping: Dict[str, A.TySyn]) -> A.TySyn:
    """Substitute type syntax for type variables (abbreviation expansion)."""
    if isinstance(ts, A.TSVar):
        return mapping.get(ts.name, ts)
    if isinstance(ts, A.TSCon):
        return A.TSCon(
            name=ts.name, args=[_subst_tysyn(a, mapping) for a in ts.args],
            span=ts.span,
        )
    if isinstance(ts, A.TSTuple):
        return A.TSTuple(
            items=[_subst_tysyn(t, mapping) for t in ts.items], span=ts.span
        )
    if isinstance(ts, A.TSArrow):
        return A.TSArrow(
            dom=_subst_tysyn(ts.dom, mapping), cod=_subst_tysyn(ts.cod, mapping),
            span=ts.span,
        )
    if isinstance(ts, A.TSLevel):
        return A.TSLevel(
            body=_subst_tysyn(ts.body, mapping), level=ts.level, span=ts.span
        )
    raise AssertionError(f"unknown type syntax {ts!r}")


def _is_value(expr: A.Expr) -> bool:
    """SML value restriction: may this expression be generalized?"""
    if isinstance(expr, (A.EFn, A.EConst, A.EVar)):
        return True
    if isinstance(expr, A.ETuple):
        return all(_is_value(e) for e in expr.items)
    if isinstance(expr, A.EAnnot):
        return _is_value(expr.expr)
    return False


def elaborate(program: A.Program, main: str = "main") -> C.CoreProgram:
    """Elaborate a parsed program into typed Core IR."""
    return Elaborator().elab_program(program, main)
