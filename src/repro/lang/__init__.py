"""The LML language frontend.

LML (paper Section 3) is Standard ML extended with a single type qualifier,
``$C``, marking *changeable* data.  This package provides the lexer, parser,
surface AST, the ML type system (Hindley-Milner inference with operator
overloading), and elaboration into the typed Core IR consumed by the
compiler middle-end in :mod:`repro.core`.

Level (``$S``/``$C``) *inference* runs later, on the monomorphic A-normal
form (see :mod:`repro.core.levels`), mirroring how the paper's compiler
propagates levels through MLton's intermediate languages down to SXML.
"""

from repro.lang.errors import LmlError, LmlSyntaxError, LmlTypeError, SourceSpan

__all__ = ["LmlError", "LmlSyntaxError", "LmlTypeError", "SourceSpan"]
