"""Built-in primitives and library functions of LML.

Two kinds of built-in names:

* **Primitive operators** (``PRIMS``): arithmetic, comparisons, and the
  real-valued math functions.  They operate on *base* types, may be
  overloaded between ``int`` and ``real``, and -- crucially for the
  translation -- are *level-polymorphic*: applied to changeable operands,
  the translation wraps them in reads and a write (paper Section 3.3's
  coercions, and the ``a * b`` example of Figure 2).

* **Vector operations** (``BUILTINS``): the stable, ML-polymorphic vector
  library of paper Section 2.1 (``map``, ``map2``, ``reduce`` and friends).
  Their control flow is stable -- changeability rides entirely inside the
  element type -- and ``vreduce`` combines elements with a *balanced
  divide-and-conquer*, which is what gives O(log n) change propagation
  through reductions.

The Python implementations of the vector operations live in
:mod:`repro.interp.builtins`; this module defines only names and types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    Scheme,
    TArrow,
    TTuple,
    TVar,
    Type,
    vector_of,
)


@dataclass(frozen=True)
class PrimSig:
    """Typing of one primitive operator.

    ``overload`` lists the admissible operand base types; ``None`` means the
    signature is fixed.  ``shape`` describes argument/result types in terms
    of the overloaded type ``a``: e.g. ``("a", "a") -> "a"`` for ``+``.
    """

    name: str
    arg_kinds: Tuple[str, ...]  # each: 'a' (overloaded) or a base type name
    result_kind: str
    overload: Optional[Tuple[str, ...]] = None
    default: str = "int"


PRIMS: Dict[str, PrimSig] = {}


def _prim(name, args, result, overload=None, default="int"):
    PRIMS[name] = PrimSig(name, tuple(args), result, overload, default)


# Arithmetic (overloaded int/real, as in SML)
_prim("+", ["a", "a"], "a", ("int", "real"))
_prim("-", ["a", "a"], "a", ("int", "real"))
_prim("*", ["a", "a"], "a", ("int", "real"))
_prim("~", ["a"], "a", ("int", "real"))
_prim("/", ["real", "real"], "real")
_prim("div", ["int", "int"], "int")
_prim("mod", ["int", "int"], "int")

# Comparisons and equality
_prim("<", ["a", "a"], "bool", ("int", "real", "string"))
_prim("<=", ["a", "a"], "bool", ("int", "real", "string"))
_prim(">", ["a", "a"], "bool", ("int", "real", "string"))
_prim(">=", ["a", "a"], "bool", ("int", "real", "string"))
_prim("=", ["a", "a"], "bool", ("int", "real", "string", "bool"))
_prim("<>", ["a", "a"], "bool", ("int", "real", "string", "bool"))

# Booleans and strings
_prim("not", ["bool"], "bool")
_prim("^", ["string", "string"], "string")

# Real math (named prims: parsed as identifiers, recognized in elaboration)
_prim("sqrt", ["real"], "real")
_prim("rpow", ["real", "real"], "real")
_prim("floor", ["real"], "int")
_prim("toReal", ["int"], "real")

#: Named (identifier-spelled) prims, usable in expression position.
NAMED_PRIMS = {"sqrt", "rpow", "floor", "toReal", "not", "div", "mod"}

_BASE: Dict[str, Type] = {
    "int": INT,
    "real": REAL,
    "bool": BOOL,
    "string": STRING,
}


def prim_instance(sig: PrimSig) -> Tuple[List[Type], Type, Optional[TVar]]:
    """Instantiate a prim signature.

    Returns (argument types, result type, overloaded variable or None).
    """
    over: Optional[TVar] = TVar() if sig.overload else None

    def kind_ty(kind: str) -> Type:
        if kind == "a":
            assert over is not None
            return over
        return _BASE[kind]

    args = [kind_ty(k) for k in sig.arg_kinds]
    result = kind_ty(sig.result_kind)
    return args, result, over


# ----------------------------------------------------------------------
# Vector builtins


def _scheme(n_vars: int, build) -> Scheme:
    qvars = [TVar() for _ in range(n_vars)]
    return Scheme(qvars, build(*qvars))


BUILTIN_SCHEMES: Dict[str, Scheme] = {
    # vtabulate (n, f) = <f 0, ..., f (n-1)>
    "vtabulate": _scheme(1, lambda a: TArrow(TTuple([INT, TArrow(INT, a)]), vector_of(a))),
    "vlength": _scheme(1, lambda a: TArrow(vector_of(a), INT)),
    "vsub": _scheme(1, lambda a: TArrow(TTuple([vector_of(a), INT]), a)),
    "vmap": _scheme(
        2, lambda a, b: TArrow(TTuple([vector_of(a), TArrow(a, b)]), vector_of(b))
    ),
    "vmap2": _scheme(
        3,
        lambda a, b, c: TArrow(
            TTuple([vector_of(a), vector_of(b), TArrow(TTuple([a, b]), c)]),
            vector_of(c),
        ),
    ),
    # vreduce (v, z, f): balanced reduction; z returned for the empty vector.
    "vreduce": _scheme(
        1,
        lambda a: TArrow(TTuple([vector_of(a), a, TArrow(TTuple([a, a]), a)]), a),
    ),
}

#: Scheme positions with these base types must remain stable (e.g. vector
#: lengths and indices); see DESIGN.md Section 6.
BUILTIN_NAMES = frozenset(BUILTIN_SCHEMES)
