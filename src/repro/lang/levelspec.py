"""Level specifications: the shape of ``$C`` annotations.

A :class:`LSpec` mirrors the structure of a type and records, per position,
what the programmer said about its level:

* ``level='C'`` -- annotated changeable (``$C``);
* ``level='S'`` -- explicitly stable (``$S``, or an unannotated concrete
  position in a *datatype declaration*, which is rigid);
* ``level=None`` -- unconstrained: level inference decides.

``rigid`` distinguishes datatype-field positions (where an unannotated
position *must* stay stable -- inferring C there is a level error asking the
programmer for an annotation) from ordinary expression annotations (where
unannotated positions are flexible).

Positions occupied by type variables are ``FLEX`` leaves: their levels come
entirely from the instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class LSpec:
    kind: str  # 'base' | 'tuple' | 'arrow' | 'con' | 'flex'
    level: Optional[str] = None  # 'C' | 'S' | None
    rigid: bool = False
    children: List["LSpec"] = field(default_factory=list)
    name: str = ""  # for kind == 'con': the type constructor name

    def with_level(self, level: str, rigid: bool) -> "LSpec":
        """A copy of this spec with the top level (re)set."""
        return LSpec(self.kind, level, rigid, self.children, self.name)

    def is_trivial(self) -> bool:
        """True if the spec constrains nothing (no level anywhere)."""
        if self.level is not None:
            return False
        return all(c.is_trivial() for c in self.children)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        mark = {"C": "$C", "S": "$S", None: ""}[self.level]
        if self.kind == "flex":
            return "_" + mark
        if self.kind == "base":
            return self.name + mark
        if self.kind == "tuple":
            return "(" + " * ".join(map(str, self.children)) + ")" + mark
        if self.kind == "arrow":
            return f"({self.children[0]} -> {self.children[1]}){mark}"
        inner = ", ".join(map(str, self.children))
        return f"({inner}) {self.name}{mark}"


def flex() -> LSpec:
    return LSpec("flex")


def base(name: str, level: Optional[str] = None, rigid: bool = False) -> LSpec:
    return LSpec("base", level, rigid, [], name)
