"""Deterministic fault injection for the self-adjusting engine.

Change propagation re-executes user code (read bodies), and the engine's
failure model (DESIGN.md Section 7) promises that an exception thrown at
*any* point of a re-execution leaves the trace consistent and the session
recoverable.  A promise like that is only worth what its test harness
proves, so this module provides:

* :class:`FaultInjector` -- a :class:`~repro.obs.events.TraceHook` that
  raises a planted exception at the Nth occurrence of a chosen trace
  *site* (read start, mod allocation, write, memo hit, ...), restricted
  to an execution window (during propagation, during initial runs, or
  anywhere).  Hook callbacks run synchronously inside the engine, so the
  raise surfaces exactly where a failing user function would.
* :class:`SiteCounter` -- the passive twin: counts site events in the
  same window, so a probe run can enumerate every injectable position.
* :func:`chaos_app` -- the chaos driver: for one app and backend, inject
  a fault at selected positions of each site during the first
  propagation, recover through ``Session.propagate(on_error=...)``
  (``rollback`` and ``rebuild``), propagate the remaining edits, and
  check the final output against a from-scratch oracle and the app's
  reference function, with :mod:`repro.obs.invariants` riding along.

Faults are deterministic: the same (app, n, seed, site, at) quintuple
always fires at the same trace event, so every chaos failure replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.events import FanoutHook, TraceHook
from repro.obs.invariants import InvariantChecker, check_trace

__all__ = [
    "SITES",
    "CORRUPTIONS",
    "ChaosError",
    "ChaosResult",
    "FaultInjector",
    "PersistChaosResult",
    "PlantedFault",
    "SiteCounter",
    "chaos_app",
    "chaos_persist",
    "corrupt_file",
]


class PlantedFault(RuntimeError):
    """The default exception planted by :class:`FaultInjector`."""


#: Injectable trace sites: site name -> the hook callback that marks it.
SITES: Dict[str, str] = {
    "read": "on_read_start",
    "mod": "on_mod_create",
    "write": "on_write",
    "memo-hit": "on_memo_hit",
    "memo-miss": "on_memo_miss",
    "change": "on_change",
    "reexec": "on_reexec",
}

_WINDOWS = ("propagate", "run", "any")


class _SiteHook(TraceHook):
    """Map engine callbacks to named site events, filtered by a window.

    ``during="propagate"`` observes only events emitted while the engine
    is propagating (the window a re-executed reader runs in); ``"run"``
    only events outside propagation (initial runs and edits); ``"any"``
    everything.  Subclasses override :meth:`_site`.
    """

    def __init__(self, during: str = "propagate") -> None:
        if during not in _WINDOWS:
            raise ValueError(f"during must be one of {_WINDOWS}, got {during!r}")
        self.during = during

    def _in_window(self) -> bool:
        if self.during == "any":
            return True
        propagating = self.engine is not None and self.engine.propagating
        return propagating if self.during == "propagate" else not propagating

    def _site(self, name: str) -> None:
        raise NotImplementedError

    # -- engine callbacks, one per site --------------------------------------
    def on_read_start(self, edge: Any) -> None:
        self._site("read")

    def on_mod_create(self, mod: Any, is_input: bool, recycled: bool) -> None:
        self._site("mod")

    def on_write(self, dest: Any, value: Any, changed: bool) -> None:
        self._site("write")

    def on_memo_hit(self, entry: Any) -> None:
        self._site("memo-hit")

    def on_memo_miss(self, key: Any) -> None:
        self._site("memo-miss")

    def on_change(self, mod: Any, value: Any, changed: bool) -> None:
        self._site("change")

    def on_reexec(self, edge: Any) -> None:
        self._site("reexec")


class SiteCounter(_SiteHook):
    """Count site events inside the window without interfering.

    A probe run with a ``SiteCounter`` enumerates the injectable positions
    for a later :class:`FaultInjector` with the same ``during`` window.
    """

    def __init__(self, during: str = "propagate") -> None:
        super().__init__(during)
        self.counts: Dict[str, int] = {name: 0 for name in SITES}

    def _site(self, name: str) -> None:
        if self._in_window():
            self.counts[name] += 1

    def total(self) -> int:
        return sum(self.counts.values())


class FaultInjector(_SiteHook):
    """Raise a planted exception at the Nth event of one trace site.

    ``site`` names the trace site (a :data:`SITES` key); ``at`` is the
    zero-based event index within the window at which to fire.  ``exc``
    is the exception to raise -- an instance, or a class instantiated
    with a descriptive message.  One-shot by default (disarms after
    firing, so recovery and later propagations run clean); with
    ``repeat=True`` the fault is *persistent* and fires at every event
    index >= ``at``, which is how you drive recovery itself into the
    ground (e.g. to test engine poisoning and ``rebuild``).

    ``fired`` counts raises; ``counts`` mirrors :class:`SiteCounter`.
    """

    def __init__(
        self,
        site: str,
        at: int = 0,
        exc: Union[BaseException, type] = PlantedFault,
        *,
        during: str = "propagate",
        repeat: bool = False,
    ) -> None:
        super().__init__(during)
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}; expected one of {sorted(SITES)}")
        self.site = site
        self.at = at
        self.exc = exc
        self.repeat = repeat
        self.armed = True
        self.fired = 0
        self.counts: Dict[str, int] = {name: 0 for name in SITES}

    def _site(self, name: str) -> None:
        if not self._in_window():
            return
        idx = self.counts[name]
        self.counts[name] = idx + 1
        if name != self.site or not self.armed:
            return
        if idx == self.at or (self.repeat and idx > self.at):
            self.fired += 1
            if not self.repeat:
                self.armed = False
            exc = self.exc
            if isinstance(exc, type):
                exc = exc(f"planted fault at {name}[{idx}]")
            raise exc


# ----------------------------------------------------------------------
# The chaos driver


class ChaosError(AssertionError):
    """A chaos scenario produced a wrong output or a corrupt trace."""


@dataclass
class ChaosResult:
    """Outcome of one :func:`chaos_app` sweep."""

    name: str
    backend: str
    n: int
    scenarios: int
    fired: int
    #: sites that emitted no events during the probed propagation (nothing
    #: to inject there for this app/size; reported, not silently dropped).
    skipped_sites: List[str] = field(default_factory=list)
    invariant_checks: int = 0

    def __str__(self) -> str:
        text = (
            f"chaos {self.name} [{self.backend}] n={self.n}: "
            f"{self.scenarios} scenarios, {self.fired} faults fired and "
            f"recovered, {self.invariant_checks} invariant checks"
        )
        if self.skipped_sites:
            text += f" (no events at: {', '.join(self.skipped_sites)})"
        return text


def _positions(count: int, positions: Optional[Sequence[int]]) -> List[int]:
    if positions is not None:
        return [p for p in positions if 0 <= p < count]
    if count == 0:
        return []
    # First, middle, last: the boundary positions where cleanup bugs live.
    return sorted({0, count // 2, count - 1})


def chaos_app(
    app: Any,
    n: int,
    *,
    backend: Optional[str] = None,
    sites: Sequence[str] = ("read", "mod", "write", "memo-hit"),
    modes: Sequence[str] = ("rollback", "rebuild"),
    changes: int = 3,
    seed: int = 0,
    positions: Optional[Sequence[int]] = None,
    check_invariants: bool = True,
    propagation: str = "eager",
) -> ChaosResult:
    """Fault-inject one app on one backend and prove it recovers.

    A probe run applies all ``changes`` random edits, counting the trace
    events each site emits during propagation.  Then, for every ``site``,
    probed position, and recovery ``mode``, a fresh session replays the
    exact same run with a one-shot :class:`FaultInjector` planted at that
    position (the event stream is deterministic, so the fault fires
    during whichever propagation reaches it); every propagation goes
    through ``Session.propagate(on_error=mode)``.  The final output must
    match both a from-scratch rerun of the same compiled program (the
    oracle) and the app's reference function, with the trace passing the
    structural invariant check.

    ``propagation="lazy"`` runs the whole sweep on lazy sessions: each
    change is followed by a full-output demand
    (``Session.demand(on_error=mode)``) instead of an eager propagation,
    so faults fire *inside demand walks* -- the injection window keys on
    ``engine.propagating``, which a demand pass also sets.

    Returns a :class:`ChaosResult`; raises :class:`ChaosError` on any
    divergence.  Deterministic in ``seed``.
    """
    from repro.api import Session, values_close  # deferred: api imports obs lazily

    from repro.apps import REGISTRY

    if isinstance(app, str):
        app = REGISTRY[app]
    for site in sites:
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}")
    if propagation not in ("eager", "lazy"):
        raise ValueError(
            f'propagation must be "eager" or "lazy", got {propagation!r}'
        )
    lazy = propagation == "lazy"

    # Probe: enumerate the injectable positions over all propagations.
    rng = random.Random(seed)
    data = app.make_data(n, rng)
    counter = SiteCounter(during="propagate")
    probe = Session(app, backend=backend, hook=counter, mode=propagation)
    probe.run(data=data)
    for step in range(changes):
        app.apply_change(probe.input_handle, rng, step)
        if lazy:
            probe.demand()
        else:
            probe.propagate()
    counts = dict(counter.counts)
    resolved_backend = probe.backend

    scenarios = fired = invariant_checks = 0
    skipped = [site for site in sites if not _positions(counts[site], positions)]

    for site in sites:
        for at in _positions(counts[site], positions):
            for mode in modes:
                scenarios += 1
                # Replay the exact same run: same seed, data, change stream.
                rng = random.Random(seed)
                data = app.make_data(n, rng)
                checker = InvariantChecker() if check_invariants else None
                injector = FaultInjector(site, at=at)
                hooks: List[TraceHook] = [h for h in (checker, injector) if h]
                session = Session(
                    app,
                    backend=backend,
                    hook=FanoutHook(hooks),
                    mode=propagation,
                )
                session.run(data=data)

                for step in range(changes):
                    app.apply_change(session.input_handle, rng, step)
                    if lazy:
                        stats = session.demand(on_error=mode)
                    else:
                        stats = session.propagate(on_error=mode)
                    if stats.path not in ("propagate", "demand"):
                        fired += 1
                    if stats.path == "rollback":
                        # Rollback left the edit re-staged; the fault was
                        # one-shot, so applying it now succeeds.
                        if lazy:
                            session.demand()
                        else:
                            session.propagate()

                scenario = (
                    f"{app.name} [{resolved_backend}] site={site} at={at} "
                    f"mode={mode} seed={seed}"
                )
                current = app.handle_data(session.input_handle)
                got = app.readback(session.output)
                scratch = Session(session.program, backend=session.backend)
                scratch.app = app
                oracle = app.readback(scratch.run(data=current))
                if not values_close(got, oracle):
                    raise ChaosError(
                        f"chaos {scenario}: output diverges from a "
                        f"from-scratch rerun\n  recovered:    {got!r}\n"
                        f"  from scratch: {oracle!r}"
                    )
                expected = app.reference(current)
                if not values_close(got, expected):
                    raise ChaosError(
                        f"chaos {scenario}: output diverges from reference\n"
                        f"  recovered: {got!r}\n  expected:  {expected!r}"
                    )
                if lazy:
                    # A full-output demand may leave work that feeds
                    # nothing in the output queued; flush it and require
                    # the flush to land on a fully clean trace.  The
                    # fault under test targets the demand walks, so
                    # disarm before flushing (a one-shot fault whose
                    # position was deferred past every demand would
                    # otherwise fire here instead).
                    check_trace(session.engine, expect_empty_queue=False)
                    injector.armed = False
                    session.propagate()
                check_trace(session.engine, expect_empty_queue=True)
                if checker is not None:
                    invariant_checks += checker.total_checks()

    return ChaosResult(
        name=app.name,
        backend=resolved_backend,
        n=n,
        scenarios=scenarios,
        fired=fired,
        skipped_sites=skipped,
        invariant_checks=invariant_checks,
    )


# ----------------------------------------------------------------------
# Persistence chaos: corrupt snapshots and journals, prove detection
#
# The durability layer's failure model (DESIGN.md Section 10) is the
# mirror image of the propagation one: a snapshot or journal damaged at
# *any* byte must either restore correctly (damage past the live data),
# fail with a typed :class:`repro.persist.PersistError` -- never a wrong
# value, never a crash of the host -- or, for a journal, replay exactly a
# clean *prefix* of the acknowledged edits.  These fault sites drive
# those promises the way :class:`FaultInjector` drives the engine's.


def _corrupt_truncate_half(blob: bytes, rng: "random.Random") -> bytes:
    return blob[: len(blob) // 2]

def _corrupt_truncate_tail(blob: bytes, rng: "random.Random") -> bytes:
    return blob[: max(0, len(blob) - rng.randrange(1, 64))]

def _corrupt_flip_byte(blob: bytes, rng: "random.Random") -> bytes:
    if not blob:
        return blob
    # Flip inside the payload (past the magic + most of the header) so
    # the damage lands in CRC-guarded bytes, not trivially in the magic.
    i = rng.randrange(len(blob) // 4, len(blob))
    return blob[:i] + bytes([blob[i] ^ 0x40]) + blob[i + 1 :]

def _corrupt_magic(blob: bytes, rng: "random.Random") -> bytes:
    return b"#not-a-snapshot 9\n" + blob[18:]

def _corrupt_empty(blob: bytes, rng: "random.Random") -> bytes:
    return b""


#: Corruption kinds for :func:`corrupt_file`: name -> bytes transformer.
CORRUPTIONS: Dict[str, Any] = {
    "truncate-half": _corrupt_truncate_half,
    "truncate-tail": _corrupt_truncate_tail,
    "flip-byte": _corrupt_flip_byte,
    "bad-magic": _corrupt_magic,
    "empty": _corrupt_empty,
}


def corrupt_file(path: str, kind: str, seed: int = 0) -> None:
    """Damage ``path`` in place with the named corruption (deterministic
    in ``seed``)."""
    with open(path, "rb") as f:
        blob = f.read()
    with open(path, "wb") as f:
        f.write(CORRUPTIONS[kind](blob, random.Random(seed)))


@dataclass
class PersistChaosResult:
    """Outcome of one :func:`chaos_persist` sweep."""

    name: str
    backend: str
    mode: str
    n: int
    scenarios: int
    detected: int
    survived: int  # corruptions the restore legitimately shrugged off

    def __str__(self) -> str:
        return (
            f"persist-chaos {self.name} [{self.backend}/{self.mode}] "
            f"n={self.n}: {self.scenarios} corruption scenarios, "
            f"{self.detected} detected, {self.survived} harmless"
        )


def chaos_persist(
    app: Any,
    n: int,
    *,
    backend: Optional[str] = None,
    mode: str = "eager",
    changes: int = 2,
    seed: int = 0,
    kinds: Optional[Sequence[str]] = None,
    dir: Optional[str] = None,
) -> PersistChaosResult:
    """Corrupt a live snapshot every way we know and prove each outcome.

    One session runs ``changes`` random edits and snapshots.  First the
    *intact* snapshot must restore to a session whose output matches the
    live one and the app's reference (the oracle for everything after).
    Then, per corruption kind, a damaged copy must either raise a typed
    :class:`repro.persist.PersistError` (detection) or -- when the damage
    misses the live bytes -- restore to the oracle output.  Any other
    outcome (wrong value, foreign exception) is a :class:`ChaosError`.
    """
    import os
    import shutil
    import tempfile

    from repro.api import Session, values_close
    from repro.apps import REGISTRY
    from repro.persist import PersistError

    if isinstance(app, str):
        app = REGISTRY[app]
    kinds = tuple(kinds) if kinds is not None else tuple(CORRUPTIONS)
    for kind in kinds:
        if kind not in CORRUPTIONS:
            raise ValueError(f"unknown corruption {kind!r}")

    tmp = dir or tempfile.mkdtemp(prefix="repro-chaos-persist-")
    try:
        rng = random.Random(seed)
        session = Session(app, backend=backend, mode=mode)
        session.run(data=app.make_data(n, rng))
        for step in range(changes):
            app.apply_change(session.input_handle, rng, step)
            if mode == "lazy":
                session.demand()
            else:
                session.propagate()
        snap = os.path.join(tmp, f"{app.name}.snap")
        session.snapshot(snap)
        oracle = app.readback(session.output)
        expected = app.reference(app.handle_data(session.input_handle))
        if not values_close(oracle, expected):
            raise ChaosError(
                f"persist-chaos {app.name}: live session diverges from "
                f"reference before any corruption"
            )

        # The intact snapshot is the baseline: restore must reproduce it.
        restored = Session.restore(snap, app)
        got = app.readback(restored.output)
        if not values_close(got, oracle):
            raise ChaosError(
                f"persist-chaos {app.name} [{session.backend}]: intact "
                f"snapshot restored to {got!r}, live session has {oracle!r}"
            )
        if restored.engine.meter.snapshot() != session.engine.meter.snapshot():
            raise ChaosError(
                f"persist-chaos {app.name} [{session.backend}]: intact "
                f"restore is not meter-exact"
            )

        scenarios = detected = survived = 0
        for kind in kinds:
            scenarios += 1
            damaged = os.path.join(tmp, f"{app.name}.{kind}.snap")
            shutil.copyfile(snap, damaged)
            corrupt_file(damaged, kind, seed=seed + scenarios)
            try:
                recovered = Session.restore(damaged, app)
            except PersistError:
                detected += 1
                continue
            except Exception as exc:  # noqa: BLE001 - the failed promise
                raise ChaosError(
                    f"persist-chaos {app.name} [{session.backend}] "
                    f"kind={kind}: restore escaped the typed error model "
                    f"with {type(exc).__name__}: {exc}"
                ) from exc
            got = app.readback(recovered.output)
            if not values_close(got, oracle):
                raise ChaosError(
                    f"persist-chaos {app.name} [{session.backend}] "
                    f"kind={kind}: corruption went UNDETECTED and "
                    f"restored a wrong value\n  got:    {got!r}\n"
                    f"  oracle: {oracle!r}"
                )
            survived += 1
        return PersistChaosResult(
            name=app.name,
            backend=session.backend,
            mode=mode,
            n=n,
            scenarios=scenarios,
            detected=detected,
            survived=survived,
        )
    finally:
        if dir is None:
            shutil.rmtree(tmp, ignore_errors=True)


def chaos_journal(
    app: Any,
    n: int,
    *,
    backend: Optional[str] = None,
    mode: str = "eager",
    edits: int = 6,
    seed: int = 0,
    kinds: Optional[Sequence[str]] = None,
    dir: Optional[str] = None,
) -> PersistChaosResult:
    """Damage a write-ahead journal every way we know and prove each outcome.

    A session runs, snapshots, then journals ``edits`` acknowledged cell
    edits and settles: that readback is the oracle.  Per corruption kind,
    a damaged copy of the journal is replayed onto a fresh restore of the
    snapshot.  The journal's promise is *prefix integrity*: replay must
    yield exactly a clean prefix of the acknowledged records -- either
    silently (torn tail, truncation) or via
    :class:`repro.persist.JournalCorruptError` carrying the prefix
    (mid-file damage, counted as ``detected``).  Re-applying the lost
    suffix by hand must then land the restored session on the oracle,
    meter-exact -- proving damage can only ever *shorten* the replay,
    never corrupt a value.  Requires a scalar-cell app (``vec-reduce``):
    journaled edits go through named ``cell:<i>`` handles, as on the
    server.
    """
    import os
    import shutil
    import tempfile

    from repro.api import Session, values_close
    from repro.apps import REGISTRY
    from repro.persist import JournalCorruptError, replay_journal

    if isinstance(app, str):
        app = REGISTRY[app]
    kinds = tuple(kinds) if kinds is not None else tuple(CORRUPTIONS)
    for kind in kinds:
        if kind not in CORRUPTIONS:
            raise ValueError(f"unknown corruption {kind!r}")

    def settle(s: Session) -> Any:
        return s.demand() if mode == "lazy" else s.propagate() or s.output

    def bind(s: Session) -> None:
        for i, mod in enumerate(s.input_handle.mods):
            s.handle(mod, f"cell:{i}")

    tmp = dir or tempfile.mkdtemp(prefix="repro-chaos-journal-")
    try:
        rng = random.Random(seed)
        session = Session(app, backend=backend, mode=mode)
        session.run(data=app.make_data(n, rng))
        bind(session)
        snap = os.path.join(tmp, f"{app.name}.snap")
        wal = os.path.join(tmp, f"{app.name}.wal")
        session.snapshot(snap)
        session.enable_journal(wal)
        n_cells = len(session.input_handle.mods)
        for _step in range(edits):
            cell = f"cell:{rng.randrange(n_cells)}"
            session.edit(cell, round(rng.uniform(-100.0, 100.0), 3))
        settle(session)
        session.disable_journal()
        oracle = app.readback(session.output)
        meter_oracle = session.engine.meter.snapshot()
        intact = replay_journal(wal)
        if len(intact) != edits:
            raise ChaosError(
                f"journal-chaos {app.name}: intact journal holds "
                f"{len(intact)} records, {edits} were acknowledged"
            )

        scenarios = detected = survived = 0
        for kind in kinds:
            scenarios += 1
            damaged = os.path.join(tmp, f"{app.name}.{kind}.wal")
            shutil.copyfile(wal, damaged)
            corrupt_file(damaged, kind, seed=seed + scenarios)
            restored = Session.restore(snap, app)
            bind(restored)
            try:
                replayed = restored.replay_journal(damaged)
                prefix = intact[:replayed]
                survived += 1
            except JournalCorruptError as exc:
                prefix = list(exc.records)
                for _seq, batch in prefix:
                    for handle, value in batch:
                        restored.edit(handle, value)
                detected += 1
            except Exception as exc:  # noqa: BLE001 - the failed promise
                raise ChaosError(
                    f"journal-chaos {app.name} [{session.backend}] "
                    f"kind={kind}: replay escaped the typed error model "
                    f"with {type(exc).__name__}: {exc}"
                ) from exc
            if prefix != intact[: len(prefix)]:
                raise ChaosError(
                    f"journal-chaos {app.name} [{session.backend}] "
                    f"kind={kind}: surviving records are not a clean "
                    f"prefix of the acknowledged stream"
                )
            # Re-apply the lost suffix: the damage may only have cost us
            # the tail, never changed a value the prefix carried.
            for _seq, batch in intact[len(prefix) :]:
                for handle, value in batch:
                    restored.edit(handle, value)
            settle(restored)
            got = app.readback(restored.output)
            if not values_close(got, oracle):
                raise ChaosError(
                    f"journal-chaos {app.name} [{session.backend}] "
                    f"kind={kind}: prefix + suffix replay diverged from "
                    f"the oracle\n  got:    {got!r}\n  oracle: {oracle!r}"
                )
            if restored.engine.meter.snapshot() != meter_oracle:
                raise ChaosError(
                    f"journal-chaos {app.name} [{session.backend}] "
                    f"kind={kind}: replay reached the oracle value but "
                    f"not meter-exactly"
                )
        return PersistChaosResult(
            name=app.name,
            backend=session.backend,
            mode=mode,
            n=n,
            scenarios=scenarios,
            detected=detected,
            survived=survived,
        )
    finally:
        if dir is None:
            shutil.rmtree(tmp, ignore_errors=True)
