"""Deterministic fault injection for the self-adjusting engine.

Change propagation re-executes user code (read bodies), and the engine's
failure model (DESIGN.md Section 7) promises that an exception thrown at
*any* point of a re-execution leaves the trace consistent and the session
recoverable.  A promise like that is only worth what its test harness
proves, so this module provides:

* :class:`FaultInjector` -- a :class:`~repro.obs.events.TraceHook` that
  raises a planted exception at the Nth occurrence of a chosen trace
  *site* (read start, mod allocation, write, memo hit, ...), restricted
  to an execution window (during propagation, during initial runs, or
  anywhere).  Hook callbacks run synchronously inside the engine, so the
  raise surfaces exactly where a failing user function would.
* :class:`SiteCounter` -- the passive twin: counts site events in the
  same window, so a probe run can enumerate every injectable position.
* :func:`chaos_app` -- the chaos driver: for one app and backend, inject
  a fault at selected positions of each site during the first
  propagation, recover through ``Session.propagate(on_error=...)``
  (``rollback`` and ``rebuild``), propagate the remaining edits, and
  check the final output against a from-scratch oracle and the app's
  reference function, with :mod:`repro.obs.invariants` riding along.

Faults are deterministic: the same (app, n, seed, site, at) quintuple
always fires at the same trace event, so every chaos failure replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.events import FanoutHook, TraceHook
from repro.obs.invariants import InvariantChecker, check_trace

__all__ = [
    "SITES",
    "ChaosError",
    "ChaosResult",
    "FaultInjector",
    "PlantedFault",
    "SiteCounter",
    "chaos_app",
]


class PlantedFault(RuntimeError):
    """The default exception planted by :class:`FaultInjector`."""


#: Injectable trace sites: site name -> the hook callback that marks it.
SITES: Dict[str, str] = {
    "read": "on_read_start",
    "mod": "on_mod_create",
    "write": "on_write",
    "memo-hit": "on_memo_hit",
    "memo-miss": "on_memo_miss",
    "change": "on_change",
    "reexec": "on_reexec",
}

_WINDOWS = ("propagate", "run", "any")


class _SiteHook(TraceHook):
    """Map engine callbacks to named site events, filtered by a window.

    ``during="propagate"`` observes only events emitted while the engine
    is propagating (the window a re-executed reader runs in); ``"run"``
    only events outside propagation (initial runs and edits); ``"any"``
    everything.  Subclasses override :meth:`_site`.
    """

    def __init__(self, during: str = "propagate") -> None:
        if during not in _WINDOWS:
            raise ValueError(f"during must be one of {_WINDOWS}, got {during!r}")
        self.during = during

    def _in_window(self) -> bool:
        if self.during == "any":
            return True
        propagating = self.engine is not None and self.engine.propagating
        return propagating if self.during == "propagate" else not propagating

    def _site(self, name: str) -> None:
        raise NotImplementedError

    # -- engine callbacks, one per site --------------------------------------
    def on_read_start(self, edge: Any) -> None:
        self._site("read")

    def on_mod_create(self, mod: Any, is_input: bool, recycled: bool) -> None:
        self._site("mod")

    def on_write(self, dest: Any, value: Any, changed: bool) -> None:
        self._site("write")

    def on_memo_hit(self, entry: Any) -> None:
        self._site("memo-hit")

    def on_memo_miss(self, key: Any) -> None:
        self._site("memo-miss")

    def on_change(self, mod: Any, value: Any, changed: bool) -> None:
        self._site("change")

    def on_reexec(self, edge: Any) -> None:
        self._site("reexec")


class SiteCounter(_SiteHook):
    """Count site events inside the window without interfering.

    A probe run with a ``SiteCounter`` enumerates the injectable positions
    for a later :class:`FaultInjector` with the same ``during`` window.
    """

    def __init__(self, during: str = "propagate") -> None:
        super().__init__(during)
        self.counts: Dict[str, int] = {name: 0 for name in SITES}

    def _site(self, name: str) -> None:
        if self._in_window():
            self.counts[name] += 1

    def total(self) -> int:
        return sum(self.counts.values())


class FaultInjector(_SiteHook):
    """Raise a planted exception at the Nth event of one trace site.

    ``site`` names the trace site (a :data:`SITES` key); ``at`` is the
    zero-based event index within the window at which to fire.  ``exc``
    is the exception to raise -- an instance, or a class instantiated
    with a descriptive message.  One-shot by default (disarms after
    firing, so recovery and later propagations run clean); with
    ``repeat=True`` the fault is *persistent* and fires at every event
    index >= ``at``, which is how you drive recovery itself into the
    ground (e.g. to test engine poisoning and ``rebuild``).

    ``fired`` counts raises; ``counts`` mirrors :class:`SiteCounter`.
    """

    def __init__(
        self,
        site: str,
        at: int = 0,
        exc: Union[BaseException, type] = PlantedFault,
        *,
        during: str = "propagate",
        repeat: bool = False,
    ) -> None:
        super().__init__(during)
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}; expected one of {sorted(SITES)}")
        self.site = site
        self.at = at
        self.exc = exc
        self.repeat = repeat
        self.armed = True
        self.fired = 0
        self.counts: Dict[str, int] = {name: 0 for name in SITES}

    def _site(self, name: str) -> None:
        if not self._in_window():
            return
        idx = self.counts[name]
        self.counts[name] = idx + 1
        if name != self.site or not self.armed:
            return
        if idx == self.at or (self.repeat and idx > self.at):
            self.fired += 1
            if not self.repeat:
                self.armed = False
            exc = self.exc
            if isinstance(exc, type):
                exc = exc(f"planted fault at {name}[{idx}]")
            raise exc


# ----------------------------------------------------------------------
# The chaos driver


class ChaosError(AssertionError):
    """A chaos scenario produced a wrong output or a corrupt trace."""


@dataclass
class ChaosResult:
    """Outcome of one :func:`chaos_app` sweep."""

    name: str
    backend: str
    n: int
    scenarios: int
    fired: int
    #: sites that emitted no events during the probed propagation (nothing
    #: to inject there for this app/size; reported, not silently dropped).
    skipped_sites: List[str] = field(default_factory=list)
    invariant_checks: int = 0

    def __str__(self) -> str:
        text = (
            f"chaos {self.name} [{self.backend}] n={self.n}: "
            f"{self.scenarios} scenarios, {self.fired} faults fired and "
            f"recovered, {self.invariant_checks} invariant checks"
        )
        if self.skipped_sites:
            text += f" (no events at: {', '.join(self.skipped_sites)})"
        return text


def _positions(count: int, positions: Optional[Sequence[int]]) -> List[int]:
    if positions is not None:
        return [p for p in positions if 0 <= p < count]
    if count == 0:
        return []
    # First, middle, last: the boundary positions where cleanup bugs live.
    return sorted({0, count // 2, count - 1})


def chaos_app(
    app: Any,
    n: int,
    *,
    backend: Optional[str] = None,
    sites: Sequence[str] = ("read", "mod", "write", "memo-hit"),
    modes: Sequence[str] = ("rollback", "rebuild"),
    changes: int = 3,
    seed: int = 0,
    positions: Optional[Sequence[int]] = None,
    check_invariants: bool = True,
    propagation: str = "eager",
) -> ChaosResult:
    """Fault-inject one app on one backend and prove it recovers.

    A probe run applies all ``changes`` random edits, counting the trace
    events each site emits during propagation.  Then, for every ``site``,
    probed position, and recovery ``mode``, a fresh session replays the
    exact same run with a one-shot :class:`FaultInjector` planted at that
    position (the event stream is deterministic, so the fault fires
    during whichever propagation reaches it); every propagation goes
    through ``Session.propagate(on_error=mode)``.  The final output must
    match both a from-scratch rerun of the same compiled program (the
    oracle) and the app's reference function, with the trace passing the
    structural invariant check.

    ``propagation="lazy"`` runs the whole sweep on lazy sessions: each
    change is followed by a full-output demand
    (``Session.demand(on_error=mode)``) instead of an eager propagation,
    so faults fire *inside demand walks* -- the injection window keys on
    ``engine.propagating``, which a demand pass also sets.

    Returns a :class:`ChaosResult`; raises :class:`ChaosError` on any
    divergence.  Deterministic in ``seed``.
    """
    from repro.api import Session, values_close  # deferred: api imports obs lazily

    from repro.apps import REGISTRY

    if isinstance(app, str):
        app = REGISTRY[app]
    for site in sites:
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}")
    if propagation not in ("eager", "lazy"):
        raise ValueError(
            f'propagation must be "eager" or "lazy", got {propagation!r}'
        )
    lazy = propagation == "lazy"

    # Probe: enumerate the injectable positions over all propagations.
    rng = random.Random(seed)
    data = app.make_data(n, rng)
    counter = SiteCounter(during="propagate")
    probe = Session(app, backend=backend, hook=counter, mode=propagation)
    probe.run(data=data)
    for step in range(changes):
        app.apply_change(probe.input_handle, rng, step)
        if lazy:
            probe.demand()
        else:
            probe.propagate()
    counts = dict(counter.counts)
    resolved_backend = probe.backend

    scenarios = fired = invariant_checks = 0
    skipped = [site for site in sites if not _positions(counts[site], positions)]

    for site in sites:
        for at in _positions(counts[site], positions):
            for mode in modes:
                scenarios += 1
                # Replay the exact same run: same seed, data, change stream.
                rng = random.Random(seed)
                data = app.make_data(n, rng)
                checker = InvariantChecker() if check_invariants else None
                injector = FaultInjector(site, at=at)
                hooks: List[TraceHook] = [h for h in (checker, injector) if h]
                session = Session(
                    app,
                    backend=backend,
                    hook=FanoutHook(hooks),
                    mode=propagation,
                )
                session.run(data=data)

                for step in range(changes):
                    app.apply_change(session.input_handle, rng, step)
                    if lazy:
                        stats = session.demand(on_error=mode)
                    else:
                        stats = session.propagate(on_error=mode)
                    if stats.path not in ("propagate", "demand"):
                        fired += 1
                    if stats.path == "rollback":
                        # Rollback left the edit re-staged; the fault was
                        # one-shot, so applying it now succeeds.
                        if lazy:
                            session.demand()
                        else:
                            session.propagate()

                scenario = (
                    f"{app.name} [{resolved_backend}] site={site} at={at} "
                    f"mode={mode} seed={seed}"
                )
                current = app.handle_data(session.input_handle)
                got = app.readback(session.output)
                scratch = Session(session.program, backend=session.backend)
                scratch.app = app
                oracle = app.readback(scratch.run(data=current))
                if not values_close(got, oracle):
                    raise ChaosError(
                        f"chaos {scenario}: output diverges from a "
                        f"from-scratch rerun\n  recovered:    {got!r}\n"
                        f"  from scratch: {oracle!r}"
                    )
                expected = app.reference(current)
                if not values_close(got, expected):
                    raise ChaosError(
                        f"chaos {scenario}: output diverges from reference\n"
                        f"  recovered: {got!r}\n  expected:  {expected!r}"
                    )
                if lazy:
                    # A full-output demand may leave work that feeds
                    # nothing in the output queued; flush it and require
                    # the flush to land on a fully clean trace.  The
                    # fault under test targets the demand walks, so
                    # disarm before flushing (a one-shot fault whose
                    # position was deferred past every demand would
                    # otherwise fire here instead).
                    check_trace(session.engine, expect_empty_queue=False)
                    injector.armed = False
                    session.propagate()
                check_trace(session.engine, expect_empty_queue=True)
                if checker is not None:
                    invariant_checks += checker.total_checks()

    return ChaosResult(
        name=app.name,
        backend=resolved_backend,
        n=n,
        scenarios=scenarios,
        fired=fired,
        skipped_sites=skipped,
        invariant_checks=invariant_checks,
    )
