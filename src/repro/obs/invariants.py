"""Trace invariant checking.

"A Consistent Semantics of Self-Adjusting Computation" (Acar, Blume,
Donham 2011) proves change propagation consistent *given* that the runtime
maintains a well-formed trace.  The properties the proof leans on are
checkable in one walk of the timestamp order:

1. **Timestamp monotonicity** -- labels strictly increase along the list
   and every interval satisfies ``start < end``.
2. **Interval nesting** -- read-edge and memo-entry intervals form a
   properly nested forest (no partial overlap); equivalently the trace is
   a well-parenthesized string of starts and ends.
3. **Anchoring** -- every record found at a live stamp is itself live,
   anchored at that stamp, with a live end stamp; read edges are
   registered with their modifiable, and no dead record is reachable.
4. **Dirty-queue discipline** -- the queue is a valid min-heap on its
   ``(key, tiebreak)`` snapshot entries, holds only dirty live edges (plus
   harmless dead entries), every dirty live edge in the trace is queued,
   and -- when no order relabel is pending -- every live entry's key
   snapshot agrees with its edge's current start key.
5. **Suspicion covers dirtiness** (lazy engines only) -- every modifiable
   in the upward reader-closure of a dirty live edge's recorded
   destination is suspect, so a demand can never fast-path a modifiable
   that still has stale feeders anywhere below it.

:func:`check_trace` performs these structural checks on a quiescent
engine.  :class:`InvariantChecker` is a :class:`~repro.obs.events.TraceHook`
that additionally validates the *dynamic* discipline as it happens: memo
splices must land inside the current reuse zone (ahead of the cursor, at
or before the zone limit) and dirty edges must pop in timestamp order;
after every propagation it re-runs the full structural check.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.events import TraceHook


class InvariantViolation(AssertionError):
    """The engine's trace violates a required invariant."""


class TraceCheckReport:
    """Summary of one structural trace check."""

    def __init__(self, stamps: int, reads: int, memos: int, depth: int, queued: int) -> None:
        self.stamps = stamps
        self.reads = reads
        self.memos = memos
        self.depth = depth
        self.queued = queued

    def __str__(self) -> str:
        return (
            f"trace OK: {self.stamps} stamps, {self.reads} reads, "
            f"{self.memos} memo entries, nesting depth {self.depth}, "
            f"{self.queued} queued"
        )


def check_trace(
    engine: Any, *, expect_quiescent: bool = True, expect_empty_queue: bool = False
) -> TraceCheckReport:
    """Validate the structural trace invariants of ``engine``.

    Raises :class:`InvariantViolation` on the first violation; returns a
    :class:`TraceCheckReport` otherwise.  ``expect_quiescent=False`` allows
    unfinished intervals (``end is None``), for checks taken mid-run.
    """
    # 1. The order itself: strictly increasing labels, intact links.
    try:
        engine.order.check()
    except AssertionError as exc:
        raise InvariantViolation(f"timestamp order corrupt: {exc}") from exc

    reads = memos = 0
    depth = max_depth = 0
    stack: list = []  # open records, innermost last
    end_map: Dict[int, Any] = {}  # id(end stamp) -> record
    dirty_live: list = []

    node = engine.order.base.next
    stamps = 0
    while node is not None:
        stamps += 1
        record = end_map.pop(id(node), None)
        if record is not None:
            if not stack or stack[-1] is not record:
                raise InvariantViolation(
                    f"interval nesting violated: {record!r} ends at label "
                    f"{node.label} while {stack[-1]!r} is still open"
                    if stack
                    else f"interval nesting violated: stray end for {record!r}"
                )
            stack.pop()
            depth -= 1
        owner = node.owner
        if owner is not None:
            if owner.dead:
                raise InvariantViolation(
                    f"live stamp {node.label} anchors dead record {owner!r}"
                )
            if owner.start is not node:
                raise InvariantViolation(
                    f"record {owner!r} anchored at a stamp that is not its start"
                )
            end = owner.end
            if end is None:
                if expect_quiescent:
                    raise InvariantViolation(
                        f"unfinished interval for {owner!r} in a quiescent trace"
                    )
            else:
                if not end.live:
                    raise InvariantViolation(f"{owner!r} has a dead end stamp")
                if not owner.start.label < end.label:
                    raise InvariantViolation(
                        f"non-monotonic interval for {owner!r}: "
                        f"[{owner.start.label}, {end.label}]"
                    )
                end_map[id(end)] = owner
                stack.append(owner)
                depth += 1
                max_depth = max(max_depth, depth)
            if type(owner).__name__ == "ReadEdge":
                reads += 1
                if owner not in owner.mod.readers:
                    raise InvariantViolation(
                        f"{owner!r} is not registered with its modifiable"
                    )
                if owner.dirty:
                    dirty_live.append(owner)
            else:
                memos += 1
        node = node.next

    if stack:
        raise InvariantViolation(
            f"{len(stack)} interval(s) never closed; innermost: {stack[-1]!r}"
        )

    # 4. Dirty-queue discipline.
    queue = engine.queue
    if expect_empty_queue and queue:
        raise InvariantViolation(
            f"queue not empty after propagation: {len(queue)} entries"
        )
    queued_ids = set()
    # The heap stores (key, tiebreak, edge) snapshots; when the engine has
    # caught up with the order's epoch, live snapshots must also agree with
    # the stamps they were taken from.
    caught_up = engine._queue_epoch == engine.order.epoch
    for i, entry in enumerate(queue):
        key, tiebreak, edge = entry
        for child in (2 * i + 1, 2 * i + 2):
            if child < len(queue) and queue[child][:2] < (key, tiebreak):
                raise InvariantViolation("dirty queue is not a valid min-heap")
        if edge.dead:
            continue  # stale entries are popped and skipped; harmless
        if not edge.dirty:
            raise InvariantViolation(f"queued live edge {edge!r} is not dirty")
        if caught_up and key != edge.start.key:
            raise InvariantViolation(
                f"queue key snapshot {key} is stale for {edge!r} with no "
                f"pending relabel epoch"
            )
        queued_ids.add(id(edge))
    if not engine.propagating:
        for edge in dirty_live:
            if id(edge) not in queued_ids:
                raise InvariantViolation(f"dirty live edge {edge!r} is not queued")

    # 5. Lazy engines: suspicion must cover dirtiness -- not just the
    # edge's own destination, but everything upward-reachable from it
    # through live readers -- or a demand could serve a stale value
    # without re-executing the dirty feeder below it.
    if getattr(engine, "lazy", False):
        visited = set()
        stack = [e.dest for e in dirty_live if e.dest is not None]
        while stack:
            dest = stack.pop()
            if id(dest) in visited:
                continue
            visited.add(id(dest))
            if not dest.suspect:
                raise InvariantViolation(
                    f"{dest!r} is fed (transitively) by a dirty live edge "
                    f"but is not marked suspect"
                )
            for r in dest.readers:
                if not r.dead and r.dest is not None and id(r.dest) not in visited:
                    stack.append(r.dest)

    return TraceCheckReport(stamps, reads, memos, max_depth, len(queue))


class InvariantChecker(TraceHook):
    """A hook that validates propagation discipline as it happens.

    * every memo splice must lie inside the current reuse zone: strictly
      after the cursor and ending at or before the zone limit;
    * dirty edges must pop from the queue in timestamp order within one
      propagation;
    * read intervals must open and close with stack discipline;
    * after every propagation (unless ``check_every_propagation=False``),
      the full structural :func:`check_trace` runs with an
      empty-queue requirement.

    ``checks`` counts validations performed, for reporting.
    """

    def __init__(self, check_every_propagation: bool = True) -> None:
        self.check_every_propagation = check_every_propagation
        self.checks: Dict[str, int] = {
            "splice_containment": 0,
            "queue_order": 0,
            "read_nesting": 0,
            "full_trace": 0,
            "abort_trace": 0,
            "demand_trace": 0,
        }
        self.last_report: Optional[TraceCheckReport] = None
        self._last_popped: Any = None
        self._open_reads: list = []
        self._in_demand = False

    def total_checks(self) -> int:
        return sum(self.checks.values())

    # -- dynamic discipline -------------------------------------------------

    def on_memo_hit(self, entry: Any) -> None:
        engine = self.engine
        limit = engine.reuse_limit
        if limit is None:
            raise InvariantViolation(
                f"memo hit on {entry!r} outside any reuse zone"
            )
        if not engine.now.label < entry.start.label:
            raise InvariantViolation(
                f"memo splice of {entry!r} is behind the cursor "
                f"(now={engine.now.label})"
            )
        if not entry.end.label <= limit.label:
            raise InvariantViolation(
                f"memo splice of {entry!r} escapes the reuse zone "
                f"(limit={limit.label})"
            )
        self.checks["splice_containment"] += 1

    def on_reexec(self, edge: Any) -> None:
        # A demand pass legitimately revisits earlier timestamps: entries
        # set aside as irrelevant are re-tested after every re-execution,
        # and one that became relevant pops behind the cursor.  Strict
        # pop-order monotonicity therefore only holds for eager passes.
        if not self._in_demand:
            last = self._last_popped
            if last is not None and edge.start.label < last.label:
                raise InvariantViolation(
                    f"dirty queue popped out of timestamp order: "
                    f"{edge.start.label} after {last.label}"
                )
            self._last_popped = edge.start
            self.checks["queue_order"] += 1
        # Each re-execution resets the reader's local nesting context.
        self._open_reads.clear()

    def on_read_start(self, edge: Any) -> None:
        self._open_reads.append(edge)

    def on_read_end(self, edge: Any) -> None:
        if self._open_reads:
            if self._open_reads[-1] is not edge:
                raise InvariantViolation(
                    f"read intervals closed out of order: expected "
                    f"{self._open_reads[-1]!r}, got {edge!r}"
                )
            self._open_reads.pop()
            self.checks["read_nesting"] += 1

    def on_propagate_begin(self, queued: int) -> None:
        self._last_popped = None
        self._open_reads.clear()
        self._in_demand = False

    def on_demand_begin(self, mod: Any, queued: int) -> None:
        self._last_popped = None
        self._open_reads.clear()
        self._in_demand = True

    def on_demand_end(self, mod: Any, reexecuted: int) -> None:
        """After a demand walk the trace must be structurally whole and
        quiescent, but -- unlike after a full propagation -- the queue may
        still hold dirty edges outside the demanded cone."""
        self._in_demand = False
        self._last_popped = None
        if self.check_every_propagation:
            self.last_report = check_trace(
                self.engine, expect_quiescent=True, expect_empty_queue=False
            )
            self.checks["demand_trace"] += 1

    def on_propagate_end(self, reexecuted: int) -> None:
        self._last_popped = None
        if self.check_every_propagation:
            self.last_report = check_trace(
                self.engine, expect_quiescent=True, expect_empty_queue=True
            )
            self.checks["full_trace"] += 1

    def on_reexec_abort(self, edge: Any, exc: BaseException, consistent: bool) -> None:
        """After a transactional abort the trace must be structurally whole
        again -- quiescent intervals, but with the failing edge (and any
        remaining work) still queued."""
        self._last_popped = None
        self._open_reads.clear()
        if consistent and self.check_every_propagation:
            self.last_report = check_trace(
                self.engine, expect_quiescent=True, expect_empty_queue=False
            )
            self.checks["abort_trace"] += 1
