"""Engine observability: structured trace events, DDG export, invariants.

The change-propagation engine (:mod:`repro.sac.engine`) is correct only if
the trace it maintains satisfies the invariants that the consistency proofs
of self-adjusting computation rely on (Acar et al., "A Consistent Semantics
of Self-Adjusting Computation", 2011): timestamps strictly increase, read
and memo intervals nest properly, memo splices land inside the current
reuse zone, and dirty reads are propagated in timestamp order.  This
package makes all of that *observable* and *checkable*:

* :mod:`repro.obs.events` -- a structured event stream (mod-create,
  read-start/end, write, impwrite, memo-hit/miss, splice, discard,
  propagate-begin/end) emitted by the engine behind a no-op-by-default
  hook, so the hot path pays only one attribute check when disabled;
* :mod:`repro.obs.ddg` -- dynamic-dependence-graph snapshots of the live
  trace, as JSON and Graphviz DOT;
* :mod:`repro.obs.invariants` -- a trace invariant checker, usable as a
  one-shot structural check (:func:`check_trace`) or installed as a hook
  (:class:`InvariantChecker`) that validates every splice and every
  propagation as it happens;
* :mod:`repro.obs.faults` -- deterministic fault injection: plant an
  exception at the Nth trace site (:class:`FaultInjector`) and prove the
  engine's recovery paths with the :func:`chaos_app` driver.

Typical debugging session::

    from repro.sac import Engine
    from repro.obs import EventLog, InvariantChecker, FanoutHook, ddg_dot

    engine = Engine()
    log = EventLog()
    engine.attach_hook(FanoutHook([log, InvariantChecker()]))
    ...   # run the computation, change inputs, propagate
    print(log.counts())
    open("trace.dot", "w").write(ddg_dot(engine))

or, from the command line, ``python -m repro trace <app>``.
"""

from repro.obs.ddg import ddg_dot, ddg_json, ddg_snapshot
from repro.obs.events import EventLog, FanoutHook, TraceEvent, TraceHook
from repro.obs.faults import (
    ChaosError,
    ChaosResult,
    FaultInjector,
    PersistChaosResult,
    PlantedFault,
    SiteCounter,
    chaos_app,
    chaos_journal,
    chaos_persist,
    corrupt_file,
)
from repro.obs.invariants import (
    InvariantChecker,
    InvariantViolation,
    TraceCheckReport,
    check_trace,
)
from repro.obs.profile import PhaseProfile, ProfileReport, profile_app

__all__ = [
    "ChaosError",
    "ChaosResult",
    "EventLog",
    "FanoutHook",
    "FaultInjector",
    "InvariantChecker",
    "InvariantViolation",
    "PersistChaosResult",
    "PhaseProfile",
    "PlantedFault",
    "ProfileReport",
    "SiteCounter",
    "TraceCheckReport",
    "TraceEvent",
    "TraceHook",
    "chaos_app",
    "chaos_journal",
    "chaos_persist",
    "check_trace",
    "corrupt_file",
    "profile_app",
    "ddg_dot",
    "ddg_json",
    "ddg_snapshot",
]
