"""Structured trace events and the engine hook protocol.

The engine emits *callbacks*, not event objects: every emission site in
:class:`repro.sac.engine.Engine` is guarded by ``if self.hook is not None``,
so with no hook attached the only hot-path cost is that attribute check.
Hooks receive the live runtime objects (modifiables, read edges, memo
entries), which is what the invariant checker needs; the
:class:`EventLog` hook is the one that flattens them into plain
:class:`TraceEvent` records suitable for dumping.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Any, Dict, Iterable, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One structured engine event.

    ``seq`` is the emission index within the log, ``kind`` one of the event
    names below, and ``info`` a plain JSON-safe dict.  Kinds::

        mod-create  read-start  read-end  write  impwrite  change
        memo-hit    memo-miss   splice    discard
        reexec      propagate-begin       propagate-end
        dirty-mark  demand-begin          demand-end
        batch-begin batch-end   trace-compact
        reexec-abort poison     rollback
    """

    seq: int
    kind: str
    info: Dict[str, Any]

    def to_json(self) -> str:
        return json.dumps({"seq": self.seq, "kind": self.kind, **self.info})


class TraceHook:
    """No-op base hook: subclass and override the events you care about.

    The engine calls :meth:`on_attach` when the hook is installed via
    :meth:`repro.sac.engine.Engine.attach_hook`, so hooks that need engine
    state (the invariant checker inspects ``engine.reuse_limit``) can keep a
    reference.
    """

    engine: Any = None

    def on_attach(self, engine: Any) -> None:
        self.engine = engine

    # -- trace construction ------------------------------------------------
    def on_mod_create(self, mod: Any, is_input: bool, recycled: bool) -> None:
        """A modifiable was allocated (``recycled``: keyed_mod reuse)."""

    def on_read_start(self, edge: Any) -> None:
        """A read edge was created; its reader is about to run."""

    def on_read_end(self, edge: Any) -> None:
        """The reader returned; ``edge.end`` is now set."""

    def on_write(self, dest: Any, value: Any, changed: bool) -> None:
        """A ``write`` ran (``changed=False``: suppressed no-op write)."""

    def on_impwrite(self, dest: Any, value: Any, changed: bool, dirtied: int) -> None:
        """An imperative write ran, dirtying ``dirtied`` later reads."""

    def on_change(self, mod: Any, value: Any, changed: bool) -> None:
        """An input modifiable was changed between propagations."""

    # -- memoization ---------------------------------------------------------
    def on_memo_hit(self, entry: Any) -> None:
        """A memo hit was found (emitted *before* the splice)."""

    def on_memo_miss(self, key: Any) -> None:
        """No reusable memo entry; the thunk will run."""

    def on_splice(self, entry: Any) -> None:
        """The cursor jumped past ``entry``'s interval (after the hit)."""

    def on_discard(self, owner: Any) -> None:
        """A trace record (read edge or memo entry) was retracted."""

    # -- propagation ---------------------------------------------------------
    def on_reexec(self, edge: Any) -> None:
        """A dirty edge was popped from the queue for re-execution."""

    def on_propagate_begin(self, queued: int) -> None:
        """Change propagation started with ``queued`` queue entries."""

    def on_propagate_end(self, reexecuted: int) -> None:
        """Change propagation finished (``reexecuted`` edges re-run).

        Not emitted when propagation is cut short by a budget or deadline
        (:class:`repro.sac.exceptions.PropagationBudgetExceeded`); the next
        resuming propagation emits its own begin/end pair.
        """

    # -- lazy (demand-driven) propagation -------------------------------------
    def on_dirty_mark(self, mod: Any) -> None:
        """Lazy mode: an edit marked ``mod`` suspect (its value may now be
        stale; a demand reaching it will re-execute its dirty feeders)."""

    def on_demand_begin(self, mod: Any, queued: int) -> None:
        """A demand walk for ``mod`` started with ``queued`` queue entries.
        Also emitted (immediately followed by the end event) when the
        demand is served clean, with zero work."""

    def on_demand_end(self, mod: Any, reexecuted: int) -> None:
        """The demand walk finished (``reexecuted`` edges re-run within
        the demanded cone).  Unlike ``propagate-end``, the dirty queue may
        legitimately be non-empty here: edits outside the demanded cone
        stay staged.  Not emitted when the walk is cut short by a budget
        or deadline."""

    # -- failure and recovery -------------------------------------------------
    def on_reexec_abort(self, edge: Any, exc: BaseException, consistent: bool) -> None:
        """A re-executed reader raised; the engine spliced the edge's
        interval back out and re-queued it (``consistent=False``: the
        cleanup itself failed and the engine poisoned itself)."""

    def on_poison(self, reason: str) -> None:
        """The engine poisoned itself; all further operations will raise
        :class:`repro.sac.exceptions.EnginePoisonedError`."""

    def on_rollback(self, undone: int, recovery_reexecuted: int, restaged: int) -> None:
        """``Engine.rollback`` undid ``undone`` journalled edits, propagated
        back to the last-good state (``recovery_reexecuted`` reads), and
        re-staged ``restaged`` of them as pending edits."""

    # -- batching and compaction ---------------------------------------------
    def on_batch_begin(self) -> None:
        """An outermost ``Engine.batch()`` scope opened."""

    def on_batch_end(self, changed: int, reexecuted: int) -> None:
        """The outermost batch scope closed: ``changed`` effective edits
        were coalesced into one pass that re-executed ``reexecuted`` reads."""

    def on_trace_compact(self, memo_removed: int, alloc_removed: int) -> None:
        """A compaction swept dead entries out of the memo/alloc tables."""


class FanoutHook(TraceHook):
    """Forward every event to several hooks (e.g. a log plus a checker)."""

    def __init__(self, hooks: Iterable[TraceHook]) -> None:
        self.hooks: List[TraceHook] = list(hooks)

    def on_attach(self, engine: Any) -> None:
        self.engine = engine
        for hook in self.hooks:
            hook.on_attach(engine)

    def on_mod_create(self, mod, is_input, recycled):
        for h in self.hooks:
            h.on_mod_create(mod, is_input, recycled)

    def on_read_start(self, edge):
        for h in self.hooks:
            h.on_read_start(edge)

    def on_read_end(self, edge):
        for h in self.hooks:
            h.on_read_end(edge)

    def on_write(self, dest, value, changed):
        for h in self.hooks:
            h.on_write(dest, value, changed)

    def on_impwrite(self, dest, value, changed, dirtied):
        for h in self.hooks:
            h.on_impwrite(dest, value, changed, dirtied)

    def on_change(self, mod, value, changed):
        for h in self.hooks:
            h.on_change(mod, value, changed)

    def on_memo_hit(self, entry):
        for h in self.hooks:
            h.on_memo_hit(entry)

    def on_memo_miss(self, key):
        for h in self.hooks:
            h.on_memo_miss(key)

    def on_splice(self, entry):
        for h in self.hooks:
            h.on_splice(entry)

    def on_discard(self, owner):
        for h in self.hooks:
            h.on_discard(owner)

    def on_reexec(self, edge):
        for h in self.hooks:
            h.on_reexec(edge)

    def on_propagate_begin(self, queued):
        for h in self.hooks:
            h.on_propagate_begin(queued)

    def on_propagate_end(self, reexecuted):
        for h in self.hooks:
            h.on_propagate_end(reexecuted)

    def on_dirty_mark(self, mod):
        for h in self.hooks:
            h.on_dirty_mark(mod)

    def on_demand_begin(self, mod, queued):
        for h in self.hooks:
            h.on_demand_begin(mod, queued)

    def on_demand_end(self, mod, reexecuted):
        for h in self.hooks:
            h.on_demand_end(mod, reexecuted)

    def on_reexec_abort(self, edge, exc, consistent):
        for h in self.hooks:
            h.on_reexec_abort(edge, exc, consistent)

    def on_poison(self, reason):
        for h in self.hooks:
            h.on_poison(reason)

    def on_rollback(self, undone, recovery_reexecuted, restaged):
        for h in self.hooks:
            h.on_rollback(undone, recovery_reexecuted, restaged)

    def on_batch_begin(self):
        for h in self.hooks:
            h.on_batch_begin()

    def on_batch_end(self, changed, reexecuted):
        for h in self.hooks:
            h.on_batch_end(changed, reexecuted)

    def on_trace_compact(self, memo_removed, alloc_removed):
        for h in self.hooks:
            h.on_trace_compact(memo_removed, alloc_removed)


def _short(value: Any, limit: int = 48) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


class EventLog(TraceHook):
    """Record engine events as structured :class:`TraceEvent` records.

    Keeps at most ``maxlen`` events (oldest dropped first); ``maxlen=None``
    is unbounded.  Modifiables are named ``m0, m1, ...`` in creation/first-
    seen order and read edges ``r0, r1, ...``; the log holds references to
    the named objects so names stay unique for the log's lifetime.
    """

    def __init__(self, maxlen: Optional[int] = 100_000, values: bool = False) -> None:
        self.events: deque = deque(maxlen=maxlen)
        self.values = values
        self._seq = 0
        self._mods: Dict[int, str] = {}
        self._mod_refs: list = []  # keep named objects alive (stable ids)
        self._edges: Dict[int, str] = {}
        self._edge_refs: list = []

    # -- naming ---------------------------------------------------------------

    def _mod_name(self, mod: Any) -> str:
        name = self._mods.get(id(mod))
        if name is None:
            name = f"m{len(self._mods)}"
            self._mods[id(mod)] = name
            self._mod_refs.append(mod)
        return name

    def _edge_name(self, edge: Any) -> str:
        name = self._edges.get(id(edge))
        if name is None:
            name = f"r{len(self._edges)}"
            self._edges[id(edge)] = name
            self._edge_refs.append(edge)
        return name

    def _emit(self, kind: str, **info: Any) -> None:
        self.events.append(TraceEvent(self._seq, kind, info))
        self._seq += 1

    # -- hook methods -----------------------------------------------------------

    def on_mod_create(self, mod, is_input, recycled):
        self._emit(
            "mod-create",
            mod=self._mod_name(mod),
            input=is_input,
            recycled=recycled,
        )

    def on_read_start(self, edge):
        self._emit(
            "read-start",
            edge=self._edge_name(edge),
            mod=self._mod_name(edge.mod),
            start=edge.start.label,
        )

    def on_read_end(self, edge):
        self._emit(
            "read-end",
            edge=self._edge_name(edge),
            start=edge.start.label,
            end=edge.end.label,
        )

    def on_write(self, dest, value, changed):
        info = {"mod": self._mod_name(dest), "changed": changed}
        if self.values:
            info["value"] = _short(value)
        self._emit("write", **info)

    def on_impwrite(self, dest, value, changed, dirtied):
        info = {"mod": self._mod_name(dest), "changed": changed, "dirtied": dirtied}
        if self.values:
            info["value"] = _short(value)
        self._emit("impwrite", **info)

    def on_change(self, mod, value, changed):
        info = {"mod": self._mod_name(mod), "changed": changed}
        if self.values:
            info["value"] = _short(value)
        self._emit("change", **info)

    def on_memo_hit(self, entry):
        self._emit(
            "memo-hit",
            key=_short(entry.key),
            start=entry.start.label,
            end=entry.end.label,
        )

    def on_memo_miss(self, key):
        self._emit("memo-miss", key=_short(key))

    def on_splice(self, entry):
        self._emit("splice", start=entry.start.label, end=entry.end.label)

    def on_discard(self, owner):
        kind = type(owner).__name__
        self._emit(
            "discard",
            record="read" if kind == "ReadEdge" else "memo",
            start=owner.start.label,
        )

    def on_reexec(self, edge):
        self._emit("reexec", edge=self._edge_name(edge), start=edge.start.label)

    def on_propagate_begin(self, queued):
        self._emit("propagate-begin", queued=queued)

    def on_propagate_end(self, reexecuted):
        self._emit("propagate-end", reexecuted=reexecuted)

    def on_dirty_mark(self, mod):
        self._emit("dirty-mark", mod=self._mod_name(mod))

    def on_demand_begin(self, mod, queued):
        self._emit("demand-begin", mod=self._mod_name(mod), queued=queued)

    def on_demand_end(self, mod, reexecuted):
        self._emit("demand-end", mod=self._mod_name(mod), reexecuted=reexecuted)

    def on_reexec_abort(self, edge, exc, consistent):
        self._emit(
            "reexec-abort",
            edge=self._edge_name(edge),
            error=_short(exc),
            consistent=consistent,
        )

    def on_poison(self, reason):
        self._emit("poison", reason=_short(reason, limit=120))

    def on_rollback(self, undone, recovery_reexecuted, restaged):
        self._emit(
            "rollback",
            undone=undone,
            recovery_reexecuted=recovery_reexecuted,
            restaged=restaged,
        )

    def on_batch_begin(self):
        self._emit("batch-begin")

    def on_batch_end(self, changed, reexecuted):
        self._emit("batch-end", changed=changed, reexecuted=reexecuted)

    def on_trace_compact(self, memo_removed, alloc_removed):
        self._emit("trace-compact", memo=memo_removed, alloc=alloc_removed)

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts(self) -> Dict[str, int]:
        """Number of recorded events per kind."""
        return dict(Counter(e.kind for e in self.events))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_jsonl(self) -> str:
        """One JSON object per line, in emission order."""
        return "\n".join(e.to_json() for e in self.events)

    def clear(self) -> None:
        self.events.clear()
