"""Dynamic-dependence-graph snapshots of the live trace.

The DDG of a self-adjusting run (paper Section 3.5; miniAdapton makes the
same structure inspectable) has three kinds of nodes:

* **modifiables** -- the data vertices;
* **read edges** -- one per traced ``read``, spanning a timestamp interval
  ``[start, end]`` and depending on the modifiable it observed;
* **memo entries** -- reusable sub-trace intervals.

Because every record is anchored at its start stamp, one walk of the
order-maintenance list recovers the whole graph *and* the containment
forest (which read runs inside which) via simple stack discipline.  The
exporters here produce a JSON document (machine-diffable snapshots, e.g.
before/after a propagation that went wrong) and a Graphviz DOT drawing
(solid arrows: read *observes* modifiable; dashed arrows: containment).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


def _short(value: Any, limit: int = 40) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def ddg_snapshot(engine: Any, values: bool = True) -> Dict[str, Any]:
    """Capture the live trace of ``engine`` as a plain JSON-safe dict.

    The snapshot lists modifiables (``m#``), read edges (``r#``), and memo
    entries (``e#``); each read/memo carries its stamp interval and its
    ``parent`` in the containment forest (``None`` for top-level records).
    Only records reachable from live stamps appear -- exactly the current
    trace, not history.
    """
    mods: Dict[int, Dict[str, Any]] = {}
    mod_order: List[Any] = []

    def mod_id(mod: Any) -> str:
        entry = mods.get(id(mod))
        if entry is None:
            entry = {"id": f"m{len(mods)}", "n_readers": 0}
            if values:
                entry["value"] = _short(mod.value)
            mods[id(mod)] = entry
            mod_order.append(mod)
        return entry["id"]

    reads: List[Dict[str, Any]] = []
    memos: List[Dict[str, Any]] = []
    stack: List[Dict[str, Any]] = []  # open interval records
    end_map: Dict[int, Dict[str, Any]] = {}  # id(end stamp) -> record

    node = engine.order.base.next
    while node is not None:
        record = end_map.pop(id(node), None)
        if record is not None and stack and stack[-1] is record:
            stack.pop()
        owner = node.owner
        if owner is not None and not owner.dead:
            parent = stack[-1]["id"] if stack else None
            if type(owner).__name__ == "ReadEdge":
                rec = {
                    "id": f"r{len(reads)}",
                    "mod": mod_id(owner.mod),
                    "start": owner.start.label,
                    "end": owner.end.label if owner.end is not None else None,
                    "dirty": owner.dirty,
                    "parent": parent,
                }
                mods[id(owner.mod)]["n_readers"] += 1
                reads.append(rec)
            else:
                rec = {
                    "id": f"e{len(memos)}",
                    "key": _short(owner.key),
                    "start": owner.start.label,
                    "end": owner.end.label if owner.end is not None else None,
                    "parent": parent,
                }
                memos.append(rec)
            if owner.end is not None:
                end_map[id(owner.end)] = rec
                stack.append(rec)
        node = node.next

    return {
        "live_stamps": engine.order.n_live,
        "trace_size": engine.trace_size(),
        "meter": engine.meter.snapshot(),
        "mods": [mods[id(m)] for m in mod_order],
        "reads": reads,
        "memos": memos,
    }


def ddg_json(engine: Any, values: bool = True, indent: int = 2) -> str:
    """The :func:`ddg_snapshot` serialized as a JSON document."""
    return json.dumps(ddg_snapshot(engine, values=values), indent=indent)


def ddg_dot(engine: Any, values: bool = True, title: str = "ddg") -> str:
    """Render the live trace as a Graphviz DOT digraph.

    Modifiables are ellipses, read edges boxes (dirty ones red), memo
    entries diamonds.  Solid arrows point from a read to the modifiable it
    observed; dashed arrows draw the containment forest in trace order.
    """
    snap = ddg_snapshot(engine, values=values)
    lines = [
        f'digraph "{title}" {{',
        "  rankdir=LR;",
        '  node [fontname="Helvetica", fontsize=10];',
    ]
    for mod in snap["mods"]:
        label = mod["id"]
        if "value" in mod:
            value = mod["value"].replace("\\", "\\\\").replace('"', '\\"')
            label += f"\\n{value}"
        lines.append(f'  {mod["id"]} [shape=ellipse, label="{label}"];')
    for read in snap["reads"]:
        color = ', color=red, fontcolor=red' if read["dirty"] else ""
        label = f'{read["id"]} [{read["start"]},{read["end"]}]'
        lines.append(f'  {read["id"]} [shape=box, label="{label}"{color}];')
        lines.append(f'  {read["id"]} -> {read["mod"]};')
        if read["parent"]:
            lines.append(f'  {read["parent"]} -> {read["id"]} [style=dashed];')
    for memo in snap["memos"]:
        key = memo["key"].replace("\\", "\\\\").replace('"', '\\"')
        label = f'{memo["id"]} {key}'
        lines.append(f'  {memo["id"]} [shape=diamond, label="{label}"];')
        if memo["parent"]:
            lines.append(f'  {memo["parent"]} -> {memo["id"]} [style=dashed];')
    lines.append("}")
    return "\n".join(lines)
