"""Profiling harness: where does an app's engine time actually go?

``python -m repro profile <app>`` runs one application end to end --
compile, input marshalling, initial run, change propagation, readback --
and reports, per phase, the wall time and the engine meter counters that
phase consumed.  After the phases it dumps the engine's hot-path
statistics (:meth:`repro.sac.engine.Engine.hot_stats`): order-maintenance
structure and relabel counts, dirty-queue pushes/rekeys/peak, and the
record free-list reuse counts, plus the value intern table's hit/miss
profile.  With call-site profiling enabled (the default), the propagation
phase additionally runs under :mod:`cProfile` and the report lists the
top engine call sites by internal time -- the first place to look when
propagation regresses.

The harness is deliberately hook-free by default so the measured numbers
are the production configuration (trace-record pooling is disabled while
an observability hook is attached); pass ``events=True`` to attach a
:class:`repro.obs.events.EventLog` and get per-phase structured event
counts at the cost of that overhead.
"""

from __future__ import annotations

import cProfile
import pstats
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["PhaseProfile", "ProfileReport", "profile_app"]


@dataclass
class PhaseProfile:
    """One phase of a profiled run: wall time plus meter/event deltas."""

    name: str
    seconds: float
    samples: int = 1
    counters: Dict[str, int] = field(default_factory=dict)
    events: Optional[Dict[str, int]] = None


@dataclass
class ProfileReport:
    """Everything ``python -m repro profile`` reports, as data."""

    app: str
    backend: str
    n: int
    changes: int
    seed: int
    phases: List[PhaseProfile]
    hot_stats: Dict[str, dict]
    intern: Dict[str, int]
    call_sites: List[str] = field(default_factory=list)
    mode: str = "eager"

    #: Meter counters shown as phase columns, in order (a subset: the ones
    #: that distinguish phases; the full snapshot is in ``counters``).
    _COLUMNS = (
        ("mods_created", "mods"),
        ("reads_executed", "reads"),
        ("edges_reexecuted", "reexec"),
        ("writes", "writes"),
        ("changed_writes", "changed"),
        ("memo_hits", "hits"),
        ("memo_misses", "misses"),
        ("queue_drained", "drained"),
    )

    def format(self) -> str:
        """Render the report as aligned text."""
        lines = [
            f"profile: {self.app}  backend={self.backend}  "
            f"mode={self.mode}  n={self.n}  "
            f"changes={self.changes}  seed={self.seed}"
        ]
        header = f"{'phase':<18} {'time (s)':>10} " + " ".join(
            f"{label:>8}" for _, label in self._COLUMNS
        )
        lines += ["", header, "-" * len(header)]
        for phase in self.phases:
            cells = " ".join(
                f"{phase.counters.get(key, 0):>8}" for key, _ in self._COLUMNS
            )
            lines.append(
                f"{phase.name:<18} {phase.seconds:>10.5f} {cells}"
            )
        lines.append("")
        for section in ("order", "queue", "pools", "feeds"):
            stats = self.hot_stats.get(section, {})
            body = "  ".join(f"{k}={v}" for k, v in stats.items())
            lines.append(f"{section + ':':<7} {body}")
        lines.append(
            "intern: " + "  ".join(f"{k}={v}" for k, v in self.intern.items())
        )
        for phase in self.phases:
            if phase.events:
                body = ", ".join(
                    f"{k}={v}" for k, v in sorted(phase.events.items())
                )
                lines.append(f"events[{phase.name}]: {body}")
        if self.call_sites:
            lines += ["", "top call sites (propagation, by internal time):"]
            lines += [f"  {site}" for site in self.call_sites]
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


def _top_call_sites(profiler: cProfile.Profile, top: int) -> List[str]:
    """The ``top`` hottest rows of a propagation profile, pre-formatted."""
    stats = pstats.Stats(profiler)
    rows = sorted(
        stats.stats.items(), key=lambda kv: kv[1][2], reverse=True
    )  # kv[1] = (cc, nc, tottime, cumtime, callers)
    header = f"{'tottime':>9} {'cumtime':>9} {'ncalls':>9}  site"
    out = [header]
    for (filename, lineno, name), (_, ncalls, tot, cum, _) in rows[:top]:
        site = filename.replace("\\", "/")
        marker = "/repro/"
        if marker in site:
            site = site.split(marker, 1)[1]
        out.append(f"{tot:>9.4f} {cum:>9.4f} {ncalls:>9}  {site}:{lineno}({name})")
    return out


def profile_app(
    app: Any,
    *,
    n: int = 64,
    changes: int = 8,
    seed: int = 0,
    backend: Optional[str] = None,
    top: int = 10,
    callsites: bool = True,
    events: bool = False,
    mode: str = "eager",
) -> ProfileReport:
    """Profile one application; returns a :class:`ProfileReport`.

    ``app`` is an :class:`repro.apps.base.App` or a registry name.  The
    phases are compile, input marshalling, the initial run, ``changes``
    random single-change propagations (aggregated), and readback.

    With ``mode="lazy"`` each change is followed by a *demand* of the
    output's top-level modifiable(s) instead of a full propagate, so the
    ``feeds:`` line reports live laziness counters (demands served
    clean, entries deferred, summary hits) instead of ``impl=n/a``.
    """
    from repro.apps import REGISTRY
    from repro.backends import resolve_backend
    from repro.core.pipeline import compile_program
    from repro.sac.engine import Engine
    from repro.sac.intern import intern_stats

    if isinstance(app, str):
        if app not in REGISTRY:
            raise ValueError(
                f"unknown app {app!r}; see `python -m repro apps`"
            )
        app = REGISTRY[app]
    backend = resolve_backend(backend)
    rng = random.Random(seed)

    engine = Engine(mode=mode)
    log = None
    if events:
        from repro.obs.events import EventLog

        log = EventLog()
        engine.attach_hook(log)

    intern_before = intern_stats()
    phases: List[PhaseProfile] = []

    def run_phase(name: str, fn, samples: int = 1, profiler=None):
        before = engine.meter.snapshot()
        events_before = log.counts() if log is not None else None
        if profiler is not None:
            profiler.enable()
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        if profiler is not None:
            profiler.disable()
        after = engine.meter.snapshot()
        counters = {
            key: after[key] - before.get(key, 0)
            for key in after
            if after[key] != before.get(key, 0)
        }
        delta_events = None
        if log is not None:
            events_after = log.counts()
            delta_events = {
                key: events_after[key] - events_before.get(key, 0)
                for key in events_after
                if events_after[key] != events_before.get(key, 0)
            }
        phases.append(
            PhaseProfile(name, seconds, samples, counters, delta_events)
        )
        return result

    data = app.make_data(n, rng)
    program = run_phase("compile", lambda: compile_program(app.source))
    instance = program._self_adjusting_instance(engine, backend=backend)
    input_value, handle = run_phase(
        "input marshal", lambda: app.make_sa_input(engine, data)
    )
    output = run_phase("initial run", lambda: instance.apply(input_value))

    profiler = cProfile.Profile() if callsites else None

    if engine.lazy:
        from repro.interp.values import ConValue, RefCell
        from repro.sac.modifiable import Modifiable

        # The output's top-level modifiable(s): stop at the first
        # modifiable on each path -- demanding just the surface is the
        # lazy regime (deeper cells stay staged until someone asks).
        targets: List[Any] = []
        seen, stack = set(), [output]
        while stack:
            v = stack.pop()
            if id(v) in seen:
                continue
            seen.add(id(v))
            if isinstance(v, Modifiable):
                targets.append(v)
            elif isinstance(v, ConValue):
                if v.arg is not None:
                    stack.append(v.arg)
            elif isinstance(v, tuple):
                stack.extend(v)
            elif isinstance(v, RefCell):
                stack.append(v.value)

        def propagate_all():
            for step in range(changes):
                app.apply_change(handle, rng, step)
                engine.demand(targets)

    else:

        def propagate_all():
            for step in range(changes):
                app.apply_change(handle, rng, step)
                engine.propagate()

    run_phase(
        f"{'demand' if engine.lazy else 'propagate'} x{changes}",
        propagate_all,
        samples=max(changes, 1),
        profiler=profiler,
    )
    run_phase("readback", lambda: app.readback(output))

    intern_after = intern_stats()
    intern = {
        key: intern_after[key] - intern_before.get(key, 0)
        for key in ("hits", "misses", "bypassed")
    }
    intern["live"] = intern_after["live"]

    return ProfileReport(
        app=app.name,
        backend=backend,
        n=n,
        changes=changes,
        seed=seed,
        phases=phases,
        hot_stats=engine.hot_stats(),
        intern=intern,
        call_sites=_top_call_sites(profiler, top) if profiler else [],
        mode=mode,
    )
