"""Runtime value representations shared by both interpreters.

* base values: Python ``int``/``float``/``bool``/``str``/``()``;
* tuples: Python tuples;
* vectors: Python tuples (immutable, as SML vectors);
* datatype values: :class:`ConValue`;
* functions: :class:`Closure` (interpreted) or :class:`BuiltinFn`;
* references: :class:`RefCell` conventionally; a
  :class:`repro.sac.Modifiable` in self-adjusting runs;
* changeable data in self-adjusting runs: :class:`repro.sac.Modifiable`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.sac.api import IdKey, memo_key


class LmlRuntimeError(Exception):
    """Runtime failure in interpreted LML code."""


class MatchFailure(LmlRuntimeError):
    """A case expression matched none of its clauses."""


class ConValue:
    """A datatype constructor value: tag plus optional argument."""

    __slots__ = ("tag", "arg")

    def __init__(self, tag: str, arg: Any = None) -> None:
        self.tag = tag
        self.arg = arg

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, ConValue)
            and self.tag == other.tag
            and self.arg == other.arg
        )

    def __hash__(self) -> int:
        # Structural, matching __eq__: equal values must hash equally or
        # dict/set membership (and any hash-keyed memo path) breaks.
        # Pieces without structural equality (modifiables, closures) hash
        # by identity via object.__hash__, consistent with their __eq__.
        return hash((self.tag, self.arg))

    def memo_key(self) -> Any:
        return ("con", self.tag, memo_key(self.arg))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.arg is None:
            return self.tag
        return f"{self.tag}({self.arg!r})"


class Closure:
    """An interpreted function value."""

    __slots__ = ("param", "body", "env", "name")

    def __init__(self, param: str, body: Any, env: "Env", name: str = "") -> None:
        self.param = param
        self.body = body
        self.env = env
        self.name = name

    def memo_key(self) -> Any:
        return IdKey(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<closure {self.name or self.param}>"


class RefCell:
    """A mutable reference for conventional execution."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ref({self.value!r})"


class Env:
    """A chained environment frame.

    Binder names are globally unique after compilation, so adding bindings
    by mutating the innermost frame is safe; function application and
    re-executed readers always start a fresh frame.
    """

    __slots__ = ("parent", "vars")

    def __init__(self, parent: Optional["Env"] = None, vars: Optional[dict] = None) -> None:
        self.parent = parent
        self.vars = vars if vars is not None else {}

    def lookup(self, name: str) -> Any:
        env: Optional[Env] = self
        while env is not None:
            found = env.vars.get(name, _MISSING)
            if found is not _MISSING:
                return found
            env = env.parent
        raise LmlRuntimeError(f"unbound variable at runtime: {name}")

    def bind(self, name: str, value: Any) -> None:
        self.vars[name] = value

    def child(self) -> "Env":
        return Env(self)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def deep_read(value: Any) -> Any:
    """Convert a runtime value to plain Python data, reading through
    modifiables (untracked).  Used for verification and output readback."""
    from repro.sac.modifiable import Modifiable

    if isinstance(value, Modifiable):
        return deep_read(value.peek())
    if isinstance(value, ConValue):
        if value.arg is None:
            return (value.tag,)
        return (value.tag, deep_read(value.arg))
    if isinstance(value, tuple):
        return tuple(deep_read(v) for v in value)
    if isinstance(value, RefCell):
        return ("ref", deep_read(value.value))
    return value


def list_value_to_python(value: Any) -> list:
    """Read a cons-list value (``Nil``/``Cons(h, t)``, possibly through
    modifiables) back into a Python list, iteratively."""
    from repro.sac.modifiable import Modifiable

    out = []
    node = value
    while True:
        while isinstance(node, Modifiable):
            node = node.peek()
        if not isinstance(node, ConValue):
            raise LmlRuntimeError(f"not a list value: {node!r}")
        if node.arg is None:
            return out
        head, tail = node.arg
        while isinstance(head, Modifiable):
            head = head.peek()
        out.append(head)
        node = tail
