"""Runtime value representations shared by both interpreters.

* base values: Python ``int``/``float``/``bool``/``str``/``()``;
* tuples: Python tuples;
* vectors: Python tuples (immutable, as SML vectors);
* datatype values: :class:`ConValue`;
* functions: :class:`Closure` (interpreted) or :class:`BuiltinFn`;
* references: :class:`RefCell` conventionally; a
  :class:`repro.sac.Modifiable` in self-adjusting runs;
* changeable data in self-adjusting runs: :class:`repro.sac.Modifiable`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.sac.api import memo_key
from repro.sac.intern import INTERN


class LmlRuntimeError(Exception):
    """Runtime failure in interpreted LML code."""


class MatchFailure(LmlRuntimeError):
    """A case expression matched none of its clauses."""


class ConValue:
    """A datatype constructor value: tag plus optional argument.

    Equality and hashing are structural (matching SML value equality over
    the constructed data; pieces without structural equality -- modifiables,
    closures -- fall back to identity).  Both are implemented iteratively
    with explicit stacks: constructor spines built without intervening
    modifiables (``marshal.plain_list``) can be deeper than the Python
    recursion limit.  The structural hash is computed once and cached.

    ``_hc`` marks a *canonical* (hash-consed) instance from the process-wide
    intern table (see :mod:`repro.sac.intern` and :func:`intern_con`);
    canonical instances let the engine's write cutoff and the memo tables
    compare/hash by identity on the fast path.
    """

    __slots__ = ("tag", "arg", "_hash", "_hc", "__weakref__")

    def __init__(self, tag: str, arg: Any = None) -> None:
        self.tag = tag
        self.arg = arg
        self._hash: Optional[int] = None
        self._hc = False

    def __eq__(self, other: Any) -> bool:
        if self is other:
            return True
        if not isinstance(other, ConValue):
            return False
        stack = [(self.arg, other.arg)]
        if self.tag != other.tag:
            return False
        while stack:
            a, b = stack.pop()
            if a is b:
                continue
            a_con = type(a) is ConValue
            if a_con and type(b) is ConValue:
                if a.tag != b.tag:
                    return False
                stack.append((a.arg, b.arg))
                continue
            if type(a) is tuple and type(b) is tuple:
                if len(a) != len(b):
                    return False
                stack.extend(zip(a, b))
                continue
            # Mixed or leaf pair: plain equality.  A ConValue here pairs
            # with a non-ConValue, so this bottoms out immediately.
            if a_con or type(b) is ConValue:
                return False
            if not a == b:
                return False
        return True

    def __hash__(self) -> int:
        # Structural, matching __eq__: equal values must hash equally or
        # dict/set membership (and any hash-keyed memo path) breaks.
        h = self._hash
        if h is not None:
            return h
        # Discover uncached constructor nodes (parents before children),
        # then fill hashes bottom-up so each hash() call below finds its
        # constructor children already cached and stays O(1)-deep.
        order = []
        stack: list = [self]
        while stack:
            v = stack.pop()
            tv = type(v)
            if tv is ConValue:
                if v._hash is None:
                    order.append(v)
                    stack.append(v.arg)
            elif tv is tuple:
                stack.extend(v)
        for v in reversed(order):
            if v._hash is None:
                v._hash = hash((v.tag, v.arg))
        return self._hash

    def memo_key(self) -> Any:
        # A canonical value is its own memo key: hashing is the cached
        # structural hash and equality has the identity fast path, while
        # the key's equality classes match the structural tuple keys used
        # for uninterned values (both follow Python ``==`` on the pieces).
        if self._hc:
            return self
        return ("con", self.tag, memo_key(self.arg))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.arg is None:
            return self.tag
        return f"{self.tag}({self.arg!r})"


def intern_con(tag: str, arg: Any = None) -> ConValue:
    """Build a :class:`ConValue` through the process-wide intern table.

    Returns the canonical instance when ``(tag, arg)`` is internable (see
    :mod:`repro.sac.intern`), a fresh uninterned instance otherwise."""
    return INTERN.con(ConValue, tag, arg)


class Closure:
    """An interpreted function value."""

    __slots__ = ("param", "body", "env", "name")

    def __init__(self, param: str, body: Any, env: "Env", name: str = "") -> None:
        self.param = param
        self.body = body
        self.env = env
        self.name = name

    def memo_key(self) -> Any:
        # Closures key by identity; the closure is its own key (default
        # object hash/eq), saving a wrapper allocation per memo lookup.
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<closure {self.name or self.param}>"


class RefCell:
    """A mutable reference for conventional execution."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ref({self.value!r})"


class Env:
    """A chained environment frame.

    Binder names are globally unique after compilation, so adding bindings
    by mutating the innermost frame is safe; function application and
    re-executed readers always start a fresh frame.
    """

    __slots__ = ("parent", "vars")

    def __init__(self, parent: Optional["Env"] = None, vars: Optional[dict] = None) -> None:
        self.parent = parent
        self.vars = vars if vars is not None else {}

    def lookup(self, name: str) -> Any:
        env: Optional[Env] = self
        while env is not None:
            found = env.vars.get(name, _MISSING)
            if found is not _MISSING:
                return found
            env = env.parent
        raise LmlRuntimeError(f"unbound variable at runtime: {name}")

    def bind(self, name: str, value: Any) -> None:
        self.vars[name] = value

    def child(self) -> "Env":
        return Env(self)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def deep_read(value: Any) -> Any:
    """Convert a runtime value to plain Python data, reading through
    modifiables (untracked).  Used for verification and output readback."""
    from repro.sac.modifiable import Modifiable

    if isinstance(value, Modifiable):
        return deep_read(value.peek())
    if isinstance(value, ConValue):
        if value.arg is None:
            return (value.tag,)
        return (value.tag, deep_read(value.arg))
    if isinstance(value, tuple):
        return tuple(deep_read(v) for v in value)
    if isinstance(value, RefCell):
        return ("ref", deep_read(value.value))
    return value


def list_value_to_python(value: Any) -> list:
    """Read a cons-list value (``Nil``/``Cons(h, t)``, possibly through
    modifiables) back into a Python list, iteratively."""
    from repro.sac.modifiable import Modifiable

    out = []
    node = value
    while True:
        while isinstance(node, Modifiable):
            node = node.peek()
        if not isinstance(node, ConValue):
            raise LmlRuntimeError(f"not a list value: {node!r}")
        if node.arg is None:
            return out
        head, tail = node.arg
        while isinstance(head, Modifiable):
            head = head.peek()
        out.append(head)
        node = tail
