"""Marshalling between Python data and LML runtime values.

Inputs to compiled programs are built on the host side; where the program's
input type is changeable (per the solved levels), values are wrapped in
input modifiables, and a *handle* object remembers them so the host can
make incremental changes and then call ``propagate``.

The handles mirror the changes the paper's benchmarks make (Section 4.1):

* :class:`ModListInput` -- lists with changeable tails: insert/remove/set;
* :class:`ModVectorInput` -- vectors with changeable elements: set;
* :class:`ModMatrixInput` -- matrices of changeable elements: set;
* :class:`BlockMatrixInput` -- matrices of changeable blocks: set
  (any element change rewrites its whole block).

Every edit method follows the uniform convention of
:class:`repro.api.Session`: the change is *staged* (nothing re-executes
until propagation) and the return value is the number of read edges it
dirtied.

List cells are built through the intern table
(:func:`repro.interp.values.intern_con`), so a cell rebuilt during an edit
with unchanged contents is the *same object* the trace already holds and
the engine's write cutoff answers by identity.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.interp.values import ConValue, deep_read, intern_con, list_value_to_python
from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable

__all__ = [
    "ModListInput",
    "ModVectorInput",
    "ModMatrixInput",
    "BlockMatrixInput",
    "plain_list",
    "deep_read",
    "list_value_to_python",
]


def plain_list(items: Sequence[Any], nil: str = "Nil", cons: str = "Cons") -> ConValue:
    """Build a conventional (modifiable-free) cons list value."""
    value = intern_con(nil)
    for item in reversed(list(items)):
        value = intern_con(cons, (item, value))
    return value


class ModListInput:
    """A modifiable list input (changeable tails).

    ``mods[i]`` holds the cell starting at position ``i``; ``mods[len]``
    holds ``Nil``.  The program receives :attr:`head` (a modifiable of
    cell), matching an LML parameter of type ``list $C`` where the datatype
    is ``datatype list = Nil | Cons of elem * list $C``.
    """

    def __init__(
        self,
        engine: Engine,
        items: Sequence[Any],
        nil: str = "Nil",
        cons: str = "Cons",
    ) -> None:
        self.engine = engine
        self.nil = nil
        self.cons = cons
        # Build back-to-front and reverse once: the obvious
        # ``insert(0, ...)`` per element is O(n^2) and dominates marshal
        # time for the deep-workload stress inputs (n ~ 1e5).
        mods: List[Modifiable] = [engine.make_input(intern_con(nil))]
        for item in reversed(list(items)):
            cell = intern_con(cons, (item, mods[-1]))
            mods.append(engine.make_input(cell))
        mods.reverse()
        self.mods: List[Modifiable] = mods

    @property
    def head(self) -> Modifiable:
        return self.mods[0]

    def __len__(self) -> int:
        return len(self.mods) - 1

    def to_python(self) -> list:
        return list_value_to_python(self.mods[0])

    def get(self, index: int) -> Any:
        """The value of element ``index`` (untracked peek)."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self.mods[index].peek().arg[0]

    def insert(self, index: int, value: Any) -> int:
        """Insert ``value`` so it becomes element ``index``."""
        if not 0 <= index <= len(self):
            raise IndexError(index)
        target = self.mods[index]
        carrier = self.engine.make_input(target.peek())
        dirtied = self.engine.change(
            target, intern_con(self.cons, (value, carrier))
        )
        self.mods.insert(index + 1, carrier)
        return dirtied

    def remove(self, index: int) -> int:
        """Remove element ``index`` (use :meth:`get` first for its value)."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        dirtied = self.engine.change(
            self.mods[index], self.mods[index + 1].peek()
        )
        del self.mods[index + 1]
        return dirtied

    def set(self, index: int, value: Any) -> int:
        """Replace the head value of element ``index``."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        cell = self.mods[index].peek()
        return self.engine.change(
            self.mods[index], intern_con(self.cons, (value, cell.arg[1]))
        )


class ModVectorInput:
    """A vector of changeable elements: LML type ``(elem $C) vector``."""

    def __init__(self, engine: Engine, items: Sequence[Any]) -> None:
        self.engine = engine
        self.mods: List[Modifiable] = [engine.make_input(x) for x in items]
        self.value = tuple(self.mods)

    def __len__(self) -> int:
        return len(self.mods)

    def set(self, index: int, value: Any) -> int:
        return self.engine.change(self.mods[index], value)

    def get(self, index: int) -> Any:
        return self.mods[index].peek()

    def to_python(self) -> list:
        return [m.peek() for m in self.mods]


class ModMatrixInput:
    """A matrix of changeable elements: ``((elem $C) vector) vector``."""

    def __init__(self, engine: Engine, rows: Sequence[Sequence[Any]]) -> None:
        self.engine = engine
        self.rows = [ModVectorInput(engine, row) for row in rows]
        self.value = tuple(r.value for r in self.rows)

    @property
    def shape(self):
        return (len(self.rows), len(self.rows[0]) if self.rows else 0)

    def set(self, i: int, j: int, value: Any) -> int:
        return self.rows[i].set(j, value)

    def get(self, i: int, j: int) -> Any:
        return self.rows[i].get(j)

    def to_python(self) -> list:
        return [r.to_python() for r in self.rows]


class BlockMatrixInput:
    """A matrix stored as blocks, each block one modifiable.

    The LML type is ``((block $C) vector) vector`` where
    ``datatype block = Block of (real vector) vector``: each modifiable
    holds a ``Block`` constructor value around a plain sub-matrix.
    Changing any element rewrites its whole block (paper Sections 2.4 and
    4.6).
    """

    def __init__(
        self, engine: Engine, rows: Sequence[Sequence[float]], block: int
    ) -> None:
        if not rows or len(rows) % block or len(rows[0]) % block:
            raise ValueError("matrix dimensions must be multiples of the block size")
        self.engine = engine
        self.block = block
        self.n = len(rows)
        self.m = len(rows[0])
        self.blocks: List[List[Modifiable]] = []
        for bi in range(self.n // block):
            brow = []
            for bj in range(self.m // block):
                data = tuple(
                    tuple(rows[bi * block + r][bj * block + c] for c in range(block))
                    for r in range(block)
                )
                brow.append(engine.make_input(ConValue("Block", data)))
            self.blocks.append(brow)
        self.value = tuple(tuple(brow) for brow in self.blocks)

    @property
    def shape(self):
        return (self.n, self.m)

    def set(self, i: int, j: int, value: float) -> int:
        """Change element (i, j), rewriting its block."""
        bi, bj = i // self.block, j // self.block
        mod = self.blocks[bi][bj]
        data = [list(row) for row in mod.peek().arg]
        data[i % self.block][j % self.block] = value
        return self.engine.change(
            mod, ConValue("Block", tuple(tuple(row) for row in data))
        )

    def to_python(self) -> list:
        out = [[0.0] * self.m for _ in range(self.n)]
        for bi, brow in enumerate(self.blocks):
            for bj, mod in enumerate(brow):
                data = mod.peek().arg
                for r in range(self.block):
                    for c in range(self.block):
                        out[bi * self.block + r][bj * self.block + c] = data[r][c]
        return out


def from_python(engine: Optional[Engine], lty, value: Any) -> Any:
    """Type-directed marshalling: build a runtime input from Python data.

    ``lty`` is a level type (e.g. ``program.main_lty.children[0]`` for the
    input of ``main``); positions whose level resolved changeable are
    wrapped in input modifiables.  With ``engine=None`` the conventional
    (modifiable-free) representation is built.

    Datatype values must already be :class:`ConValue` trees (constructor
    layout is application-specific); they pass through unchanged apart
    from the top-level wrapping.
    """
    from repro.sac.modifiable import Modifiable

    def build(lty, value):
        if isinstance(value, (Modifiable, ConValue)):
            inner = value  # pre-built runtime values pass through
        elif lty.kind == "tuple":
            inner = tuple(build(c, v) for c, v in zip(lty.children, value))
        elif lty.kind == "vector":
            inner = tuple(build(lty.children[0], v) for v in value)
        else:
            inner = value
        if engine is not None and lty.level == "C" and not isinstance(inner, Modifiable):
            return engine.make_input(inner)
        return inner

    return build(lty, value)
