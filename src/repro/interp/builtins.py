"""Implementations of the built-in primitives and vector operations.

The functions here are *stable library code*: their control flow never
inspects changeable data, so they are shared verbatim by the conventional
and self-adjusting interpreters.  Changeability rides inside the element
values (modifiables) and inside the function arguments they apply (which,
in self-adjusting runs, are translated closures that allocate modifiables
and record reads).

``vreduce`` is a *balanced* divide-and-conquer reduction, which is what
makes change propagation through reductions O(log n) (paper Sections 2.1
and 4.1); a left fold would re-execute O(n) combines per change.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable, Dict, Tuple

from repro.interp.values import LmlRuntimeError


#: Direct two-argument implementations for the primitives with no
#: error-path of their own (division-likes keep their zero checks in
#: :func:`eval_prim`).  Interpreters dispatch through this table to skip
#: the string ladder and the argument-list allocation on the hot path.
PRIM2 = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "<>": operator.ne,
    "^": operator.add,
    "rpow": math.pow,
}


def eval_prim(op: str, args: list) -> Any:
    """Evaluate a primitive operator on base-type values."""
    if op == "+":
        return args[0] + args[1]
    if op == "-":
        return args[0] - args[1]
    if op == "*":
        return args[0] * args[1]
    if op == "/":
        if args[1] == 0.0:
            raise LmlRuntimeError("division by zero")
        return args[0] / args[1]
    if op == "div":
        if args[1] == 0:
            raise LmlRuntimeError("div by zero")
        return args[0] // args[1]
    if op == "mod":
        if args[1] == 0:
            raise LmlRuntimeError("mod by zero")
        return args[0] % args[1]
    if op == "~":
        return -args[0]
    if op == "<":
        return args[0] < args[1]
    if op == "<=":
        return args[0] <= args[1]
    if op == ">":
        return args[0] > args[1]
    if op == ">=":
        return args[0] >= args[1]
    if op == "=":
        return args[0] == args[1]
    if op == "<>":
        return args[0] != args[1]
    if op == "not":
        return not args[0]
    if op == "^":
        return args[0] + args[1]
    if op == "sqrt":
        if args[0] < 0.0:
            raise LmlRuntimeError("sqrt of negative")
        return math.sqrt(args[0])
    if op == "rpow":
        return math.pow(args[0], args[1])
    if op == "floor":
        return math.floor(args[0])
    if op == "toReal":
        return float(args[0])
    raise LmlRuntimeError(f"unknown primitive {op}")


class BuiltinFn:
    """A built-in function value.

    ``fn`` receives the interpreter (anything with an ``apply(f, arg)``
    method) and the single (possibly tuple) argument value.
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable) -> None:
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<builtin {self.name}>"


def _vtabulate(rt, arg: Tuple[int, Any]) -> tuple:
    n, f = arg
    if n < 0:
        raise LmlRuntimeError("vtabulate with negative length")
    return tuple(rt.apply(f, i) for i in range(n))


def _vlength(rt, v: tuple) -> int:
    return len(v)


def _vsub(rt, arg: Tuple[tuple, int]) -> Any:
    v, i = arg
    if not 0 <= i < len(v):
        raise LmlRuntimeError(f"vector index {i} out of bounds (length {len(v)})")
    return v[i]


def _vmap(rt, arg: Tuple[tuple, Any]) -> tuple:
    v, f = arg
    return tuple(rt.apply(f, x) for x in v)


def _vmap2(rt, arg: Tuple[tuple, tuple, Any]) -> tuple:
    v1, v2, f = arg
    if len(v1) != len(v2):
        raise LmlRuntimeError("vmap2 on vectors of different lengths")
    return tuple(rt.apply(f, (x, y)) for x, y in zip(v1, v2))


def _vreduce(rt, arg: Tuple[tuple, Any, Any]) -> Any:
    v, z, f = arg
    if not v:
        return z

    def go(lo: int, hi: int) -> Any:
        if hi - lo == 1:
            return v[lo]
        mid = (lo + hi) // 2
        return rt.apply(f, (go(lo, mid), go(mid, hi)))

    return go(0, len(v))


BUILTIN_IMPLS: Dict[str, BuiltinFn] = {
    "vtabulate": BuiltinFn("vtabulate", _vtabulate),
    "vlength": BuiltinFn("vlength", _vlength),
    "vsub": BuiltinFn("vsub", _vsub),
    "vmap": BuiltinFn("vmap", _vmap),
    "vmap2": BuiltinFn("vmap2", _vmap2),
    "vreduce": BuiltinFn("vreduce", _vreduce),
}
