"""Interpreters for SXML.

The paper compiles SXML to native code through the unmodified MLton
back-end (Section 3.5).  Our "executables" are closures over two
interpreters instead:

* :mod:`repro.interp.conventional` runs the *pre-translation* SXML: this is
  the paper's conventional (reference) executable;
* :mod:`repro.interp.selfadjusting` runs the *translated* SXML against a
  :class:`repro.sac.Engine`: the self-adjusting executable, supporting
  change propagation.

:mod:`repro.interp.marshal` converts Python data to and from LML runtime
values and provides change handles for inputs (modifiable lists, vectors
and matrices of modifiables).
"""

import sys

#: Deep recursion is inherent to interpreting recursive ML programs over
#: lists; CPython 3.11+ keeps pure-Python frames on the heap, so a high
#: recursion limit is safe.
RECURSION_LIMIT = 600_000


def ensure_recursion_headroom(limit: int = RECURSION_LIMIT) -> None:
    """Raise the interpreter recursion limit if it is below ``limit``."""
    if sys.getrecursionlimit() < limit:
        sys.setrecursionlimit(limit)


from repro.interp.conventional import ConventionalInterpreter  # noqa: E402
from repro.interp.selfadjusting import SelfAdjustingInterpreter  # noqa: E402

__all__ = [
    "ConventionalInterpreter",
    "SelfAdjustingInterpreter",
    "ensure_recursion_headroom",
]
