"""The self-adjusting interpreter: runs translated SXML against an Engine.

Stable expressions evaluate to values; changeable expressions execute with
a destination modifiable, ending in a ``write`` (possibly under nested
reads).  Read continuations capture their environment frame and destination
so the engine can re-execute them during change propagation.

Memoized applications (``BMemoApp``) key on the function closure's identity
plus the structural/identity memo key of the argument -- the same strategy
as the AFL library benchmarks (paper Section 4.1).

Dispatch is by exact type (``type(x) is BApp``): the SXML node classes are
leaves of a closed IR, so ``isinstance`` ladders -- the single hottest cost
in profiles of this backend -- reduce to identity checks against
module-level aliases, ordered by measured execution frequency under change
propagation.  Atom resolution (variable lookup) is additionally inlined at
the hottest sites.  Constructor values are built through the intern table
(:func:`repro.interp.values.intern_con`), so repeated cells share one
canonical object and downstream equality/memo checks run by identity.

Exception transparency: this backend deliberately contains no exception
handlers.  Anything raised while evaluating user code -- a failing
builtin, a ``MatchFailure``, a ``RecursionError``, a planted fault from
:mod:`repro.obs.faults` -- propagates unmangled to the engine, whose
transactional re-execution wrapper (DESIGN.md Section 7) owns failure
handling.  Catching here would corrupt that contract.
"""

from __future__ import annotations

from functools import partial
from typing import Any

from repro.core import sxml as S
from repro.interp.builtins import BUILTIN_IMPLS, PRIM2, BuiltinFn, eval_prim
from repro.interp.values import (
    _MISSING,
    Closure,
    ConValue,
    Env,
    LmlRuntimeError,
    MatchFailure,
    intern_con,
)
from repro.sac.api import memo_key
from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable

# Exact-type dispatch targets, hoisted out of the module-attribute namespace
# so each test is one load plus an identity compare.
_AVar = S.AVar
_ELet = S.ELet
_ELetRec = S.ELetRec
_ERet = S.ERet
_BAtom = S.BAtom
_BPrim = S.BPrim
_BApp = S.BApp
_BMemoApp = S.BMemoApp
_BTuple = S.BTuple
_BProj = S.BProj
_BCon = S.BCon
_BLam = S.BLam
_BIf = S.BIf
_BCase = S.BCase
_BCaseConst = S.BCaseConst
_BMod = S.BMod
_BAssign = S.BAssign
_BAscribe = S.BAscribe
_BMatchFail = S.BMatchFail
_CWrite = S.CWrite
_CRead = S.CRead
_CLet = S.CLet
_CLetRec = S.CLetRec
_CIf = S.CIf
_CCase = S.CCase
_CCaseConst = S.CCaseConst
_CImpWrite = S.CImpWrite


class SelfAdjustingInterpreter:
    """Evaluates translated SXML with self-adjusting primitives."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def run(self, expr: S.Expr) -> Any:
        return self.eval(expr, Env())

    # ------------------------------------------------------------------

    def apply(self, fn: Any, arg: Any) -> Any:
        if type(fn) is Closure:
            env = Env(fn.env)
            env.vars[fn.param] = arg
            return self.eval(fn.body, env)
        if type(fn) is BuiltinFn:
            return fn.fn(self, arg)
        raise LmlRuntimeError(f"application of non-function {fn!r}")

    def atom(self, a: S.Atom, env: Env) -> Any:
        if type(a) is _AVar:
            if a.is_builtin:
                return BUILTIN_IMPLS[a.name]
            # Inlined Env.lookup: one method call per variable reference is
            # the single largest interpreter cost under propagation.
            name = a.name
            scope = env
            while scope is not None:
                found = scope.vars.get(name, _MISSING)
                if found is not _MISSING:
                    return found
                scope = scope.parent
            raise LmlRuntimeError(f"unbound variable at runtime: {name}")
        return a.value

    # ------------------------------------------------------------------
    # Stable mode

    def eval(self, e: S.Expr, env: Env) -> Any:
        while True:
            t = type(e)
            if t is _ELet:
                env.vars[e.name] = self.eval_bind(e.bind, env)
                e = e.body
            elif t is _ERet:
                return self.atom(e.atom, env)
            elif t is _ELetRec:
                for name, lam in e.bindings:
                    env.vars[name] = Closure(lam.param, lam.body, env, name=name)
                e = e.body
            else:
                raise AssertionError(f"unknown expr {e!r}")

    def eval_bind(self, b: S.Bind, env: Env) -> Any:
        # Branches ordered by measured dispatch frequency during change
        # propagation of the list benchmarks (msort/filter): projections
        # and tuple building dominate, then mod/prim/memoized application.
        t = type(b)
        if t is _BProj:
            a = b.arg
            index = b.index - 1
            if type(a) is _AVar and not a.is_builtin:
                name = a.name
                scope = env
                while scope is not None:
                    found = scope.vars.get(name, _MISSING)
                    if found is not _MISSING:
                        return found[index]
                    scope = scope.parent
                raise LmlRuntimeError(f"unbound variable at runtime: {name}")
            return self.atom(a, env)[index]
        if t is _BTuple:
            items = b.items
            atom = self.atom
            n = len(items)
            if n == 2:
                # Pairs dominate (every split/merge builds them); resolve
                # both operands with the inlined variable lookup.
                a = items[0]
                if type(a) is _AVar and not a.is_builtin:
                    name = a.name
                    scope = env
                    while scope is not None:
                        x = scope.vars.get(name, _MISSING)
                        if x is not _MISSING:
                            break
                        scope = scope.parent
                    else:
                        raise LmlRuntimeError(
                            f"unbound variable at runtime: {name}"
                        )
                else:
                    x = atom(a, env)
                a = items[1]
                if type(a) is _AVar and not a.is_builtin:
                    name = a.name
                    scope = env
                    while scope is not None:
                        y = scope.vars.get(name, _MISSING)
                        if y is not _MISSING:
                            break
                        scope = scope.parent
                    else:
                        raise LmlRuntimeError(
                            f"unbound variable at runtime: {name}"
                        )
                else:
                    y = atom(a, env)
                return (x, y)
            if n == 3:
                return (atom(items[0], env), atom(items[1], env), atom(items[2], env))
            return tuple(atom(a, env) for a in items)
        if t is _BMod:
            return self.engine.mod(
                lambda dest, body=b.body, env=Env(env): self.ceval(body, env, dest)
            )
        if t is _BPrim:
            args = b.args
            if len(args) == 2:
                fn2 = PRIM2.get(b.op)
                if fn2 is not None:
                    # Two-argument primitive with no error path of its own
                    # (comparisons and arithmetic in recursive traversals):
                    # dispatch through the operator table with both
                    # operands resolved inline.
                    a = args[0]
                    if type(a) is _AVar and not a.is_builtin:
                        name = a.name
                        scope = env
                        while scope is not None:
                            x = scope.vars.get(name, _MISSING)
                            if x is not _MISSING:
                                break
                            scope = scope.parent
                        else:
                            raise LmlRuntimeError(
                                f"unbound variable at runtime: {name}"
                            )
                    else:
                        x = self.atom(a, env)
                    a = args[1]
                    if type(a) is _AVar and not a.is_builtin:
                        name = a.name
                        scope = env
                        while scope is not None:
                            y = scope.vars.get(name, _MISSING)
                            if y is not _MISSING:
                                break
                            scope = scope.parent
                        else:
                            raise LmlRuntimeError(
                                f"unbound variable at runtime: {name}"
                            )
                    else:
                        y = self.atom(a, env)
                    return fn2(x, y)
            return eval_prim(b.op, [self.atom(a, env) for a in args])
        if t is _BMemoApp:
            fn = self.atom(b.fn, env)
            arg = self.atom(b.arg, env)
            # Inline the dominant memo-key shapes (closure identity,
            # modifiable identity, scalar value, constructor value); the
            # generic memo_key() produces identical keys, just slower.
            tf = type(fn)
            fk = fn if (tf is Closure or tf is Modifiable) else memo_key(fn)
            ta = type(arg)
            if ta is Modifiable or ta is int or ta is str or ta is bool:
                ak = arg
            elif ta is ConValue:
                ak = arg.memo_key()
            else:
                ak = memo_key(arg)
            return self.engine.memo((fk, ak), lambda: self.apply(fn, arg))
        if t is _BCon:
            if b.args:
                # One cons cell per list element re-created under
                # propagation: inline the operand lookup here too.
                a = b.args[0]
                if type(a) is _AVar and not a.is_builtin:
                    name = a.name
                    scope = env
                    while scope is not None:
                        x = scope.vars.get(name, _MISSING)
                        if x is not _MISSING:
                            return intern_con(b.tag, x)
                        scope = scope.parent
                    raise LmlRuntimeError(
                        f"unbound variable at runtime: {name}"
                    )
                return intern_con(b.tag, self.atom(a, env))
            return intern_con(b.tag)
        if t is _BIf:
            cond = self.atom(b.cond, env)
            return self.eval(b.then if cond else b.els, Env(env))
        if t is _BApp:
            fn = self.atom(b.fn, env)
            # Inlined atom() for the argument plus the Closure entry of
            # apply(): one application is otherwise three method calls.
            a = b.arg
            if type(a) is _AVar and not a.is_builtin:
                name = a.name
                scope = env
                arg = None
                while scope is not None:
                    arg = scope.vars.get(name, _MISSING)
                    if arg is not _MISSING:
                        break
                    scope = scope.parent
                else:
                    raise LmlRuntimeError(f"unbound variable at runtime: {name}")
            else:
                arg = self.atom(a, env)
            if type(fn) is Closure:
                env = Env(fn.env)
                env.vars[fn.param] = arg
                return self.eval(fn.body, env)
            return self.apply(fn, arg)
        if t is _BCase:
            scrut = self.atom(b.scrut, env)
            tag_map = b.tag_map
            if tag_map is not None:
                clause = tag_map.get(scrut.tag)
            else:  # un-indexed (hand-built) AST: linear clause scan
                clause = None
                for candidate in b.clauses:
                    if candidate.tag == scrut.tag:
                        clause = candidate
                        break
            if clause is not None:
                inner = Env(env)
                if clause.binder is not None:
                    inner.vars[clause.binder] = scrut.arg
                return self.eval(clause.body, inner)
            if b.default is not None:
                return self.eval(b.default, Env(env))
            raise MatchFailure(f"no clause for {scrut.tag}")
        if t is _BAtom:
            a = b.atom
            if type(a) is _AVar:
                if a.is_builtin:
                    return BUILTIN_IMPLS[a.name]
                name = a.name
                scope = env
                while scope is not None:
                    found = scope.vars.get(name, _MISSING)
                    if found is not _MISSING:
                        return found
                    scope = scope.parent
                raise LmlRuntimeError(f"unbound variable at runtime: {name}")
            return a.value
        if t is _BLam:
            return Closure(b.param, b.body, env, name=b.name_hint)
        if t is _BAssign:
            cell = self.atom(b.ref, env)
            if not isinstance(cell, Modifiable):
                raise LmlRuntimeError("assignment to a non-modifiable")
            self.engine.impwrite(cell, self.atom(b.value, env))
            return ()
        if t is _BAscribe:
            return self.atom(b.atom, env)
        if t is _BMatchFail:
            raise MatchFailure("inexhaustive match")
        # BRef / BDeref never survive translation (they become mod/aliases).
        raise AssertionError(f"unexpected bind in translated code: {b!r}")

    # ------------------------------------------------------------------
    # Changeable mode

    def ceval(self, e: S.CExpr, env: Env, dest: Modifiable) -> None:
        engine = self.engine
        while True:
            t = type(e)
            if t is _CLet:
                env.vars[e.name] = self.eval_bind(e.bind, env)
                e = e.body
            elif t is _CCase:
                a = e.scrut
                if type(a) is _AVar and not a.is_builtin:
                    name = a.name
                    scope = env
                    scrut = None
                    while scope is not None:
                        scrut = scope.vars.get(name, _MISSING)
                        if scrut is not _MISSING:
                            break
                        scope = scope.parent
                    else:
                        raise LmlRuntimeError(
                            f"unbound variable at runtime: {name}"
                        )
                else:
                    scrut = self.atom(a, env)
                tag_map = e.tag_map
                if tag_map is not None:
                    chosen = tag_map.get(scrut.tag)
                else:  # un-indexed (hand-built) AST: linear clause scan
                    chosen = None
                    for clause in e.clauses:
                        if clause.tag == scrut.tag:
                            chosen = clause
                            break
                if chosen is not None:
                    env = Env(env)
                    if chosen.binder is not None:
                        env.vars[chosen.binder] = scrut.arg
                    e = chosen.body
                elif e.default is not None:
                    env = Env(env)
                    e = e.default
                else:
                    raise MatchFailure(f"no clause for {scrut.tag}")
            elif t is _CWrite:
                # Inlined atom(): CWrite/CRead atoms are the hottest
                # resolutions under change propagation.
                a = e.atom
                if type(a) is _AVar:
                    if a.is_builtin:
                        value = BUILTIN_IMPLS[a.name]
                    else:
                        name = a.name
                        scope = env
                        while scope is not None:
                            value = scope.vars.get(name, _MISSING)
                            if value is not _MISSING:
                                break
                            scope = scope.parent
                        else:
                            raise LmlRuntimeError(
                                f"unbound variable at runtime: {name}"
                            )
                else:
                    value = a.value
                engine.write(dest, value)
                return
            elif t is _CRead:
                a = e.src
                if type(a) is _AVar and not a.is_builtin:
                    name = a.name
                    scope = env
                    src = None
                    while scope is not None:
                        src = scope.vars.get(name, _MISSING)
                        if src is not _MISSING:
                            break
                        scope = scope.parent
                    else:
                        raise LmlRuntimeError(
                            f"unbound variable at runtime: {name}"
                        )
                else:
                    src = self.atom(a, env)
                if not isinstance(src, Modifiable):
                    raise LmlRuntimeError(
                        f"read of a non-modifiable value: {src!r}"
                    )
                body_e = e.body
                binder = e.binder
                tb = type(body_e)
                if (
                    tb is _CWrite
                    and type(body_e.atom) is _AVar
                    and not body_e.atom.is_builtin
                    and body_e.atom.name == binder
                ):
                    # Copy read (``read x as v in write v``, the coercion
                    # shape of Section 3.3): the reader is just
                    # ``write(dest, value)`` -- no frame, no dispatch.
                    engine.read(src, partial(engine.write, dest))
                    return
                if (
                    tb is _CCase
                    and type(body_e.scrut) is _AVar
                    and body_e.scrut.name == binder
                ):
                    # Fused read-then-match (``read l as v in case v of
                    # ...``, the translation of every recursive list
                    # traversal): the reader dispatches on the fresh value
                    # directly.  Binder names are globally unique, so the
                    # read binder and the clause binder share one frame.
                    def reader_case(value, e=body_e, env=env, binder=binder, dest=dest):
                        inner = Env(env)
                        inner.vars[binder] = value
                        tag_map = e.tag_map
                        if tag_map is not None:
                            chosen = tag_map.get(value.tag)
                        else:
                            chosen = None
                            for clause in e.clauses:
                                if clause.tag == value.tag:
                                    chosen = clause
                                    break
                        if chosen is not None:
                            if chosen.binder is not None:
                                inner.vars[chosen.binder] = value.arg
                            self.ceval(chosen.body, inner, dest)
                        elif e.default is not None:
                            self.ceval(e.default, inner, dest)
                        else:
                            raise MatchFailure(f"no clause for {value.tag}")

                    engine.read(src, reader_case)
                    return

                def reader(value, body=body_e, env=env, binder=binder, dest=dest):
                    inner = Env(env)
                    inner.vars[binder] = value
                    self.ceval(body, inner, dest)

                engine.read(src, reader)
                return
            elif t is _CIf:
                cond = self.atom(e.cond, env)
                env = Env(env)
                e = e.then if cond else e.els
            elif t is _CLetRec:
                for name, lam in e.bindings:
                    env.vars[name] = Closure(lam.param, lam.body, env, name=name)
                e = e.body
            elif t is _CCaseConst:
                scrut = self.atom(e.scrut, env)
                arm_map = e.arm_map
                if arm_map is not None:
                    target = arm_map.get((type(scrut), scrut))
                else:  # un-indexed (hand-built) AST: linear arm scan
                    target = None
                    for value, body in e.arms:
                        if value == scrut and type(value) is type(scrut):
                            target = body
                            break
                if target is None:
                    if e.default is None:
                        raise MatchFailure(f"no arm for {scrut!r}")
                    target = e.default
                env = Env(env)
                e = target
            elif t is _CImpWrite:
                cell = self.atom(e.ref, env)
                engine.impwrite(cell, self.atom(e.value, env))
                e = e.body
            else:
                raise AssertionError(f"unknown cexpr {e!r}")
