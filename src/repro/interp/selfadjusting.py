"""The self-adjusting interpreter: runs translated SXML against an Engine.

Stable expressions evaluate to values; changeable expressions execute with
a destination modifiable, ending in a ``write`` (possibly under nested
reads).  Read continuations capture their environment frame and destination
so the engine can re-execute them during change propagation.

Memoized applications (``BMemoApp``) key on the function closure's identity
plus the structural/identity memo key of the argument -- the same strategy
as the AFL library benchmarks (paper Section 4.1).

Exception transparency: this backend deliberately contains no exception
handlers.  Anything raised while evaluating user code -- a failing
builtin, a ``MatchFailure``, a ``RecursionError``, a planted fault from
:mod:`repro.obs.faults` -- propagates unmangled to the engine, whose
transactional re-execution wrapper (DESIGN.md Section 7) owns failure
handling.  Catching here would corrupt that contract.
"""

from __future__ import annotations

from typing import Any

from repro.core import sxml as S
from repro.interp.builtins import BUILTIN_IMPLS, BuiltinFn, eval_prim
from repro.interp.values import (
    Closure,
    ConValue,
    Env,
    LmlRuntimeError,
    MatchFailure,
)
from repro.sac.api import IdKey, memo_key
from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable


class SelfAdjustingInterpreter:
    """Evaluates translated SXML with self-adjusting primitives."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def run(self, expr: S.Expr) -> Any:
        return self.eval(expr, Env())

    # ------------------------------------------------------------------

    def apply(self, fn: Any, arg: Any) -> Any:
        if isinstance(fn, Closure):
            env = Env(fn.env)
            env.bind(fn.param, arg)
            return self.eval(fn.body, env)
        if isinstance(fn, BuiltinFn):
            return fn.fn(self, arg)
        raise LmlRuntimeError(f"application of non-function {fn!r}")

    def atom(self, a: S.Atom, env: Env) -> Any:
        if isinstance(a, S.AVar):
            if a.is_builtin:
                return BUILTIN_IMPLS[a.name]
            return env.lookup(a.name)
        return a.value

    # ------------------------------------------------------------------
    # Stable mode

    def eval(self, e: S.Expr, env: Env) -> Any:
        while True:
            if isinstance(e, S.ELet):
                env.bind(e.name, self.eval_bind(e.bind, env))
                e = e.body
            elif isinstance(e, S.ELetRec):
                for name, lam in e.bindings:
                    env.bind(name, Closure(lam.param, lam.body, env, name=name))
                e = e.body
            elif isinstance(e, S.ERet):
                return self.atom(e.atom, env)
            else:
                raise AssertionError(f"unknown expr {e!r}")

    def eval_bind(self, b: S.Bind, env: Env) -> Any:
        if isinstance(b, S.BAtom):
            return self.atom(b.atom, env)
        if isinstance(b, S.BPrim):
            return eval_prim(b.op, [self.atom(a, env) for a in b.args])
        if isinstance(b, S.BApp):
            return self.apply(self.atom(b.fn, env), self.atom(b.arg, env))
        if isinstance(b, S.BMemoApp):
            fn = self.atom(b.fn, env)
            arg = self.atom(b.arg, env)
            key = (memo_key(fn), memo_key(arg))
            return self.engine.memo(key, lambda: self.apply(fn, arg))
        if isinstance(b, S.BTuple):
            return tuple(self.atom(a, env) for a in b.items)
        if isinstance(b, S.BProj):
            return self.atom(b.arg, env)[b.index - 1]
        if isinstance(b, S.BCon):
            if b.args:
                return ConValue(b.tag, self.atom(b.args[0], env))
            return ConValue(b.tag)
        if isinstance(b, S.BLam):
            return Closure(b.param, b.body, env, name=b.name_hint)
        if isinstance(b, S.BIf):
            cond = self.atom(b.cond, env)
            return self.eval(b.then if cond else b.els, Env(env))
        if isinstance(b, S.BCase):
            scrut = self.atom(b.scrut, env)
            tag_map = b.tag_map
            if tag_map is not None:
                clause = tag_map.get(scrut.tag)
            else:  # un-indexed (hand-built) AST: linear clause scan
                clause = None
                for candidate in b.clauses:
                    if candidate.tag == scrut.tag:
                        clause = candidate
                        break
            if clause is not None:
                inner = Env(env)
                if clause.binder is not None:
                    inner.bind(clause.binder, scrut.arg)
                return self.eval(clause.body, inner)
            if b.default is not None:
                return self.eval(b.default, Env(env))
            raise MatchFailure(f"no clause for {scrut.tag}")
        if isinstance(b, S.BMod):
            return self.engine.mod(
                lambda dest, body=b.body, env=Env(env): self.ceval(body, env, dest)
            )
        if isinstance(b, S.BAssign):
            cell = self.atom(b.ref, env)
            if not isinstance(cell, Modifiable):
                raise LmlRuntimeError("assignment to a non-modifiable")
            self.engine.impwrite(cell, self.atom(b.value, env))
            return ()
        if isinstance(b, S.BAscribe):
            return self.atom(b.atom, env)
        if isinstance(b, S.BMatchFail):
            raise MatchFailure("inexhaustive match")
        # BRef / BDeref never survive translation (they become mod/aliases).
        raise AssertionError(f"unexpected bind in translated code: {b!r}")

    # ------------------------------------------------------------------
    # Changeable mode

    def ceval(self, e: S.CExpr, env: Env, dest: Modifiable) -> None:
        engine = self.engine
        while True:
            if isinstance(e, S.CWrite):
                engine.write(dest, self.atom(e.atom, env))
                return
            if isinstance(e, S.CRead):
                src = self.atom(e.src, env)
                if not isinstance(src, Modifiable):
                    raise LmlRuntimeError(
                        f"read of a non-modifiable value: {src!r}"
                    )

                def reader(value, body=e.body, env=env, binder=e.binder, dest=dest):
                    inner = Env(env)
                    inner.bind(binder, value)
                    self.ceval(body, inner, dest)

                engine.read(src, reader)
                return
            if isinstance(e, S.CLet):
                env.bind(e.name, self.eval_bind(e.bind, env))
                e = e.body
            elif isinstance(e, S.CLetRec):
                for name, lam in e.bindings:
                    env.bind(name, Closure(lam.param, lam.body, env, name=name))
                e = e.body
            elif isinstance(e, S.CIf):
                cond = self.atom(e.cond, env)
                env = Env(env)
                e = e.then if cond else e.els
            elif isinstance(e, S.CCase):
                scrut = self.atom(e.scrut, env)
                tag_map = e.tag_map
                if tag_map is not None:
                    chosen = tag_map.get(scrut.tag)
                else:  # un-indexed (hand-built) AST: linear clause scan
                    chosen = None
                    for clause in e.clauses:
                        if clause.tag == scrut.tag:
                            chosen = clause
                            break
                if chosen is not None:
                    env = Env(env)
                    if chosen.binder is not None:
                        env.bind(chosen.binder, scrut.arg)
                    e = chosen.body
                elif e.default is not None:
                    env = Env(env)
                    e = e.default
                else:
                    raise MatchFailure(f"no clause for {scrut.tag}")
            elif isinstance(e, S.CCaseConst):
                scrut = self.atom(e.scrut, env)
                arm_map = e.arm_map
                if arm_map is not None:
                    target = arm_map.get((type(scrut), scrut))
                else:  # un-indexed (hand-built) AST: linear arm scan
                    target = None
                    for value, body in e.arms:
                        if value == scrut and type(value) is type(scrut):
                            target = body
                            break
                if target is None:
                    if e.default is None:
                        raise MatchFailure(f"no arm for {scrut!r}")
                    target = e.default
                env = Env(env)
                e = target
            elif isinstance(e, S.CImpWrite):
                cell = self.atom(e.ref, env)
                engine.impwrite(cell, self.atom(e.value, env))
                e = e.body
            else:
                raise AssertionError(f"unknown cexpr {e!r}")
