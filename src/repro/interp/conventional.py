"""The conventional interpreter: runs pre-translation SXML.

This is the paper's reference executable ("Conv. Run" in Table 1): it
executes the same monomorphic A-normal-form program as the self-adjusting
version, but with no dependence tracking at all -- references are plain
cells, levels are ignored, ``$C`` data is ordinary data.
"""

from __future__ import annotations

from typing import Any

from repro.core import sxml as S
from repro.interp.builtins import BUILTIN_IMPLS, BuiltinFn, eval_prim
from repro.interp.values import (
    Closure,
    ConValue,
    Env,
    LmlRuntimeError,
    MatchFailure,
    RefCell,
)


class ConventionalInterpreter:
    """Evaluates conventional SXML expressions."""

    def run(self, expr: S.Expr) -> Any:
        """Evaluate a whole program body; returns its value (e.g. ``main``)."""
        return self.eval(expr, Env())

    # ------------------------------------------------------------------

    def apply(self, fn: Any, arg: Any) -> Any:
        if isinstance(fn, Closure):
            env = Env(fn.env)
            env.bind(fn.param, arg)
            return self.eval(fn.body, env)
        if isinstance(fn, BuiltinFn):
            return fn.fn(self, arg)
        raise LmlRuntimeError(f"application of non-function {fn!r}")

    def atom(self, a: S.Atom, env: Env) -> Any:
        if isinstance(a, S.AVar):
            if a.is_builtin:
                return BUILTIN_IMPLS[a.name]
            return env.lookup(a.name)
        return a.value

    # ------------------------------------------------------------------

    def eval(self, e: S.Expr, env: Env) -> Any:
        while True:
            if isinstance(e, S.ELet):
                env.bind(e.name, self.eval_bind(e.bind, env))
                e = e.body
            elif isinstance(e, S.ELetRec):
                for name, lam in e.bindings:
                    env.bind(name, Closure(lam.param, lam.body, env, name=name))
                e = e.body
            elif isinstance(e, S.ERet):
                return self.atom(e.atom, env)
            else:
                raise AssertionError(f"unknown expr {e!r}")

    def eval_bind(self, b: S.Bind, env: Env) -> Any:
        if isinstance(b, S.BAtom):
            return self.atom(b.atom, env)
        if isinstance(b, S.BPrim):
            return eval_prim(b.op, [self.atom(a, env) for a in b.args])
        if isinstance(b, S.BApp):
            return self.apply(self.atom(b.fn, env), self.atom(b.arg, env))
        if isinstance(b, S.BTuple):
            return tuple(self.atom(a, env) for a in b.items)
        if isinstance(b, S.BProj):
            return self.atom(b.arg, env)[b.index - 1]
        if isinstance(b, S.BCon):
            if b.args:
                return ConValue(b.tag, self.atom(b.args[0], env))
            return ConValue(b.tag)
        if isinstance(b, S.BLam):
            return Closure(b.param, b.body, env, name=b.name_hint)
        if isinstance(b, S.BIf):
            cond = self.atom(b.cond, env)
            return self.eval(b.then if cond else b.els, Env(env))
        if isinstance(b, S.BCase):
            scrut = self.atom(b.scrut, env)
            if not isinstance(scrut, ConValue):
                raise LmlRuntimeError(f"case on non-constructor {scrut!r}")
            tag_map = b.tag_map
            if tag_map is not None:
                clause = tag_map.get(scrut.tag)
            else:  # un-indexed (hand-built) AST: linear clause scan
                clause = None
                for candidate in b.clauses:
                    if candidate.tag == scrut.tag:
                        clause = candidate
                        break
            if clause is not None:
                inner = Env(env)
                if clause.binder is not None:
                    inner.bind(clause.binder, scrut.arg)
                return self.eval(clause.body, inner)
            if b.default is not None:
                return self.eval(b.default, Env(env))
            raise MatchFailure(f"no clause for {scrut.tag}")
        if isinstance(b, S.BRef):
            return RefCell(self.atom(b.arg, env))
        if isinstance(b, S.BDeref):
            cell = self.atom(b.arg, env)
            return cell.value
        if isinstance(b, S.BAssign):
            cell = self.atom(b.ref, env)
            cell.value = self.atom(b.value, env)
            return ()
        if isinstance(b, S.BAscribe):
            return self.atom(b.atom, env)
        if isinstance(b, S.BMatchFail):
            raise MatchFailure("inexhaustive match")
        raise AssertionError(f"unexpected bind in conventional code: {b!r}")
