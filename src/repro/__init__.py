"""repro: a reproduction of "Type-Directed Automatic Incrementalization"
(Chen, Dunfield, Acar -- PLDI 2012).

The package provides:

* :mod:`repro.lang` + :mod:`repro.core` -- the LML language and compiler:
  Standard-ML-like programs annotated with the ``$C`` level qualifier are
  compiled, via a type-directed translation, into self-adjusting programs;
* :mod:`repro.sac` -- the self-adjusting computation runtime (modifiables,
  dynamic dependence graph, memoization, change propagation), also usable
  directly from Python as an AFL-style library;
* :mod:`repro.interp` -- the conventional and self-adjusting executables
  (interpreters) plus input marshalling and change handles;
* :mod:`repro.apps` -- the paper's benchmarks (lists, vectors, matrices,
  blocked matrices, and a ray tracer) written in LML;
* :mod:`repro.bench` -- the measurement harness regenerating the paper's
  tables and figures;
* :mod:`repro.api` -- the unified host API: :class:`repro.api.Session`
  plus the verification and measurement drivers built on it.

Quickstart::

    from repro import Session
    from repro.interp.values import list_value_to_python

    source = '''
    datatype cell = Nil | Cons of int * cell $C
    fun double l =
      case l of Nil => Nil | Cons (h, t) => Cons (2 * h, double t)
    val main : cell $C -> cell $C = double
    '''
    session = Session(source)
    xs = session.input_list([1, 2, 3])
    out = session.run(xs.head)
    assert list_value_to_python(out) == [2, 4, 6]
    with session.batch():       # edits coalesce; one propagation at exit
        xs.insert(1, 10)
        xs.set(0, 5)
    assert list_value_to_python(out) == [10, 20, 4, 6]
"""

from repro.core.pipeline import CompiledProgram, compile_program
from repro.sac.engine import Engine
from repro.api import Session

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "Engine",
    "Session",
    "compile_program",
    "__version__",
]
