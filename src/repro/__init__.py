"""repro: a reproduction of "Type-Directed Automatic Incrementalization"
(Chen, Dunfield, Acar -- PLDI 2012).

The package provides:

* :mod:`repro.lang` + :mod:`repro.core` -- the LML language and compiler:
  Standard-ML-like programs annotated with the ``$C`` level qualifier are
  compiled, via a type-directed translation, into self-adjusting programs;
* :mod:`repro.sac` -- the self-adjusting computation runtime (modifiables,
  dynamic dependence graph, memoization, change propagation), also usable
  directly from Python as an AFL-style library;
* :mod:`repro.interp` -- the conventional and self-adjusting executables
  (interpreters) plus input marshalling and change handles;
* :mod:`repro.apps` -- the paper's benchmarks (lists, vectors, matrices,
  blocked matrices, and a ray tracer) written in LML;
* :mod:`repro.bench` -- the measurement harness regenerating the paper's
  tables and figures;
* :mod:`repro.testing` -- the random-change verification framework.

Quickstart::

    from repro import compile_program
    from repro.interp.marshal import ModListInput
    from repro.interp.values import list_value_to_python

    source = '''
    datatype cell = Nil | Cons of int * cell $C
    fun double l =
      case l of Nil => Nil | Cons (h, t) => Cons (2 * h, double t)
    val main : cell $C -> cell $C = double
    '''
    program = compile_program(source)
    instance = program.self_adjusting_instance()
    xs = ModListInput(instance.engine, [1, 2, 3])
    out = instance.apply(xs.head)
    assert list_value_to_python(out) == [2, 4, 6]
    xs.insert(1, 10)
    instance.propagate()
    assert list_value_to_python(out) == [2, 20, 4, 6]
"""

from repro.core.pipeline import CompiledProgram, compile_program
from repro.sac.engine import Engine

__version__ = "1.0.0"

__all__ = ["CompiledProgram", "Engine", "compile_program", "__version__"]
