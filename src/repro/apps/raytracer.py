"""The ray tracer benchmark (paper Section 4.7).

A sphere/plane ray tracer supporting point and directional lights and
diffuse, specular, reflective, and transparent surface properties --
the feature set of the off-the-shelf tracer the paper uses (King 1998).

The *surfaces* of objects are changeable (``surface $C``); geometry,
lights, and image size are stable.  A surface modifiable may be shared by
several objects (the paper's surface sets A-G), so one ``change`` toggles
a whole group.  Change propagation re-executes exactly the shading
computations (including shadow tests and recursive reflection rays) of the
pixels whose rays touched the changed surface.

The scene mirrors the paper's: 3 light sources and 19 objects (one ground
plane plus 18 spheres in seven surface groups A-G).  Images are
``size x size``; the paper renders 512x512, we default much smaller since
we interpret rather than compile to native code (DESIGN.md Section 2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.base import App
from repro.interp.values import ConValue, deep_read
from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable

RAYTRACER_SOURCE = """
datatype color = RGB of real * real * real
datatype surface = Surface of real * real * real * real * real * real * real
datatype object =
    Sphere of (real * real * real) * real * surface $C
  | Plane of (real * real * real) * real * surface $C
datatype light =
    PointL of (real * real * real) * (real * real * real)
  | DirL of (real * real * real) * (real * real * real)
datatype olist = ONil | OCons of object * olist
datatype llist = LNil | LCons of light * llist
datatype hit = NoHit | Hit of real * object

fun vplus ((ax, ay, az), (bx, by, bz)) : real * real * real =
  (ax + bx, ay + by, az + bz)
fun vminus ((ax, ay, az), (bx, by, bz)) : real * real * real =
  (ax - bx, ay - by, az - bz)
fun vscale ((ax, ay, az), k) : real * real * real = (ax * k, ay * k, az * k)
fun vdot ((ax, ay, az), (bx, by, bz)) : real = ax * bx + ay * by + az * bz
fun vlen v = sqrt (vdot (v, v))
fun vunit v = vscale (v, 1.0 / vlen v)

fun isect (ob, orig, dir) =
  case ob of
    Sphere (c, r, sf) =>
      let
        val oc = vminus (orig, c)
        val b = vdot (oc, dir)
        val disc = b * b - (vdot (oc, oc) - r * r)
      in
        if disc < 0.0 then ~1.0
        else
          let
            val sq = sqrt disc
            val t1 = ~b - sq
          in
            if t1 > 0.0001 then t1 else ~b + sq
          end
      end
  | Plane (n, d, sf) =>
      let val denom = vdot (n, dir) in
        if denom < 0.00000001 andalso denom > ~0.00000001 then ~1.0
        else (d - vdot (n, orig)) / denom
      end

fun nearest (objs, orig, dir) =
  case objs of
    ONil => NoHit
  | OCons (ob, rest) =>
      let
        val t = isect (ob, orig, dir)
        val best = nearest (rest, orig, dir)
      in
        if t < 0.0001 then best
        else
          case best of
            NoHit => Hit (t, ob)
          | Hit (tb, ob2) => if t < tb then Hit (t, ob) else best
      end

fun blocked (objs, orig, dir, maxt) =
  case objs of
    ONil => false
  | OCons (ob, rest) =>
      let val t = isect (ob, orig, dir) in
        if t > 0.0001 andalso t < maxt then true
        else blocked (rest, orig, dir, maxt)
      end

fun lightsum (lights, objs, point, norm, vdir, kd, ks) =
  case lights of
    LNil => (0.0, 0.0, 0.0)
  | LCons (lg, rest) =>
      let
        val acc = lightsum (rest, objs, point, norm, vdir, kd, ks)
        val (ldir, dist, intens) =
          case lg of
            PointL (pos, i) =>
              let val d = vminus (pos, point) in (vunit d, vlen d, i) end
          | DirL (dir2, i) => (vunit (vscale (dir2, ~1.0)), 1000000.0, i)
        val c = vdot (norm, ldir)
      in
        if c <= 0.0 then acc
        else if blocked (objs, point, ldir, dist) then acc
        else
          let
            val h = vunit (vminus (ldir, vdir))
            val spec = vdot (norm, h)
            val sp = if spec > 0.0 then ks * rpow (spec, 8.0) else 0.0
          in
            vplus (acc, vplus (vscale (intens, kd * c), vscale (intens, sp)))
          end
      end

fun trace (objs, lights, orig, dir, depth) =
  case nearest (objs, orig, dir) of
    NoHit => RGB (0.1, 0.1, 0.2)
  | Hit (t, ob) =>
      let
        val point = vplus (orig, vscale (dir, t))
        val (norm0, s) =
          case ob of
            Sphere (c, r, sf) => (vunit (vminus (point, c)), sf)
          | Plane (n, d, sf) => (n, sf)
        val norm =
          if vdot (norm0, dir) > 0.0 then vscale (norm0, ~1.0) else norm0
      in
        case s of
          Surface (cr, cg, cb, kd, ks, kr, kt) =>
            let
              val (lr, lg, lb) = lightsum (lights, objs, point, norm, dir, kd, ks)
              val br = cr * (0.1 + lr)
              val bg = cg * (0.1 + lg)
              val bb = cb * (0.1 + lb)
              val (rr, rg, rb) =
                if kr > 0.0 andalso depth > 0 then
                  let
                    val rdir = vunit (vminus (dir, vscale (norm, 2.0 * vdot (dir, norm))))
                  in
                    case trace (objs, lights, point, rdir, depth - 1) of
                      RGB (x, y, z) => (kr * x, kr * y, kr * z)
                  end
                else (0.0, 0.0, 0.0)
              val (tr, tg, tb) =
                if kt > 0.0 andalso depth > 0 then
                  case trace (objs, lights, vplus (point, vscale (dir, 0.001)), dir, depth - 1) of
                    RGB (x, y, z) => (kt * x, kt * y, kt * z)
                else (0.0, 0.0, 0.0)
            in
              RGB (br + rr + tr, bg + rg + tg, bb + rb + tb)
            end
      end

val main : (olist * llist * int) -> ((color $C) vector) vector =
  fn (objs, lights, size) =>
    vtabulate (size, fn py =>
      vtabulate (size, fn px =>
        let
          val fx = (toReal px + 0.5) / toReal size - 0.5
          val fy = 0.5 - (toReal py + 0.5) / toReal size
          val dir = vunit (fx, fy, 1.0)
        in
          trace (objs, lights, (0.0, 0.0, ~3.0), dir, 3)
        end))
"""


# ----------------------------------------------------------------------
# Surface presets (mirroring the paper's change kinds: color changes and
# diffuse <-> mirror toggles)


def diffuse_surface(rgb: Tuple[float, float, float]) -> tuple:
    cr, cg, cb = rgb
    return (cr, cg, cb, 0.9, 0.2, 0.0, 0.0)


def mirror_surface(rgb: Tuple[float, float, float]) -> tuple:
    cr, cg, cb = rgb
    return (cr, cg, cb, 0.3, 0.5, 0.7, 0.0)


def glass_surface(rgb: Tuple[float, float, float]) -> tuple:
    cr, cg, cb = rgb
    return (cr, cg, cb, 0.2, 0.3, 0.0, 0.7)


#: Surface groups A..G with member sphere counts summing to 18.
GROUP_SIZES = {"A": 4, "B": 3, "C": 3, "D": 2, "E": 2, "F": 2, "G": 2}
GROUP_COLORS = {
    "A": (0.2, 0.8, 0.2),
    "B": (0.8, 0.2, 0.2),
    "C": (0.2, 0.3, 0.9),
    "D": (0.9, 0.8, 0.1),
    "E": (0.7, 0.3, 0.8),
    "F": (0.2, 0.8, 0.8),
    "G": (0.9, 0.5, 0.2),
}
GROUPS = list(GROUP_SIZES)


@dataclass
class SceneDescription:
    """Host-side scene: geometry plus per-group surface tuples."""

    spheres: List[Tuple[Tuple[float, float, float], float, str]]
    plane: Tuple[Tuple[float, float, float], float]
    lights: List[tuple]
    surfaces: Dict[str, tuple]
    plane_surface: tuple
    size: int

    def copy(self) -> "SceneDescription":
        return SceneDescription(
            spheres=list(self.spheres),
            plane=self.plane,
            lights=list(self.lights),
            surfaces=dict(self.surfaces),
            plane_surface=self.plane_surface,
            size=self.size,
        )


#: Sphere placements per group: (center, radius) lists.  Group A (the
#: paper's "four green balls") sits front and large; later groups shrink
#: and recede, giving a spread of affected-pixel fractions like Table 2's.
_PLACEMENTS = {
    "A": [((-0.9, -0.3, 2.0), 0.75), ((0.9, -0.3, 2.0), 0.75),
          ((-0.35, 0.45, 2.3), 0.6), ((0.35, 0.45, 2.3), 0.6)],
    "B": [((-2.0, 0.1, 2.6), 0.62), ((-1.6, 1.0, 2.9), 0.5),
          ((-2.3, -0.7, 2.2), 0.45)],
    "C": [((2.0, 0.1, 2.6), 0.62), ((1.6, 1.0, 2.9), 0.5),
          ((2.3, -0.7, 2.2), 0.45)],
    "D": [((-0.5, 1.4, 3.4), 0.42), ((0.5, 1.4, 3.4), 0.42)],
    "E": [((-1.1, -0.85, 1.6), 0.33), ((1.1, -0.85, 1.6), 0.33)],
    "F": [((-0.9, 1.9, 4.2), 0.55), ((0.9, 1.9, 4.2), 0.55)],
    "G": [((0.0, 1.1, 4.8), 0.8), ((0.0, -0.6, 4.6), 0.7)],
}


def standard_scene(size: int) -> SceneDescription:
    """The paper's scene shape: 3 lights, 1 plane + 18 spheres in groups."""
    spheres = []
    for group in GROUPS:
        for center, radius in _PLACEMENTS[group]:
            spheres.append((center, radius, group))
    lights = [
        ("point", (3.0, 4.0, -2.0), (0.7, 0.7, 0.7)),
        ("point", (-3.0, 3.0, -1.0), (0.4, 0.4, 0.5)),
        ("dir", (0.0, -1.0, 0.5), (0.25, 0.25, 0.2)),
    ]
    surfaces = {g: diffuse_surface(GROUP_COLORS[g]) for g in GROUPS}
    surfaces["A"] = mirror_surface(GROUP_COLORS["A"])
    return SceneDescription(
        spheres=spheres,
        plane=((0.0, 1.0, 0.0), -1.0),
        lights=lights,
        surfaces=surfaces,
        plane_surface=diffuse_surface((0.7, 0.7, 0.7)),
        size=size,
    )


# ----------------------------------------------------------------------
# Marshalling


def _lml_lights(lights: Sequence[tuple]) -> ConValue:
    value = ConValue("LNil")
    for kind, a, b in reversed(list(lights)):
        tag = "PointL" if kind == "point" else "DirL"
        value = ConValue("LCons", (ConValue(tag, (a, b)), value))
    return value


class SceneInput:
    """Builds the LML scene value with one shared surface mod per group."""

    def __init__(self, engine: Optional[Engine], scene: SceneDescription) -> None:
        self.engine = engine
        self.scene = scene.copy()
        self.group_mods: Dict[str, Modifiable] = {}

        def surf_value(data: tuple):
            return ConValue("Surface", tuple(data))

        def boxed(group: str):
            if engine is None:
                return surf_value(self.scene.surfaces[group])
            if group not in self.group_mods:
                self.group_mods[group] = engine.make_input(
                    surf_value(self.scene.surfaces[group])
                )
            return self.group_mods[group]

        objs = ConValue("ONil")
        plane_surf = (
            surf_value(self.scene.plane_surface)
            if engine is None
            else engine.make_input(surf_value(self.scene.plane_surface))
        )
        objs = ConValue(
            "OCons",
            (ConValue("Plane", (self.scene.plane[0], self.scene.plane[1], plane_surf)), objs),
        )
        for center, radius, group in reversed(self.scene.spheres):
            sphere = ConValue("Sphere", (center, radius, boxed(group)))
            objs = ConValue("OCons", (sphere, objs))
        self.value = (objs, _lml_lights(self.scene.lights), self.scene.size)

    # -- changes ----------------------------------------------------------

    def set_group(self, group: str, surface: tuple) -> None:
        self.scene.surfaces[group] = surface
        if self.engine is not None:
            self.engine.change(self.group_mods[group], ConValue("Surface", surface))

    def toggle(self, group: str) -> str:
        """Toggle a group between diffuse and mirror; returns the new kind."""
        current = self.scene.surfaces[group]
        color = current[:3]
        if current[5] > 0.0:  # currently reflective -> diffuse
            self.set_group(group, diffuse_surface(color))
            return "diffuse"
        self.set_group(group, mirror_surface(color))
        return "mirror"

    def data(self) -> SceneDescription:
        return self.scene.copy()


# ----------------------------------------------------------------------
# Python reference tracer (Section 4.3 verifier) -- mirrors the LML code
# operation for operation, including float association.

_EPS = 0.0001
_BG = (0.1, 0.1, 0.2)


def _vplus(a, b):
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def _vminus(a, b):
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def _vscale(a, k):
    return (a[0] * k, a[1] * k, a[2] * k)


def _vdot(a, b):
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def _vunit(v):
    return _vscale(v, 1.0 / math.sqrt(_vdot(v, v)))


def _isect(obj, orig, direction):
    kind = obj[0]
    if kind == "sphere":
        _, center, radius = obj[:3]
        oc = _vminus(orig, center)
        b = _vdot(oc, direction)
        disc = b * b - (_vdot(oc, oc) - radius * radius)
        if disc < 0.0:
            return -1.0
        sq = math.sqrt(disc)
        t1 = -b - sq
        return t1 if t1 > _EPS else -b + sq
    _, n, d = obj[:3]
    denom = _vdot(n, direction)
    if -1e-8 < denom < 1e-8:
        return -1.0
    return (d - _vdot(n, orig)) / denom


def _nearest(objs, orig, direction):
    best = None
    # Mirror the LML recursion: later objects (deeper recursion) computed
    # first; an earlier object replaces the best only when strictly closer.
    for obj in reversed(objs):
        t = _isect(obj, orig, direction)
        if t < _EPS:
            continue
        if best is None or t < best[0]:
            best = (t, obj)
    return best


def _blocked(objs, orig, direction, maxt):
    return any(
        _EPS < _isect(obj, orig, direction) < maxt for obj in objs
    )


def _lightsum(lights, objs, point, norm, vdir, kd, ks):
    acc = (0.0, 0.0, 0.0)
    for kind, a, intens in reversed(list(lights)):
        if kind == "point":
            d = _vminus(a, point)
            dist = math.sqrt(_vdot(d, d))
            ldir = _vunit(d)
        else:
            ldir = _vunit(_vscale(a, -1.0))
            dist = 1000000.0
        c = _vdot(norm, ldir)
        if c <= 0.0:
            continue
        if _blocked(objs, point, ldir, dist):
            continue
        h = _vunit(_vminus(ldir, vdir))
        spec = _vdot(norm, h)
        sp = ks * math.pow(spec, 8.0) if spec > 0.0 else 0.0
        acc = _vplus(acc, _vplus(_vscale(intens, kd * c), _vscale(intens, sp)))
    return acc


def _trace(objs, lights, surfaces, orig, direction, depth):
    hit = _nearest(objs, orig, direction)
    if hit is None:
        return _BG
    t, obj = hit
    point = _vplus(orig, _vscale(direction, t))
    if obj[0] == "sphere":
        norm = _vunit(_vminus(point, obj[1]))
    else:
        norm = obj[1]
    if _vdot(norm, direction) > 0.0:
        norm = _vscale(norm, -1.0)
    cr, cg, cb, kd, ks, kr, kt = surfaces[obj[3]]
    lr, lg, lb = _lightsum(lights, objs, point, norm, direction, kd, ks)
    base = (cr * (0.1 + lr), cg * (0.1 + lg), cb * (0.1 + lb))
    refl = (0.0, 0.0, 0.0)
    if kr > 0.0 and depth > 0:
        rdir = _vunit(_vminus(direction, _vscale(norm, 2.0 * _vdot(direction, norm))))
        refl = _vscale(_trace(objs, lights, surfaces, point, rdir, depth - 1), kr)
    tran = (0.0, 0.0, 0.0)
    if kt > 0.0 and depth > 0:
        tran = _vscale(
            _trace(
                objs, lights, surfaces,
                _vplus(point, _vscale(direction, 0.001)), direction, depth - 1,
            ),
            kt,
        )
    return (
        base[0] + refl[0] + tran[0],
        base[1] + refl[1] + tran[1],
        base[2] + refl[2] + tran[2],
    )


def reference_render(scene: SceneDescription) -> List[List[tuple]]:
    """Render the scene with the pure-Python reference tracer."""
    objs = [("plane", scene.plane[0], scene.plane[1], "__plane__")]
    for center, radius, group in scene.spheres:
        objs.append(("sphere", center, radius, group))
    # The LML object list is plane first then spheres (construction order).
    surfaces = dict(scene.surfaces)
    surfaces["__plane__"] = scene.plane_surface
    size = scene.size
    image = []
    for py in range(size):
        row = []
        for px in range(size):
            fx = (px + 0.5) / size - 0.5
            fy = 0.5 - (py + 0.5) / size
            direction = _vunit((fx, fy, 1.0))
            row.append(
                _trace(objs, scene.lights, surfaces, (0.0, 0.0, -3.0), direction, 3)
            )
        image.append(row)
    return image


# ----------------------------------------------------------------------
# App wiring


def readback_image(output) -> List[List[tuple]]:
    """Runtime image value -> rows of (r, g, b) tuples."""
    raw = deep_read(output)
    return [[pixel[1] for pixel in row] for row in raw]


def image_diff_fraction(a, b) -> float:
    """Fraction of pixels that differ between two images."""
    total = 0
    changed = 0
    for ra, rb in zip(a, b):
        for pa, pb in zip(ra, rb):
            total += 1
            if any(abs(x - y) > 1e-12 for x, y in zip(pa, pb)):
                changed += 1
    return changed / total if total else 0.0


def _ray_change(handle: SceneInput, rng: random.Random, step: int) -> None:
    handle.toggle(rng.choice(GROUPS))


def make_app() -> App:
    def make_data(n: int, rng: random.Random) -> SceneDescription:
        return standard_scene(n)

    def make_sa_input(engine: Engine, scene: SceneDescription):
        handle = SceneInput(engine, scene)
        return handle.value, handle

    def make_conv_input(scene: SceneDescription):
        return SceneInput(None, scene).value

    return App(
        name="raytracer",
        source=RAYTRACER_SOURCE,
        make_data=make_data,
        make_sa_input=make_sa_input,
        make_conv_input=make_conv_input,
        apply_change=_ray_change,
        reference=reference_render,
        readback=readback_image,
        handle_data=lambda handle: handle.data(),
    )
