"""Vector benchmarks: vec-reduce, vec-mult, mat-vec-mult (Section 4.1).

The inputs are vectors (and matrices) of changeable double-precision
reals: ``(real $C) vector``.  The incremental change replaces one element
with a fresh random value.  Multiplication is the paper's normalized form
``(x*y)/(x+y)`` (Section 4.1: "we normalize the result by their sum to
prevent overflows"); inputs are drawn from [0.5, 1.5) so the denominator
never vanishes.

``vreduce`` is balanced divide-and-conquer, so one element change
re-executes O(log n) combine reads.
"""

from __future__ import annotations

import random
from typing import Any, List

from repro.apps.base import App, nmul, random_real_matrix, random_reals
from repro.interp.marshal import ModMatrixInput, ModVectorInput
from repro.interp.values import deep_read
from repro.sac.engine import Engine

VEC_REDUCE_SOURCE = """
val main : (real $C) vector -> real $C =
  fn v => vreduce (v, 0.0, fn (x, y) => x + y)
"""

VEC_MULT_SOURCE = """
fun nmul (x, y) = (x * y) / (x + y)

val main : ((real $C) vector * (real $C) vector) -> real $C =
  fn (a, b) => vreduce (vmap2 (a, b, nmul), 0.0, fn (x, y) => x + y)
"""

MAT_VEC_MULT_SOURCE = """
type matrix = ((real $C) vector) vector

fun nmul (x, y) = (x * y) / (x + y)

fun dot (a, b) = vreduce (vmap2 (a, b, nmul), 0.0, fn (x, y) => x + y)

val main : (matrix * (real $C) vector) -> (real $C) vector =
  fn (m, v) => vmap (m, fn row => dot (row, v))
"""


# ----------------------------------------------------------------------
# References (must mirror the balanced reduction's float association)


def tree_sum(values: List[float]) -> float:
    """Sum with the same balanced association as the ``vreduce`` builtin."""
    if not values:
        return 0.0

    def go(lo: int, hi: int) -> float:
        if hi - lo == 1:
            return values[lo]
        mid = (lo + hi) // 2
        return go(lo, mid) + go(mid, hi)

    return go(0, len(values))


def ref_vec_reduce(v: List[float]) -> float:
    return tree_sum(v)


def ref_vec_mult(data) -> float:
    a, b = data
    return tree_sum([nmul(x, y) for x, y in zip(a, b)])


def ref_mat_vec_mult(data) -> List[float]:
    m, v = data
    return [tree_sum([nmul(x, y) for x, y in zip(row, v)]) for row in m]


# ----------------------------------------------------------------------
# Harness plumbing


def _vec_change(handle: ModVectorInput, rng: random.Random, step: int) -> None:
    handle.set(rng.randrange(len(handle)), 0.5 + rng.random())


class _PairHandle:
    """Change handle over a pair of vector inputs (vec-mult)."""

    def __init__(self, a: ModVectorInput, b: ModVectorInput) -> None:
        self.a = a
        self.b = b

    def data(self):
        return (self.a.to_python(), self.b.to_python())


def _pair_change(handle: _PairHandle, rng: random.Random, step: int) -> None:
    target = handle.a if step % 2 == 0 else handle.b
    target.set(rng.randrange(len(target)), 0.5 + rng.random())


class _MatVecHandle:
    def __init__(self, m: ModMatrixInput, v: ModVectorInput) -> None:
        self.m = m
        self.v = v

    def data(self):
        return (self.m.to_python(), self.v.to_python())


def _mat_vec_change(handle: _MatVecHandle, rng: random.Random, step: int) -> None:
    rows, cols = handle.m.shape
    if step % 2 == 0:
        handle.m.set(rng.randrange(rows), rng.randrange(cols), 0.5 + rng.random())
    else:
        handle.v.set(rng.randrange(len(handle.v)), 0.5 + rng.random())


def make_apps() -> dict:
    def sa_vec(engine: Engine, data):
        handle = ModVectorInput(engine, data)
        return handle.value, handle

    vec_reduce = App(
        name="vec-reduce",
        source=VEC_REDUCE_SOURCE,
        make_data=random_reals,
        make_sa_input=sa_vec,
        make_conv_input=lambda data: tuple(data),
        apply_change=_vec_change,
        reference=ref_vec_reduce,
        readback=deep_read,
        handle_data=lambda handle: handle.to_python(),
    )

    def sa_pair(engine: Engine, data):
        a, b = data
        ha, hb = ModVectorInput(engine, a), ModVectorInput(engine, b)
        handle = _PairHandle(ha, hb)
        return (ha.value, hb.value), handle

    vec_mult = App(
        name="vec-mult",
        source=VEC_MULT_SOURCE,
        make_data=lambda n, rng: (random_reals(n, rng), random_reals(n, rng)),
        make_sa_input=sa_pair,
        make_conv_input=lambda data: (tuple(data[0]), tuple(data[1])),
        apply_change=_pair_change,
        reference=ref_vec_mult,
        readback=deep_read,
        handle_data=lambda handle: handle.data(),
    )

    def sa_mat_vec(engine: Engine, data):
        m, v = data
        hm, hv = ModMatrixInput(engine, m), ModVectorInput(engine, v)
        handle = _MatVecHandle(hm, hv)
        return (hm.value, hv.value), handle

    mat_vec_mult = App(
        name="mat-vec-mult",
        source=MAT_VEC_MULT_SOURCE,
        make_data=lambda n, rng: (random_real_matrix(n, rng), random_reals(n, rng)),
        make_sa_input=sa_mat_vec,
        make_conv_input=lambda data: (
            tuple(tuple(row) for row in data[0]),
            tuple(data[1]),
        ),
        apply_change=_mat_vec_change,
        reference=ref_mat_vec_mult,
        readback=lambda out: list(deep_read(out)),
        handle_data=lambda handle: handle.data(),
    )

    return {
        "vec-reduce": vec_reduce,
        "vec-mult": vec_mult,
        "mat-vec-mult": mat_vec_mult,
    }
