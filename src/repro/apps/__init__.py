"""The paper's benchmark applications, written in LML.

Each application bundles (paper Section 4.1):

* the LML source (conventional code + the one-or-two-line ``$C``
  annotations);
* an input generator (random permutations for integer benchmarks, random
  reals for floating-point ones, Section 4.2);
* a change driver performing the paper's incremental change (insert/delete
  an element for lists; replace an element for vectors/matrices; rewrite a
  block for blocked matrices; toggle a surface for the ray tracer);
* a pure-Python reference implementation (the verifier of Section 4.3).
"""

from repro.apps.registry import REGISTRY, get_app

__all__ = ["REGISTRY", "get_app"]
