"""Matrix benchmarks: mat-add, transpose, mat-mult, block-mat-mult.

Two representations, chosen purely through type annotations (the paper's
Sections 2.3-2.4 and 4.6):

* element-granular -- ``((real $C) vector) vector``: any element can change
  independently; mat-mult then tracks every scalar product;
* block-granular -- ``((block $C) vector) vector`` where a block is a plain
  sub-matrix wrapped in a single-constructor datatype: a whole block is one
  modifiable, so tracking is per block (fewer modifiables, cheaper complete
  runs, coarser propagation).

The single-constructor ``Block`` datatype gives the block functions an
explicit elimination point (``case b of Block raw => ...``), which is where
the translation inserts the read of the block modifiable.
"""

from __future__ import annotations

import random
from typing import Any, List

from repro.apps.base import App, nmul, random_real_matrix
from repro.apps.vectors import tree_sum
from repro.interp.marshal import BlockMatrixInput, ModMatrixInput
from repro.interp.values import ConValue, deep_read
from repro.sac.engine import Engine

MAT_ADD_SOURCE = """
type matrix = ((real $C) vector) vector

val main : (matrix * matrix) -> matrix =
  fn (a, b) => vmap2 (a, b, fn (r1, r2) => vmap2 (r1, r2, fn (x, y) => x + y))
"""

TRANSPOSE_SOURCE = """
type matrix = ((real $C) vector) vector

fun transpose b =
  vtabulate (vlength (vsub (b, 0)), fn i =>
    vtabulate (vlength b, fn j => vsub (vsub (b, j), i)))

val main : matrix -> matrix = transpose
"""

MAT_MULT_SOURCE = """
type matrix = ((real $C) vector) vector

fun nmul (x, y) = (x * y) / (x + y)

fun transpose b =
  vtabulate (vlength (vsub (b, 0)), fn i =>
    vtabulate (vlength b, fn j => vsub (vsub (b, j), i)))

fun multiply (a, b) =
  let
    val tb = transpose b
    fun dot (row, col) =
      vreduce (vmap2 (row, col, nmul), 0.0, fn (x, y) => x + y)
  in
    vmap (a, fn row => vmap (tb, fn col => dot (row, col)))
  end

val main : (matrix * matrix) -> matrix = multiply
"""

BLOCK_MAT_MULT_SOURCE = """
datatype block = Block of (real vector) vector
type bmatrix = ((block $C) vector) vector

fun nmul (x, y) = (x * y) / (x + y)

fun bmul (x, y) =
  case x of Block bx =>
  case y of Block by =>
    Block (vtabulate (vlength bx, fn i =>
      vtabulate (vlength bx, fn j =>
        vreduce (vtabulate (vlength bx, fn k =>
                   nmul (vsub (vsub (bx, i), k), vsub (vsub (by, k), j))),
                 0.0, fn (p, q) => p + q))))

fun badd (x, y) =
  case x of Block bx =>
  case y of Block by =>
    Block (vtabulate (vlength bx, fn i =>
      vtabulate (vlength bx, fn j =>
        vsub (vsub (bx, i), j) + vsub (vsub (by, i), j))))

fun bzero k = Block (vtabulate (k, fn i => vtabulate (k, fn j => 0.0)))

val main : (bmatrix * bmatrix * int) -> ((block $C) vector) vector =
  fn (a, b, k) =>
    vtabulate (vlength a, fn i =>
      vtabulate (vlength a, fn j =>
        vreduce (vtabulate (vlength a, fn q =>
                   bmul (vsub (vsub (a, i), q), vsub (vsub (b, q), j))),
                 bzero k, fn (x, y) => badd (x, y))))
"""


# ----------------------------------------------------------------------
# References


def ref_mat_add(data) -> List[List[float]]:
    a, b = data
    return [[x + y for x, y in zip(r1, r2)] for r1, r2 in zip(a, b)]


def ref_transpose(m) -> List[List[float]]:
    return [list(col) for col in zip(*m)]


def ref_mat_mult(data) -> List[List[float]]:
    a, b = data
    n = len(a)
    tb = list(zip(*b))
    return [
        [tree_sum([nmul(x, y) for x, y in zip(row, col)]) for col in tb]
        for row in a
    ]


def ref_block_mat_mult_factory(block: int):
    """Blocked reference: per (i,j), blocks of nmul-products are summed in
    the same balanced order as the LML program."""

    def ref(data) -> List[List[float]]:
        a, b = data
        n = len(a)
        nb = n // block

        def block_of(m, bi, bj):
            return [
                [m[bi * block + r][bj * block + c] for c in range(block)]
                for r in range(block)
            ]

        def bmul(x, y):
            return [
                [
                    tree_sum([nmul(x[i][k], y[k][j]) for k in range(block)])
                    for j in range(block)
                ]
                for i in range(block)
            ]

        def badd(x, y):
            return [[p + q for p, q in zip(r1, r2)] for r1, r2 in zip(x, y)]

        def tree_badd(blocks):
            def go(lo, hi):
                if hi - lo == 1:
                    return blocks[lo]
                mid = (lo + hi) // 2
                return badd(go(lo, mid), go(mid, hi))

            return go(0, len(blocks))

        out = [[0.0] * n for _ in range(n)]
        for bi in range(nb):
            for bj in range(nb):
                partials = [
                    bmul(block_of(a, bi, k), block_of(b, k, bj)) for k in range(nb)
                ]
                cblock = tree_badd(partials)
                for r in range(block):
                    for c in range(block):
                        out[bi * block + r][bj * block + c] = cblock[r][c]
        return out

    return ref


# ----------------------------------------------------------------------
# Harness plumbing


class _MatPairHandle:
    def __init__(self, a, b) -> None:
        self.a = a
        self.b = b

    def data(self):
        return (self.a.to_python(), self.b.to_python())


def _mat_pair_change(handle: _MatPairHandle, rng: random.Random, step: int) -> None:
    target = handle.a if step % 2 == 0 else handle.b
    rows, cols = target.shape if hasattr(target, "shape") else (target.n, target.m)
    target.set(rng.randrange(rows), rng.randrange(cols), 0.5 + rng.random())


def _conv_matrix(m) -> tuple:
    return tuple(tuple(row) for row in m)


def _conv_block_matrix(m, block: int) -> tuple:
    n = len(m)
    return tuple(
        tuple(
            ConValue(
                "Block",
                tuple(
                    tuple(m[bi * block + r][bj * block + c] for c in range(block))
                    for r in range(block)
                ),
            )
            for bj in range(n // block)
        )
        for bi in range(n // block)
    )


def _readback_matrix(out) -> List[List[float]]:
    return [list(row) for row in deep_read(out)]


def _readback_block_matrix_factory(block: int):
    def readback(out) -> List[List[float]]:
        blocks = deep_read(out)  # tuple of tuples of ('Block', rows)
        nb = len(blocks)
        n = nb * block
        result = [[0.0] * n for _ in range(n)]
        for bi in range(nb):
            for bj in range(nb):
                tag, rows = blocks[bi][bj]
                assert tag == "Block"
                for r in range(block):
                    for c in range(block):
                        result[bi * block + r][bj * block + c] = rows[r][c]
        return result

    return readback


def make_apps(block: int = 8) -> dict:
    def sa_mat_pair(engine: Engine, data):
        a, b = data
        ha, hb = ModMatrixInput(engine, a), ModMatrixInput(engine, b)
        handle = _MatPairHandle(ha, hb)
        return (ha.value, hb.value), handle

    def sa_mat(engine: Engine, data):
        handle = ModMatrixInput(engine, data)
        return handle.value, handle

    def _mat_change(handle: ModMatrixInput, rng: random.Random, step: int) -> None:
        rows, cols = handle.shape
        handle.set(rng.randrange(rows), rng.randrange(cols), 0.5 + rng.random())

    mat_add = App(
        name="mat-add",
        source=MAT_ADD_SOURCE,
        make_data=lambda n, rng: (random_real_matrix(n, rng), random_real_matrix(n, rng)),
        make_sa_input=sa_mat_pair,
        make_conv_input=lambda data: (_conv_matrix(data[0]), _conv_matrix(data[1])),
        apply_change=_mat_pair_change,
        reference=ref_mat_add,
        readback=_readback_matrix,
        handle_data=lambda handle: handle.data(),
    )

    transpose = App(
        name="transpose",
        source=TRANSPOSE_SOURCE,
        make_data=random_real_matrix,
        make_sa_input=sa_mat,
        make_conv_input=_conv_matrix,
        apply_change=_mat_change,
        reference=ref_transpose,
        readback=_readback_matrix,
        handle_data=lambda handle: handle.to_python(),
    )

    mat_mult = App(
        name="mat-mult",
        source=MAT_MULT_SOURCE,
        make_data=lambda n, rng: (random_real_matrix(n, rng), random_real_matrix(n, rng)),
        make_sa_input=sa_mat_pair,
        make_conv_input=lambda data: (_conv_matrix(data[0]), _conv_matrix(data[1])),
        apply_change=_mat_pair_change,
        reference=ref_mat_mult,
        readback=_readback_matrix,
        handle_data=lambda handle: handle.data(),
    )

    def sa_block_pair(engine: Engine, data):
        a, b = data
        ha = BlockMatrixInput(engine, a, block)
        hb = BlockMatrixInput(engine, b, block)
        handle = _MatPairHandle(ha, hb)
        return (ha.value, hb.value, block), handle

    block_mat_mult = App(
        name="block-mat-mult",
        source=BLOCK_MAT_MULT_SOURCE,
        make_data=lambda n, rng: (random_real_matrix(n, rng), random_real_matrix(n, rng)),
        make_sa_input=sa_block_pair,
        make_conv_input=lambda data: (
            _conv_block_matrix(data[0], block),
            _conv_block_matrix(data[1], block),
            block,
        ),
        apply_change=_mat_pair_change,
        reference=ref_block_mat_mult_factory(block),
        readback=_readback_block_matrix_factory(block),
        handle_data=lambda handle: handle.data(),
    )

    return {
        "mat-add": mat_add,
        "transpose": transpose,
        "mat-mult": mat_mult,
        "block-mat-mult": block_mat_mult,
    }
