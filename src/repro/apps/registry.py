"""Registry of all benchmark applications."""

from __future__ import annotations

from typing import Dict

from repro.apps.base import App
from repro.apps import listops, matrices, raytracer, vectors


def _build() -> Dict[str, App]:
    apps: Dict[str, App] = {}
    apps.update(listops.make_apps())
    apps.update(vectors.make_apps())
    apps.update(matrices.make_apps())
    apps["raytracer"] = raytracer.make_app()
    return apps


REGISTRY: Dict[str, App] = _build()


def get_app(name: str, **kwargs) -> App:
    """Look up a benchmark app; ``block-mat-mult`` accepts ``block=<k>``."""
    if name == "block-mat-mult" and kwargs:
        return matrices.make_apps(**kwargs)["block-mat-mult"]
    return REGISTRY[name]
