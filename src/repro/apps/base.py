"""Common benchmark-application machinery."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.core.pipeline import CompiledProgram, compile_program
from repro.sac.engine import Engine


@dataclass
class App:
    """One benchmark application.

    The callables operate on *data* (plain Python input), *handles*
    (change handles for self-adjusting inputs), and runtime *values*.
    """

    name: str
    source: str
    #: data = make_data(n, rng)
    make_data: Callable[[int, random.Random], Any]
    #: (input_value, handle) for a self-adjusting run
    make_sa_input: Callable[[Engine, Any], Tuple[Any, Any]]
    #: input_value for a conventional run
    make_conv_input: Callable[[Any], Any]
    #: perform one incremental change (caller propagates)
    apply_change: Callable[[Any, random.Random, int], None]
    #: pure-Python reference implementation over data
    reference: Callable[[Any], Any]
    #: runtime output value -> plain Python (for verification)
    readback: Callable[[Any], Any]
    #: current data of a handle (after changes), for re-verification
    handle_data: Callable[[Any], Any]

    _cache: dict = field(default_factory=dict, repr=False)

    def compiled(
        self,
        *,
        memoize: bool = True,
        optimize_flag: bool = True,
        coarse: bool = False,
    ) -> CompiledProgram:
        """Compile (with caching per option set)."""
        key = (memoize, optimize_flag, coarse)
        if key not in self._cache:
            self._cache[key] = compile_program(
                self.source,
                memoize=memoize,
                optimize_flag=optimize_flag,
                coarse=coarse,
            )
        return self._cache[key]

    def instance(
        self,
        engine: Engine,
        *,
        backend: Optional[str] = None,
        memoize: bool = True,
        optimize_flag: bool = True,
        coarse: bool = False,
    ):
        """Compile (cached) and create a runnable self-adjusting instance.

        ``backend`` selects the execution backend (``"interp"`` or
        ``"compiled"``; ``None`` defers to ``REPRO_BACKEND``/default).
        """
        program = self.compiled(
            memoize=memoize, optimize_flag=optimize_flag, coarse=coarse
        )
        return program._self_adjusting_instance(engine, backend=backend)


def random_permutation(n: int, rng: random.Random) -> list:
    values = list(range(1, n + 1))
    rng.shuffle(values)
    return values


def random_reals(n: int, rng: random.Random) -> list:
    """Random reals in [0.5, 1.5): positive, so the paper's normalized
    multiplication (x*y)/(x+y) is safe from division by zero."""
    return [0.5 + rng.random() for _ in range(n)]


def random_real_matrix(n: int, rng: random.Random) -> list:
    return [random_reals(n, rng) for _ in range(n)]


def nmul(x: float, y: float) -> float:
    """The paper's overflow-normalized multiplication (Section 4.1)."""
    return (x * y) / (x + y)
