"""List benchmarks: map, filter, reverse, split, qsort, msort (paper
Section 4.1; ``reverse`` is the classic accumulator-reversal added for the
observability test suite -- an insertion near the tail of the input
invalidates the whole accumulator chain, which makes it a good stress for
the from-scratch-consistency oracle).

The list datatype makes only the *tails* changeable::

    datatype cell = Nil | Cons of int * cell $C

so the supported incremental changes are insertion and deletion of
elements -- exactly the paper's setup ("specifying the tail of the lists
as changeable").  ``main`` is annotated ``cell $C -> ...``; everything else
is conventional SML.

Two structural notes (both standard for self-adjusting list algorithms,
and matching the AFL benchmarks the paper reuses):

* ``split`` partitions with two filter-shaped passes, returning a *stable*
  pair of changeable lists: the output spine cells then stay stable under
  propagation (each filter memo-reuses its result modifiables).
* ``msort`` divides by the *bits of the element values* instead of by
  position, so an insertion does not shift the parity of every later
  element (value-stable division; inputs must be distinct positive
  integers, which the workload generator guarantees);
* ``msort``'s merge copies the remaining suffix through a memoized ``cp``
  when one side runs out, instead of sharing the other list's spine.
  Sharing would make the output spine's identity flip between
  merge-allocated and shared cells whenever a change moves an exhaustion
  point, invalidating every memo key upstream and cascading a full
  rebuild to the root (identity-stable merge).
"""

from __future__ import annotations

import random
from typing import Any, List, Tuple

from repro.apps.base import App, random_permutation
from repro.interp.marshal import ModListInput, plain_list
from repro.interp.values import list_value_to_python
from repro.sac.engine import Engine

_DATATYPE = """
datatype cell = Nil | Cons of int * cell $C
"""

MAP_SOURCE = _DATATYPE + """
fun f h = h div 3 + h div 5 + h div 7

fun mapf l =
  case l of
    Nil => Nil
  | Cons (h, t) => Cons (f h, mapf t)

val main : cell $C -> cell $C = mapf
"""

FILTER_SOURCE = _DATATYPE + """
fun f h = h div 3 + h div 5 + h div 7

fun filt l =
  case l of
    Nil => Nil
  | Cons (h, t) => if (f h) mod 2 = 0 then Cons (h, filt t) else filt t

val main : cell $C -> cell $C = filt
"""

REVERSE_SOURCE = _DATATYPE + """
fun revapp (l, acc) =
  case l of
    Nil => acc
  | Cons (h, t) => revapp (t, Cons (h, acc))

val main : cell $C -> cell $C = fn l => revapp (l, Nil)
"""

SPLIT_SOURCE = _DATATYPE + """
fun evens l =
  case l of
    Nil => Nil
  | Cons (h, t) => if h mod 2 = 0 then Cons (h, evens t) else evens t

fun odds l =
  case l of
    Nil => Nil
  | Cons (h, t) => if h mod 2 = 1 then Cons (h, odds t) else odds t

val main : cell $C -> (cell $C * cell $C) = fn l => (evens l, odds l)
"""

QSORT_SOURCE = _DATATYPE + """
fun lt (p, l) =
  case l of
    Nil => Nil
  | Cons (h, t) => if h < p then Cons (h, lt (p, t)) else lt (p, t)

fun ge (p, l) =
  case l of
    Nil => Nil
  | Cons (h, t) => if h < p then ge (p, t) else Cons (h, ge (p, t))

fun qs (l, rest) =
  case l of
    Nil => rest
  | Cons (h, t) => qs (lt (h, t), Cons (h, qs (ge (h, t), rest)))

val main : cell $C -> cell $C = fn l => qs (l, Nil)
"""

MSORT_SOURCE = _DATATYPE + """
fun half (b, m, l) =
  case l of
    Nil => Nil
  | Cons (h, t) =>
      if (h div m) mod 2 = b then Cons (h, half (b, m, t)) else half (b, m, t)

fun cp l =
  case l of
    Nil => Nil
  | Cons (h, t) => Cons (h, cp t)

fun merge (a, b) =
  case a of
    Nil => cp b
  | Cons (ha, ta) =>
      case b of
        Nil => Cons (ha, cp ta)
      | Cons (hb, tb) =>
          if ha <= hb then Cons (ha, merge (ta, b)) else Cons (hb, merge (a, tb))

fun ms (l, m) =
  case l of
    Nil => Nil
  | Cons (h, t) =>
      (case t of
        Nil => Cons (h, t)
      | Cons (h2, t2) => merge (ms (half (0, m, l), m * 2), ms (half (1, m, l), m * 2)))

val main : cell $C -> cell $C = fn l => ms (l, 1)
"""


# ----------------------------------------------------------------------
# References


def _mangle(h: int) -> int:
    return h // 3 + h // 5 + h // 7


def ref_map(xs: List[int]) -> List[int]:
    return [_mangle(x) for x in xs]


def ref_filter(xs: List[int]) -> List[int]:
    return [x for x in xs if _mangle(x) % 2 == 0]


def ref_reverse(xs: List[int]) -> List[int]:
    return list(reversed(xs))


def ref_split(xs: List[int]) -> Tuple[List[int], List[int]]:
    return ([x for x in xs if x % 2 == 0], [x for x in xs if x % 2 == 1])


def ref_sort(xs: List[int]) -> List[int]:
    return sorted(xs)


# ----------------------------------------------------------------------
# Harness plumbing


class _ListChanger:
    """Alternates insertions and deletions, keeping element values unique
    (msort's value-based division requires distinct elements).  Tracks the
    set of live values per handle."""

    def __call__(self, handle: ModListInput, rng: random.Random, step: int) -> None:
        used = getattr(handle, "_used_values", None)
        if used is None:
            used = set(handle.to_python())
            handle._used_values = used  # type: ignore[attr-defined]
        if step % 2 == 0 or len(handle) == 0:
            # Draw inserted values from (nearly) the same dense range as the
            # initial permutation, as the paper does.  Values far above the
            # existing maximum would make sorted-merge updates walk the
            # whole other side (a genuine worst case, not the average the
            # paper samples), and would deepen msort's bit division.
            bound = (4 * (len(handle) + 1)) // 3 + 16
            while True:
                value = rng.randrange(1, bound)
                if value not in used:
                    break
            used.add(value)
            handle.insert(rng.randrange(len(handle) + 1), value)
        else:
            index = rng.randrange(len(handle))
            used.discard(handle.get(index))
            handle.remove(index)


def _make_sa_list(engine: Engine, data: List[int]):
    handle = ModListInput(engine, data)
    return handle.head, handle


def _readback_list(output: Any) -> List[int]:
    return list_value_to_python(output)


def _readback_pair(output: Any) -> Tuple[List[int], List[int]]:
    from repro.interp.values import deep_read
    from repro.sac.modifiable import Modifiable

    value = output
    if isinstance(value, Modifiable):
        value = value.peek()
    first, second = value
    return (list_value_to_python(first), list_value_to_python(second))


def _list_app(name: str, source: str, reference) -> App:
    readback = _readback_pair if name == "split" else _readback_list
    return App(
        name=name,
        source=source,
        make_data=random_permutation,
        make_sa_input=_make_sa_list,
        make_conv_input=plain_list,
        apply_change=_ListChanger(),
        reference=reference,
        readback=readback,
        handle_data=lambda handle: handle.to_python(),
    )


def make_apps() -> dict:
    return {
        "map": _list_app("map", MAP_SOURCE, ref_map),
        "filter": _list_app("filter", FILTER_SOURCE, ref_filter),
        "reverse": _list_app("reverse", REVERSE_SOURCE, ref_reverse),
        "split": _list_app("split", SPLIT_SOURCE, ref_split),
        "qsort": _list_app("qsort", QSORT_SOURCE, ref_sort),
        "msort": _list_app("msort", MSORT_SOURCE, ref_sort),
    }
