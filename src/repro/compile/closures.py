"""Staging translated SXML into nested Python closures.

The self-adjusting interpreter (:mod:`repro.interp.selfadjusting`) pays an
``isinstance`` dispatch ladder per AST node and a dict-chain ``Env.lookup``
per variable on *every* execution -- during the initial run and again every
time change propagation re-executes a reader.  The paper's pipeline avoids
this entirely by compiling to native code through MLton (Section 3.5); the
closest we can get on CPython is *staging*: a one-time pass over the
translated SXML that resolves all dispatch and all variable references at
compile time and leaves behind a tree of small Python closures whose
execution does no AST inspection at all.

Representation choices:

* **Frames instead of environments.**  Each *frame unit* -- a ``BLam``
  body, a ``CRead`` reader body, or the top-level program body -- gets a
  fixed-size Python list allocated per activation.  Slot 0 is the static
  link to the lexically enclosing frame; locals occupy slots ``1..n``.
  Binder names are globally unique after ``uniquify``, so every binder in a
  unit (including binders of sibling case arms) gets its own slot and no
  slot is ever written twice within one activation.
* **Variables become (depth, slot) pairs.**  A reference resolves at
  compile time to how many static links to follow and which slot to index;
  the emitted accessor for the common depths is a single list index
  (``f[s]``, ``f[0][s]``, ``f[0][0][s]``) -- no hashing, no chain walk.
* **Case dispatch becomes a dict.**  ``BCase``/``CCase`` clause lists
  compile to ``tag -> (binder_slot, compiled_body)`` dicts and
  ``BCaseConst``/``CCaseConst`` arms to ``(type, value) -> compiled_body``
  dicts (type-sensitive, matching the interpreter's arm scan).
* **Reader closures capture frame + destination.**  A ``CRead`` compiles
  to code that hands the engine a ``reader(value)`` closure allocating a
  *fresh* frame per (re-)execution, so re-executed readers can never
  clobber bindings that closures from an earlier execution still see --
  the same discipline as the interpreter's fresh ``Env`` child per reader.

The engine API (``mod``/``read``/``write``/``memo``/``impwrite``) is
called in exactly the same sequence, with equal memo keys and equal
written values, as the interpreting backend produces -- so traces, meter
counts, and observability hooks are unchanged.  ``tests/
test_backends_differential.py`` asserts this meter-exact equivalence over
every registered application.

Exception transparency: like the interpreter, the emitted closures contain
no exception handlers -- a raise inside user code (builtin failure,
``MatchFailure``, ``RecursionError``, planted fault) reaches the engine's
transactional re-execution wrapper unmangled (DESIGN.md Section 7), so
both backends share one failure model.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import sxml as S
from repro.interp.builtins import BUILTIN_IMPLS, BuiltinFn, eval_prim
from repro.interp.values import ConValue, LmlRuntimeError, MatchFailure, intern_con
from repro.sac.api import memo_key
from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable

__all__ = ["CompClosure", "CompiledSelfAdjusting"]


class CompClosure:
    """A compiled function value: staged entry code plus its defining frame.

    Calling convention: ``value = clo.enter(clo.frame, arg)``.  ``enter``
    allocates the callee frame (static link = the defining frame), stores
    the argument in the parameter slot, and runs the staged body.

    Memoization keys by identity, exactly like the interpreter's
    :class:`repro.interp.values.Closure`, so compiler-inserted ``BMemoApp``
    hits and misses line up one-for-one across backends.
    """

    __slots__ = ("enter", "frame", "name")

    def __init__(self, enter: Callable, frame: list, name: str = "") -> None:
        self.enter = enter
        self.frame = frame
        self.name = name

    def memo_key(self) -> Any:
        # Identity key; the closure is its own key (default object hash/eq),
        # saving a wrapper allocation per memo lookup.
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<compiled closure {self.name or 'fn'}>"


class _Unit:
    """Compile-time frame layout of one frame unit.

    Slot 0 is reserved for the static link; :meth:`alloc` hands out the
    local slots.  The final ``size`` is read only after the whole unit has
    been compiled (closure-creation code captures it as a default arg).
    """

    __slots__ = ("size",)

    def __init__(self) -> None:
        self.size = 1

    def alloc(self) -> int:
        slot = self.size
        self.size += 1
        return slot


class _Scope:
    """Compile-time name resolution: one scope per frame unit, chained.

    Because binder names are globally unique, a single flat dict per unit
    is enough -- a name can never be shadowed or rebound, and a reference
    can only occur under its binder.
    """

    __slots__ = ("unit", "parent", "slots")

    def __init__(self, unit: _Unit, parent: Optional["_Scope"] = None) -> None:
        self.unit = unit
        self.parent = parent
        self.slots: Dict[str, int] = {}

    def bind(self, name: str) -> int:
        slot = self.unit.alloc()
        self.slots[name] = slot
        return slot

    def resolve(self, name: str) -> Tuple[int, int]:
        depth = 0
        scope: Optional[_Scope] = self
        while scope is not None:
            slot = scope.slots.get(name)
            if slot is not None:
                return depth, slot
            depth += 1
            scope = scope.parent
        raise LmlRuntimeError(f"unbound variable at compile time: {name}")


def _seq_value(steps: list, tail: Callable) -> Callable:
    """Fuse a straight-line ``let`` chain into one stepping function.

    Each step is ``(slot, bind_fn)``; the tail produces the value.  Small
    chains get unrolled variants so the common bodies cost one Python
    frame, not one per ``let``.
    """
    if not steps:
        return tail
    if len(steps) == 1:
        (s1, b1), = steps

        def run1(f):
            f[s1] = b1(f)
            return tail(f)

        return run1
    if len(steps) == 2:
        (s1, b1), (s2, b2) = steps

        def run2(f):
            f[s1] = b1(f)
            f[s2] = b2(f)
            return tail(f)

        return run2
    if len(steps) == 3:
        (s1, b1), (s2, b2), (s3, b3) = steps

        def run3(f):
            f[s1] = b1(f)
            f[s2] = b2(f)
            f[s3] = b3(f)
            return tail(f)

        return run3
    steps_t = tuple(steps)

    def run(f):
        for s, bf in steps_t:
            f[s] = bf(f)
        return tail(f)

    return run


def _seq_dest(steps: list, tail: Callable) -> Callable:
    """Changeable-mode counterpart of :func:`_seq_value`.

    Steps with slot ``None`` are effect-only (``impwrite``); the tail runs
    with the frame and the ambient destination.
    """
    if not steps:
        return tail
    if len(steps) == 1 and steps[0][0] is not None:
        s1, b1 = steps[0]

        def run1(f, dest):
            f[s1] = b1(f)
            tail(f, dest)

        return run1
    if (
        len(steps) == 2
        and steps[0][0] is not None
        and steps[1][0] is not None
    ):
        (s1, b1), (s2, b2) = steps

        def run2(f, dest):
            f[s1] = b1(f)
            f[s2] = b2(f)
            tail(f, dest)

        return run2
    steps_t = tuple(steps)

    def run(f, dest):
        for s, bf in steps_t:
            if s is None:
                bf(f)
            else:
                f[s] = bf(f)
        tail(f, dest)

    return run


class _Stager:
    """The one-time staging pass: SXML in, closure tree out."""

    def __init__(self, engine: Engine, rt: "CompiledSelfAdjusting") -> None:
        self.engine = engine
        self.rt = rt

    # ------------------------------------------------------------------
    # Atoms

    def _local_slot(self, a: S.Atom, sc: _Scope) -> Optional[int]:
        """Slot index if ``a`` is a local (depth-0) variable, else None.

        Hot consumers use this to index the frame directly instead of
        calling an accessor closure.
        """
        if type(a) is S.AVar and not a.is_builtin:
            depth, slot = sc.resolve(a.name)
            if depth == 0:
                return slot
        return None

    def atom(self, a: S.Atom, sc: _Scope) -> Callable:
        if type(a) is S.AVar:
            if a.is_builtin:
                builtin = BUILTIN_IMPLS[a.name]
                return lambda f, _v=builtin: _v
            depth, slot = sc.resolve(a.name)
            if depth == 0:
                return lambda f, _s=slot: f[_s]
            if depth == 1:
                return lambda f, _s=slot: f[0][_s]
            if depth == 2:
                return lambda f, _s=slot: f[0][0][_s]

            def deep(f, _d=depth, _s=slot):
                for _ in range(_d):
                    f = f[0]
                return f[_s]

            return deep
        value = a.value
        return lambda f, _v=value: _v

    # ------------------------------------------------------------------
    # Stable expressions

    def expr(self, e: S.Expr, sc: _Scope) -> Callable:
        steps: list = []
        while True:
            t = type(e)
            if t is S.ELet:
                bind_fn = self.bind(e.bind, sc)
                steps.append((sc.bind(e.name), bind_fn))
                e = e.body
            elif t is S.ELetRec:
                # Allocate every slot first: the lambda bodies may refer to
                # any of the mutually recursive names.
                slots = [sc.bind(name) for name, _ in e.bindings]
                for slot, (name, lam) in zip(slots, e.bindings):
                    steps.append((slot, self.lam(lam, sc, name=name)))
                e = e.body
            elif t is S.ERet:
                return _seq_value(steps, self.atom(e.atom, sc))
            else:
                raise AssertionError(f"unknown expr {e!r}")

    # ------------------------------------------------------------------
    # Bindable computations

    def bind(self, b: S.Bind, sc: _Scope) -> Callable:
        t = type(b)
        if t is S.BAtom:
            return self.atom(b.atom, sc)
        if t is S.BPrim:
            return self.prim(b, sc)
        if t is S.BApp:
            gf = self.atom(b.fn, sc)
            ga = self.atom(b.arg, sc)
            rt_apply = self.rt.apply

            def app(f):
                fn = gf(f)
                if type(fn) is CompClosure:
                    return fn.enter(fn.frame, ga(f))
                return rt_apply(fn, ga(f))

            return app
        if t is S.BMemoApp:
            gf = self.atom(b.fn, sc)
            ga = self.atom(b.arg, sc)
            engine_memo = self.engine.memo
            rt_apply = self.rt.apply

            def memoapp(f):
                # The common memo_key cases are inlined (closure function;
                # modifiable / constructor / scalar argument).  Each inline
                # key equals what generic ``memo_key`` would build, so memo
                # hits and misses match the interpreting backend exactly.
                fn = gf(f)
                kf = fn if type(fn) is CompClosure else memo_key(fn)
                arg = ga(f)
                ta = type(arg)
                if ta is Modifiable or ta is int or ta is str or ta is bool:
                    ka = arg
                elif ta is ConValue:
                    ka = arg.memo_key()
                else:
                    ka = memo_key(arg)
                return engine_memo((kf, ka), partial(rt_apply, fn, arg))

            return memoapp
        if t is S.BTuple:
            getters = [self.atom(a, sc) for a in b.items]
            if len(getters) == 2:
                g1, g2 = getters
                return lambda f: (g1(f), g2(f))
            if len(getters) == 3:
                g1, g2, g3 = getters
                return lambda f: (g1(f), g2(f), g3(f))
            getters_t = tuple(getters)
            return lambda f: tuple(g(f) for g in getters_t)
        if t is S.BProj:
            g = self.atom(b.arg, sc)
            index = b.index - 1
            return lambda f: g(f)[index]
        if t is S.BCon:
            tag = b.tag
            if b.args:
                g = self.atom(b.args[0], sc)
                return lambda f: intern_con(tag, g(f))
            # Nullary constructors are canonical singletons via the intern
            # table (shared with the interpreting backend).
            nullary = intern_con(tag)
            return lambda f: nullary
        if t is S.BLam:
            return self.lam(b, sc)
        if t is S.BIf:
            gcond = self.atom(b.cond, sc)
            then = self.expr(b.then, sc)
            els = self.expr(b.els, sc)

            def bif(f):
                if gcond(f):
                    return then(f)
                return els(f)

            return bif
        if t is S.BCase:
            gscrut = self.atom(b.scrut, sc)
            table: dict = {}
            for clause in b.clauses:
                slot = sc.bind(clause.binder) if clause.binder is not None else None
                table.setdefault(clause.tag, (slot, self.expr(clause.body, sc)))
            default = self.expr(b.default, sc) if b.default is not None else None

            def bcase(f):
                scrut = gscrut(f)
                ent = table.get(scrut.tag)
                if ent is not None:
                    slot, body = ent
                    if slot is not None:
                        f[slot] = scrut.arg
                    return body(f)
                if default is not None:
                    return default(f)
                raise MatchFailure(f"no clause for {scrut.tag}")

            return bcase
        if t is S.BCaseConst:
            gscrut = self.atom(b.scrut, sc)
            arms: dict = {}
            for value, body in b.arms:
                arms.setdefault((type(value), value), self.expr(body, sc))
            default = self.expr(b.default, sc) if b.default is not None else None

            def bcaseconst(f):
                scrut = gscrut(f)
                body = arms.get((type(scrut), scrut))
                if body is not None:
                    return body(f)
                if default is not None:
                    return default(f)
                raise MatchFailure(f"no arm for {scrut!r}")

            return bcaseconst
        if t is S.BMod:
            cbody = self.cexpr(b.body, sc)
            engine_mod = self.engine.mod

            def bmod(f):
                return engine_mod(partial(cbody, f))

            return bmod
        if t is S.BAssign:
            gref = self.atom(b.ref, sc)
            gval = self.atom(b.value, sc)
            impwrite = self.engine.impwrite

            def bassign(f):
                cell = gref(f)
                if not isinstance(cell, Modifiable):
                    raise LmlRuntimeError("assignment to a non-modifiable")
                impwrite(cell, gval(f))
                return ()

            return bassign
        if t is S.BAscribe:
            return self.atom(b.atom, sc)
        if t is S.BMatchFail:

            def bmatchfail(f):
                raise MatchFailure("inexhaustive match")

            return bmatchfail
        # BRef / BDeref never survive translation (they become mod/aliases).
        raise AssertionError(f"unexpected bind in translated code: {b!r}")

    def prim(self, b: S.BPrim, sc: _Scope) -> Callable:
        getters = [self.atom(a, sc) for a in b.args]
        op = b.op
        if len(getters) == 2:
            g1, g2 = getters
            if op == "+" or op == "^":
                return lambda f: g1(f) + g2(f)
            if op == "-":
                return lambda f: g1(f) - g2(f)
            if op == "*":
                return lambda f: g1(f) * g2(f)
            if op == "<":
                return lambda f: g1(f) < g2(f)
            if op == "<=":
                return lambda f: g1(f) <= g2(f)
            if op == ">":
                return lambda f: g1(f) > g2(f)
            if op == ">=":
                return lambda f: g1(f) >= g2(f)
            if op == "=":
                return lambda f: g1(f) == g2(f)
            if op == "<>":
                return lambda f: g1(f) != g2(f)
            if op == "/":

                def fdiv(f):
                    x = g1(f)
                    y = g2(f)
                    if y == 0.0:
                        raise LmlRuntimeError("division by zero")
                    return x / y

                return fdiv
            if op == "div":

                def idiv(f):
                    x = g1(f)
                    y = g2(f)
                    if y == 0:
                        raise LmlRuntimeError("div by zero")
                    return x // y

                return idiv
            if op == "mod":

                def imod(f):
                    x = g1(f)
                    y = g2(f)
                    if y == 0:
                        raise LmlRuntimeError("mod by zero")
                    return x % y

                return imod
            if op == "rpow":
                return lambda f: math.pow(g1(f), g2(f))
        elif len(getters) == 1:
            (g1,) = getters
            if op == "~":
                return lambda f: -g1(f)
            if op == "not":
                return lambda f: not g1(f)
            if op == "toReal":
                return lambda f: float(g1(f))
            if op == "floor":
                return lambda f: math.floor(g1(f))
            if op == "sqrt":

                def fsqrt(f):
                    x = g1(f)
                    if x < 0.0:
                        raise LmlRuntimeError("sqrt of negative")
                    return math.sqrt(x)

                return fsqrt
        getters_t = tuple(getters)
        return lambda f: eval_prim(op, [g(f) for g in getters_t])

    def lam(self, b: S.BLam, sc: _Scope, name: str = "") -> Callable:
        unit = _Unit()
        inner = _Scope(unit, sc)
        param_slot = inner.bind(b.param)
        body = self.expr(b.body, inner)
        label = name or b.name_hint

        def enter(parent, arg, _size=unit.size, _slot=param_slot, _body=body):
            frame = [None] * _size
            frame[0] = parent
            frame[_slot] = arg
            return _body(frame)

        return lambda f, _enter=enter, _label=label: CompClosure(_enter, f, _label)

    # ------------------------------------------------------------------
    # Changeable expressions

    def cexpr(self, e: S.CExpr, sc: _Scope) -> Callable:
        steps: list = []
        while True:
            t = type(e)
            if t is S.CLet:
                bind_fn = self.bind(e.bind, sc)
                steps.append((sc.bind(e.name), bind_fn))
                e = e.body
            elif t is S.CLetRec:
                slots = [sc.bind(name) for name, _ in e.bindings]
                for slot, (name, lam) in zip(slots, e.bindings):
                    steps.append((slot, self.lam(lam, sc, name=name)))
                e = e.body
            elif t is S.CImpWrite:
                gref = self.atom(e.ref, sc)
                gval = self.atom(e.value, sc)
                impwrite = self.engine.impwrite
                steps.append(
                    (None, lambda f, _gr=gref, _gv=gval, _iw=impwrite: _iw(_gr(f), _gv(f)))
                )
                e = e.body
            else:
                return _seq_dest(steps, self.ctail(e, sc))

    def ctail(self, e: S.CExpr, sc: _Scope) -> Callable:
        t = type(e)
        if t is S.CWrite:
            engine_write = self.engine.write
            slot = self._local_slot(e.atom, sc)
            if slot is not None:

                def cwrite_slot(f, dest, _s=slot):
                    engine_write(dest, f[_s])

                return cwrite_slot
            g = self.atom(e.atom, sc)

            def cwrite(f, dest):
                engine_write(dest, g(f))

            return cwrite
        if t is S.CRead:
            gsrc = self.atom(e.src, sc)
            body_e = e.body
            if (
                type(body_e) is S.CWrite
                and type(body_e.atom) is S.AVar
                and not body_e.atom.is_builtin
                and body_e.atom.name == e.binder
            ):
                # Copy read (``read x as v in write v``, the coercion shape
                # of Section 3.3): the reader is just ``write(dest, value)``
                # -- no frame, no Python-level reader at all.
                engine_read = self.engine.read
                engine_write = self.engine.write

                def cread_copy(f, dest):
                    src = gsrc(f)
                    if type(src) is not Modifiable and not isinstance(
                        src, Modifiable
                    ):
                        raise LmlRuntimeError(
                            f"read of a non-modifiable value: {src!r}"
                        )
                    engine_read(src, partial(engine_write, dest))

                return cread_copy
            unit = _Unit()
            inner = _Scope(unit, sc)
            binder_slot = inner.bind(e.binder)
            engine_read = self.engine.read
            if (
                type(body_e) is S.CCase
                and type(body_e.scrut) is S.AVar
                and body_e.scrut.name == e.binder
            ):
                # Fused read-then-match (``read l as v in case v of ...``,
                # the translation of every recursive list traversal): the
                # reader dispatches on the fresh value directly, skipping
                # one closure call and the scrutinee accessor.
                table: dict = {}
                for clause in body_e.clauses:
                    cslot = (
                        inner.bind(clause.binder)
                        if clause.binder is not None
                        else None
                    )
                    table.setdefault(
                        clause.tag, (cslot, self.cexpr(clause.body, inner))
                    )
                default = (
                    self.cexpr(body_e.default, inner)
                    if body_e.default is not None
                    else None
                )

                def cread_case(f, dest, _size=unit.size, _slot=binder_slot):
                    src = gsrc(f)
                    if type(src) is not Modifiable and not isinstance(
                        src, Modifiable
                    ):
                        raise LmlRuntimeError(
                            f"read of a non-modifiable value: {src!r}"
                        )

                    def reader(value):
                        ent = table.get(value.tag)
                        frame = [None] * _size
                        frame[0] = f
                        frame[_slot] = value
                        if ent is not None:
                            cslot, cbody = ent
                            if cslot is not None:
                                frame[cslot] = value.arg
                            cbody(frame, dest)
                        elif default is not None:
                            default(frame, dest)
                        else:
                            raise MatchFailure(f"no clause for {value.tag}")

                    engine_read(src, reader)

                return cread_case
            body = self.cexpr(e.body, inner)

            def cread(f, dest, _size=unit.size, _slot=binder_slot, _body=body):
                src = gsrc(f)
                if type(src) is not Modifiable and not isinstance(src, Modifiable):
                    raise LmlRuntimeError(f"read of a non-modifiable value: {src!r}")

                def reader(value):
                    # A fresh frame per (re-)execution: closures created by
                    # an earlier execution keep the bindings they captured.
                    frame = [None] * _size
                    frame[0] = f
                    frame[_slot] = value
                    _body(frame, dest)

                engine_read(src, reader)

            return cread
        if t is S.CIf:
            gcond = self.atom(e.cond, sc)
            then = self.cexpr(e.then, sc)
            els = self.cexpr(e.els, sc)

            def cif(f, dest):
                if gcond(f):
                    then(f, dest)
                else:
                    els(f, dest)

            return cif
        if t is S.CCase:
            sslot = self._local_slot(e.scrut, sc)
            gscrut = self.atom(e.scrut, sc)
            table: dict = {}
            for clause in e.clauses:
                slot = sc.bind(clause.binder) if clause.binder is not None else None
                table.setdefault(clause.tag, (slot, self.cexpr(clause.body, sc)))
            default = self.cexpr(e.default, sc) if e.default is not None else None

            if sslot is not None:

                def ccase_slot(f, dest, _ss=sslot):
                    scrut = f[_ss]
                    ent = table.get(scrut.tag)
                    if ent is not None:
                        slot, body = ent
                        if slot is not None:
                            f[slot] = scrut.arg
                        body(f, dest)
                        return
                    if default is not None:
                        default(f, dest)
                        return
                    raise MatchFailure(f"no clause for {scrut.tag}")

                return ccase_slot

            def ccase(f, dest):
                scrut = gscrut(f)
                ent = table.get(scrut.tag)
                if ent is not None:
                    slot, body = ent
                    if slot is not None:
                        f[slot] = scrut.arg
                    body(f, dest)
                    return
                if default is not None:
                    default(f, dest)
                    return
                raise MatchFailure(f"no clause for {scrut.tag}")

            return ccase
        if t is S.CCaseConst:
            gscrut = self.atom(e.scrut, sc)
            arms: dict = {}
            for value, body in e.arms:
                arms.setdefault((type(value), value), self.cexpr(body, sc))
            default = self.cexpr(e.default, sc) if e.default is not None else None

            def ccaseconst(f, dest):
                scrut = gscrut(f)
                body = arms.get((type(scrut), scrut))
                if body is not None:
                    body(f, dest)
                    return
                if default is not None:
                    default(f, dest)
                    return
                raise MatchFailure(f"no arm for {scrut!r}")

            return ccaseconst
        raise AssertionError(f"unknown cexpr {e!r}")

    # ------------------------------------------------------------------

    def run_program(self, expr: S.Expr) -> Any:
        unit = _Unit()
        sc = _Scope(unit)
        body = self.expr(expr, sc)
        frame: List[Any] = [None] * unit.size
        return body(frame)


class CompiledSelfAdjusting:
    """The closure-compilation backend.

    A drop-in alternative to
    :class:`repro.interp.selfadjusting.SelfAdjustingInterpreter`: same
    constructor, same ``run``/``apply`` surface, same engine semantics.
    ``run`` performs the one-time staging pass and executes the top level;
    all later work (applications, change propagation) runs staged closures
    only.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def run(self, expr: S.Expr) -> Any:
        return _Stager(self.engine, self).run_program(expr)

    def apply(self, fn: Any, arg: Any) -> Any:
        if type(fn) is CompClosure:
            return fn.enter(fn.frame, arg)
        if isinstance(fn, BuiltinFn):
            return fn.fn(self, arg)
        raise LmlRuntimeError(f"application of non-function {fn!r}")
