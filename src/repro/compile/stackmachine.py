"""The flat stack-machine backend (``backend="stack"``).

Both existing backends recurse in the host: the tree-walker nests one
Python frame per AST step and the closure backend one per staged closure
call, so every traced list cell costs a handful of CPython frames during
the initial run *and* again whenever change propagation re-executes a
reader.  Deep inputs (a 10^5-element cons chain, msort at scale) therefore
die with ``RecursionError``/``RecursionReexecutionError`` unless the
process-wide recursion limit is cranked (``REPRO_RECURSION_LIMIT``).

This module follows the *self-adjusting stack machines* idea (Hammer et
al., see PAPERS.md): flatten the translated SXML into linear instruction
sequences and drive them with an explicit control stack, so execution
depth lives in a Python list instead of the interpreter stack.  Machine
registers are ``(instrs, pc, frame, dest)``; the control stack holds
continuation records:

* ``K_RET``   -- a stable call awaiting the callee's value,
* ``K_MEMO``  -- an open memo interval awaiting its result,
* ``K_MOD``   -- an open ``mod`` awaiting its body's terminal write,
* ``K_READ``  -- an open read interval awaiting its reader's completion,
* ``K_DONE`` / ``K_DONEC`` -- the run's entry sentinel (stable value /
  re-executed reader).

The machine does not call the engine's recursive ``mod``/``read``/
``memo`` (which run their bodies synchronously); it drives the split
halves (``mod_begin``/``mod_end``, ``read_begin``/``read_end``,
``memo_probe``/``memo_commit``) and interleaves them with its own
dispatch, producing the *identical* engine-primitive sequence -- same
stamps, meters, memo keys, hook events -- as the other backends
(``tests/test_backends_differential.py`` holds all three meter-exact).

Re-execution enters the machine the same way it enters the other
backends: each ``READ`` registers a :class:`StackReader` as the edge's
reader callback, and ``Engine._drain`` re-invokes it with the new value.
A re-executed reader resumes mid-sequence -- ``__call__`` starts a fresh
dispatch loop at its reader code's entry with a fresh frame and the
captured destination, one Python frame total regardless of how deep the
traced structure is.  Copy reads (``read x as v in write v``) register
``partial(engine.write, dest)`` exactly like the other backends, so their
re-execution never enters the machine at all.

Exception semantics mirror the recursive backends' ``try``/``finally``
nesting: on any raise the dispatch loop walks the remaining control stack
innermost-first -- ``read_abort`` for open reads, ``mod_abort`` for open
mods (truncating at the outermost transactional checkpoint) -- and
re-raises unmangled, so transactional initial runs, propagate-time abort/
rollback/rebuild, lazy-demand hazards (``_DemandStaleRead``), and planted
faults from :mod:`repro.obs.faults` all behave identically.

Frame layout, slot allocation, case indexing, atom/primitive staging, and
the memo-key construction are shared with the closure backend
(:mod:`repro.compile.closures`): slot 0 is the static link, binder names
are globally unique, ``BCase`` dispatch uses the ``core/caseindex`` maps,
and pure straight-line ``let`` segments stay fused Python closures
executed as a single ``STEPS`` instruction -- only the engine boundaries
(application, memo, mod, read) and control flow become instructions.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import sxml as S
from repro.compile.closures import _Scope, _Stager, _Unit
from repro.interp.builtins import BuiltinFn
from repro.interp.values import (
    ConValue,
    LmlRuntimeError,
    MatchFailure,
    intern_con,
)
from repro.sac.api import memo_key
from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable

__all__ = ["StackClosure", "StackReader", "StackSelfAdjusting"]

#: Staging helpers borrowed from the closure backend.  ``_Stager.atom``,
#: ``.prim`` and ``._local_slot`` never touch ``self`` state, so a bare
#: instance gives byte-identical atom/primitive getters without
#: duplicating ~150 lines of accessor staging.
_STAGE = _Stager.__new__(_Stager)

# ----------------------------------------------------------------------
# Instruction set (tuples; first field is the opcode)

OP_STEPS = 0    # (op, run)                     fused pure let-steps
OP_RET = 1      # (op, g)                       return g(frame) to ctrl
OP_STOREJ = 2   # (op, slot, g, pc)             frame[slot] = g(frame); jump
OP_IF = 3       # (op, g, else_pc)              fallthrough = then arm
OP_CASE = 4     # (op, g, slot, table, dflt)    table: tag -> (bslot, pc)
OP_CASEK = 5    # (op, g, arms, dflt)           arms: (type, val) -> pc
OP_CALL = 6     # (op, slot, gf, ga, cont)      stable application
OP_TCALL = 7    # (op, gf, ga)                  tail application (a jump)
OP_MEMO = 8     # (op, slot, gf, ga, cont)      memoized application
OP_TMEMO = 9    # (op, gf, ga)                  tail memoized application
OP_MOD = 10     # (op, slot, cont)              body at pc+1; slot None=tail
OP_READ = 11    # (op, gsrc, rcode, bslot)      terminal changeable read
OP_READC = 12   # (op, gsrc)                    fused copy read
OP_WRITE = 13   # (op, g)                       terminal changeable write
OP_WRITES = 14  # (op, slot)                    write of a local slot

# Control-stack record kinds
K_RET = 0       # (k, instrs, frame, slot, cont_pc)
K_MEMO = 1      # (k, entry)
K_MOD = 2       # (k, dest_mod, checkpoint, saved_dest, instrs, frame,
                #     slot, cont_pc)
K_READ = 3      # (k, edge)
K_DONE = 4      # (k,) -- entry sentinel: return the value
K_DONEC = 5     # (k,) -- entry sentinel: re-executed reader completed

_DONE = (K_DONE,)
_DONEC = (K_DONEC,)

#: Stable-compilation continuation sentinel: "return the value".
_RETK = object()


class _Ref:
    """A forward jump target, patched once its pc is known."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc: Optional[int] = None


class Code:
    """One flattened frame unit: the top level, a lambda body, or a
    reader body.  ``size`` (frame length) and ``param`` (argument /
    binder slot) are filled in after the whole unit is compiled."""

    __slots__ = ("instrs", "size", "param", "name")

    def __init__(self, name: str = "") -> None:
        self.instrs: Tuple[tuple, ...] = ()
        self.size = 0
        self.param = 0
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<stack code {self.name or 'unit'} [{len(self.instrs)}]>"


class StackClosure:
    """A compiled function value: flat code plus its defining frame.

    Memoization keys by identity, exactly like the interpreter's
    ``Closure`` and the closure backend's ``CompClosure``, so
    compiler-inserted ``BMemoApp`` hits and misses line up one-for-one
    across all three backends.
    """

    __slots__ = ("code", "frame")

    def __init__(self, code: Code, frame: list) -> None:
        self.code = code
        self.frame = frame

    def memo_key(self) -> Any:
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<stack closure {self.code.name or 'fn'}>"


class StackReader:
    """The reader callback a ``READ`` instruction registers on its edge.

    During the initial run the machine executes the reader body inline
    (no Python call); during change propagation ``Engine._drain`` calls
    this object with the modifiable's new value, and it resumes the
    flattened reader code mid-sequence: fresh frame, captured parent
    frame and destination, one dispatch loop -- constant Python stack
    depth no matter how deep the traced structure is.
    """

    __slots__ = ("rt", "code", "frame", "dest")

    def __init__(
        self, rt: "StackSelfAdjusting", code: Code, frame: list,
        dest: Optional[Modifiable],
    ) -> None:
        self.rt = rt
        self.code = code
        self.frame = frame
        self.dest = dest

    def __call__(self, value: Any) -> None:
        code = self.code
        frame = [None] * code.size
        frame[0] = self.frame
        frame[code.param] = value
        self.rt._execute(code.instrs, frame, self.dest, _DONEC)


# ----------------------------------------------------------------------
# Flattening pass


def _steps_run(steps: list) -> Callable:
    """One runner closure for a fused pure let-segment.

    Steps are ``(slot, g)`` stores or ``(None, g)`` effects (impwrite);
    short segments get unrolled variants, mirroring the closure backend's
    ``_seq_value``/``_seq_dest`` fusion.
    """
    if len(steps) == 1 and steps[0][0] is not None:
        s1, b1 = steps[0]

        def run1(f):
            f[s1] = b1(f)

        return run1
    if (
        len(steps) == 2
        and steps[0][0] is not None
        and steps[1][0] is not None
    ):
        (s1, b1), (s2, b2) = steps

        def run2(f):
            f[s1] = b1(f)
            f[s2] = b2(f)

        return run2
    steps_t = tuple(steps)

    def run(f):
        for s, bf in steps_t:
            if s is None:
                bf(f)
            else:
                f[s] = bf(f)

    return run


def _is_ret_of(e: S.Expr, name: str) -> bool:
    """``e`` is exactly ``ret name`` -- the tail-position pattern."""
    return (
        type(e) is S.ERet
        and type(e.atom) is S.AVar
        and not e.atom.is_builtin
        and e.atom.name == name
    )


class _Flattener:
    """Compiles one frame unit into a flat instruction list.

    Shares the scope chain with enclosing units; lambda and reader bodies
    recurse into fresh flatteners (fresh units, this unit's scope as the
    static-link parent).
    """

    def __init__(self, rt: "StackSelfAdjusting", name: str = "") -> None:
        self.rt = rt
        self.instrs: List[list] = []
        self.name = name

    def emit(self, ins: list) -> int:
        self.instrs.append(ins)
        return len(self.instrs) - 1

    @property
    def pc(self) -> int:
        return len(self.instrs)

    def finalize(self) -> Tuple[tuple, ...]:
        """Resolve forward references and freeze the instruction list."""
        out = []
        for ins in self.instrs:
            fields = []
            for x in ins:
                if type(x) is _Ref:
                    x = x.pc
                elif type(x) is dict:
                    x = {
                        key: (
                            (tgt[0], tgt[1].pc)
                            if type(tgt) is tuple
                            else tgt.pc
                        )
                        for key, tgt in x.items()
                    }
                fields.append(x)
            out.append(tuple(fields))
        return tuple(out)

    # -- pure binds (no engine calls, no control flow) -----------------

    def pure_bind(self, b: S.Bind, sc: _Scope) -> Optional[Callable]:
        """A getter for ``b`` if it stages to a plain closure, else None.

        Mirrors the corresponding arms of the closure backend's
        ``_Stager.bind``; applications, memoized applications, mods, and
        the control-flow binds return None and become instructions.
        """
        t = type(b)
        if t is S.BAtom or t is S.BAscribe:
            return _STAGE.atom(b.atom, sc)
        if t is S.BPrim:
            return _STAGE.prim(b, sc)
        if t is S.BTuple:
            getters = [_STAGE.atom(a, sc) for a in b.items]
            if len(getters) == 2:
                g1, g2 = getters
                return lambda f: (g1(f), g2(f))
            if len(getters) == 3:
                g1, g2, g3 = getters
                return lambda f: (g1(f), g2(f), g3(f))
            getters_t = tuple(getters)
            return lambda f: tuple(g(f) for g in getters_t)
        if t is S.BProj:
            g = _STAGE.atom(b.arg, sc)
            index = b.index - 1
            return lambda f: g(f)[index]
        if t is S.BCon:
            tag = b.tag
            if b.args:
                g = _STAGE.atom(b.args[0], sc)
                return lambda f: intern_con(tag, g(f))
            nullary = intern_con(tag)
            return lambda f: nullary
        if t is S.BLam:
            return self.lam(b, sc)
        if t is S.BAssign:
            gref = _STAGE.atom(b.ref, sc)
            gval = _STAGE.atom(b.value, sc)
            impwrite = self.rt.engine.impwrite

            def bassign(f):
                cell = gref(f)
                if not isinstance(cell, Modifiable):
                    raise LmlRuntimeError("assignment to a non-modifiable")
                impwrite(cell, gval(f))
                return ()

            return bassign
        if t is S.BMatchFail:

            def bmatchfail(f):
                raise MatchFailure("inexhaustive match")

            return bmatchfail
        return None

    def lam(self, b: S.BLam, sc: _Scope, name: str = "") -> Callable:
        """Compile a lambda body as its own unit; the getter allocates a
        :class:`StackClosure` over the current frame."""
        unit = _Unit()
        inner = _Scope(unit, sc)
        code = Code(name or b.name_hint)
        code.param = inner.bind(b.param)
        em = _Flattener(self.rt, code.name)
        em.expr(b.body, inner, _RETK)
        code.instrs = em.finalize()
        code.size = unit.size
        return lambda f, _c=code: StackClosure(_c, f)

    # -- engine-boundary binds -----------------------------------------

    def _memo_getters(self, b: S.BMemoApp, sc: _Scope):
        return _STAGE.atom(b.fn, sc), _STAGE.atom(b.arg, sc)

    def bind_engine(self, b: S.Bind, slot: Optional[int], sc: _Scope,
                    cont) -> None:
        """Emit the instruction for an application/memo/mod bind.

        ``slot`` receives the result; ``cont`` is an int pc, a
        :class:`_Ref`, or None meaning "the next instruction" (filled in
        after emission).
        """
        t = type(b)
        if t is S.BApp:
            gf = _STAGE.atom(b.fn, sc)
            ga = _STAGE.atom(b.arg, sc)
            idx = self.emit([OP_CALL, slot, gf, ga, cont])
        elif t is S.BMemoApp:
            gf, ga = self._memo_getters(b, sc)
            idx = self.emit([OP_MEMO, slot, gf, ga, cont])
        elif t is S.BMod:
            idx = self.emit([OP_MOD, slot, cont])
            self.cexpr(b.body, sc)
        else:  # pragma: no cover - classification bug
            raise AssertionError(f"not an engine bind: {b!r}")
        if cont is None:
            self.instrs[idx][-1] = self.pc

    # -- stable expressions --------------------------------------------

    def expr(self, e: S.Expr, sc: _Scope, k) -> None:
        """Flatten a stable expression.

        ``k`` is the continuation: ``_RETK`` (deliver the value to the
        control stack) or ``(slot, ref)`` (store into ``slot`` of this
        frame and jump to ``ref``).
        """
        steps: list = []

        def flush() -> None:
            if steps:
                self.emit([OP_STEPS, _steps_run(steps)])
                del steps[:]

        while True:
            t = type(e)
            if t is S.ELet:
                b = e.bind
                g = self.pure_bind(b, sc)
                if g is not None:
                    steps.append((sc.bind(e.name), g))
                    e = e.body
                    continue
                flush()
                tb = type(b)
                if tb is S.BApp or tb is S.BMemoApp or tb is S.BMod:
                    if _is_ret_of(e.body, e.name):
                        # Tail position: the let-bound result is returned
                        # (or stored) immediately -- compile the call as a
                        # jump so deep recursion costs control-stack
                        # entries, never Python frames.
                        if k is _RETK:
                            if tb is S.BApp:
                                self.emit([
                                    OP_TCALL,
                                    _STAGE.atom(b.fn, sc),
                                    _STAGE.atom(b.arg, sc),
                                ])
                            elif tb is S.BMemoApp:
                                gf, ga = self._memo_getters(b, sc)
                                self.emit([OP_TMEMO, gf, ga])
                            else:
                                self.emit([OP_MOD, None, None])
                                self.cexpr(b.body, sc)
                            return
                        # (slot, ref) continuation: deliver straight into
                        # the outer slot and jump, skipping e.name's slot.
                        self.bind_engine(b, k[0], sc, k[1])
                        return
                    self.bind_engine(b, sc.bind(e.name), sc, None)
                    e = e.body
                    continue
                # Control-flow bind: BIf / BCase / BCaseConst.  The arms
                # are full stable expressions; flatten them with a
                # continuation that stores the bind's value.
                if _is_ret_of(e.body, e.name):
                    self.branch_bind(b, sc, k)
                    return
                slot = sc.bind(e.name)
                join = _Ref()
                self.branch_bind(b, sc, (slot, join))
                join.pc = self.pc
                e = e.body
            elif t is S.ELetRec:
                slots = [sc.bind(name) for name, _ in e.bindings]
                for slot, (name, lam) in zip(slots, e.bindings):
                    steps.append((slot, self.lam(lam, sc, name=name)))
                e = e.body
            elif t is S.ERet:
                g = _STAGE.atom(e.atom, sc)
                flush()
                if k is _RETK:
                    self.emit([OP_RET, g])
                else:
                    self.emit([OP_STOREJ, k[0], g, k[1]])
                return
            else:  # pragma: no cover - closed IR
                raise AssertionError(f"unknown expr {e!r}")

    def branch_bind(self, b: S.Bind, sc: _Scope, k) -> None:
        """Flatten a BIf/BCase/BCaseConst bind; every arm ends in ``k``."""
        t = type(b)
        if t is S.BIf:
            gcond = _STAGE.atom(b.cond, sc)
            els = _Ref()
            self.emit([OP_IF, gcond, els])
            self.expr(b.then, sc, k)
            els.pc = self.pc
            self.expr(b.els, sc, k)
            return
        if t is S.BCase:
            gscrut, sslot = self._scrut(b.scrut, sc)
            table: dict = {}
            arms = []
            for clause in b.clauses:
                cslot = (
                    sc.bind(clause.binder)
                    if clause.binder is not None
                    else None
                )
                if clause.tag not in table:
                    ref = _Ref()
                    table[clause.tag] = (cslot, ref)
                    arms.append((ref, clause.body))
            dflt = _Ref() if b.default is not None else None
            self.emit([OP_CASE, gscrut, sslot, table, dflt])
            for ref, body in arms:
                ref.pc = self.pc
                self.expr(body, sc, k)
            if dflt is not None:
                dflt.pc = self.pc
                self.expr(b.default, sc, k)
            return
        if t is S.BCaseConst:
            gscrut = _STAGE.atom(b.scrut, sc)
            arm_map: dict = {}
            arms = []
            for value, body in b.arms:
                key = (type(value), value)
                if key not in arm_map:
                    ref = _Ref()
                    arm_map[key] = ref
                    arms.append((ref, body))
            dflt = _Ref() if b.default is not None else None
            self.emit([OP_CASEK, gscrut, arm_map, dflt])
            for ref, body in arms:
                ref.pc = self.pc
                self.expr(body, sc, k)
            if dflt is not None:
                dflt.pc = self.pc
                self.expr(b.default, sc, k)
            return
        raise AssertionError(f"not a branching bind: {b!r}")

    def _scrut(self, a: S.Atom, sc: _Scope):
        """(getter, slot) for a case scrutinee -- slot dispatch when local."""
        slot = _STAGE._local_slot(a, sc)
        if slot is not None:
            return None, slot
        return _STAGE.atom(a, sc), None

    # -- changeable expressions ----------------------------------------

    def cexpr(self, e: S.CExpr, sc: _Scope) -> None:
        """Flatten a changeable expression (terminal: write or read)."""
        steps: list = []

        def flush() -> None:
            if steps:
                self.emit([OP_STEPS, _steps_run(steps)])
                del steps[:]

        while True:
            t = type(e)
            if t is S.CLet:
                b = e.bind
                g = self.pure_bind(b, sc)
                if g is not None:
                    steps.append((sc.bind(e.name), g))
                    e = e.body
                    continue
                flush()
                tb = type(b)
                if tb is S.BApp or tb is S.BMemoApp or tb is S.BMod:
                    self.bind_engine(b, sc.bind(e.name), sc, None)
                else:
                    slot = sc.bind(e.name)
                    join = _Ref()
                    self.branch_bind(b, sc, (slot, join))
                    join.pc = self.pc
                e = e.body
            elif t is S.CLetRec:
                slots = [sc.bind(name) for name, _ in e.bindings]
                for slot, (name, lam) in zip(slots, e.bindings):
                    steps.append((slot, self.lam(lam, sc, name=name)))
                e = e.body
            elif t is S.CImpWrite:
                gref = _STAGE.atom(e.ref, sc)
                gval = _STAGE.atom(e.value, sc)
                impwrite = self.rt.engine.impwrite
                steps.append(
                    (None, lambda f, _gr=gref, _gv=gval: impwrite(_gr(f), _gv(f)))
                )
                e = e.body
            elif t is S.CWrite:
                slot = _STAGE._local_slot(e.atom, sc)
                flush()
                if slot is not None:
                    self.emit([OP_WRITES, slot])
                else:
                    self.emit([OP_WRITE, _STAGE.atom(e.atom, sc)])
                return
            elif t is S.CRead:
                flush()
                self.cread(e, sc)
                return
            elif t is S.CIf:
                gcond = _STAGE.atom(e.cond, sc)
                flush()
                els = _Ref()
                self.emit([OP_IF, gcond, els])
                self.cexpr(e.then, sc)
                els.pc = self.pc
                self.cexpr(e.els, sc)
                return
            elif t is S.CCase:
                gscrut, sslot = self._scrut(e.scrut, sc)
                flush()
                self.ccase_arms(e, sc, gscrut, sslot)
                return
            elif t is S.CCaseConst:
                gscrut = _STAGE.atom(e.scrut, sc)
                flush()
                arm_map: dict = {}
                arms = []
                for value, body in e.arms:
                    key = (type(value), value)
                    if key not in arm_map:
                        ref = _Ref()
                        arm_map[key] = ref
                        arms.append((ref, body))
                dflt = _Ref() if e.default is not None else None
                self.emit([OP_CASEK, gscrut, arm_map, dflt])
                for ref, body in arms:
                    ref.pc = self.pc
                    self.cexpr(body, sc)
                if dflt is not None:
                    dflt.pc = self.pc
                    self.cexpr(e.default, sc)
                return
            else:  # pragma: no cover - closed IR
                raise AssertionError(f"unknown cexpr {e!r}")

    def ccase_arms(self, e, sc: _Scope, gscrut, sslot) -> None:
        """Emit a changeable case dispatch plus its arm bodies."""
        table: dict = {}
        arms = []
        for clause in e.clauses:
            cslot = (
                sc.bind(clause.binder) if clause.binder is not None else None
            )
            if clause.tag not in table:
                ref = _Ref()
                table[clause.tag] = (cslot, ref)
                arms.append((ref, clause.body))
        dflt = _Ref() if e.default is not None else None
        self.emit([OP_CASE, gscrut, sslot, table, dflt])
        for ref, body in arms:
            ref.pc = self.pc
            self.cexpr(body, sc)
        if dflt is not None:
            dflt.pc = self.pc
            self.cexpr(e.default, sc)

    def cread(self, e: S.CRead, sc: _Scope) -> None:
        """Flatten a read: copy-read fusion, fused read-case, or general.

        The reader body compiles as its own frame unit (fresh frame per
        (re-)execution, like both other backends); the fused read-case
        shape puts the ``CASE`` dispatch at the reader's entry so
        re-execution dispatches on the fresh value directly.
        """
        gsrc = _STAGE.atom(e.src, sc)
        body_e = e.body
        if (
            type(body_e) is S.CWrite
            and type(body_e.atom) is S.AVar
            and not body_e.atom.is_builtin
            and body_e.atom.name == e.binder
        ):
            # Copy read (``read x as v in write v``, the coercion shape of
            # Section 3.3): the registered reader is just
            # ``write(dest, value)`` -- identical to the other backends,
            # so its re-execution never enters the machine.
            self.emit([OP_READC, gsrc])
            return
        unit = _Unit()
        inner = _Scope(unit, sc)
        code = Code(f"reader:{e.binder}")
        code.param = inner.bind(e.binder)
        em = _Flattener(self.rt, code.name)
        if (
            type(body_e) is S.CCase
            and type(body_e.scrut) is S.AVar
            and body_e.scrut.name == e.binder
        ):
            # Fused read-then-match: dispatch on the read value directly.
            em.ccase_arms(body_e, inner, None, code.param)
        else:
            em.cexpr(body_e, inner)
        code.instrs = em.finalize()
        code.size = unit.size
        self.emit([OP_READ, gsrc, code, code.param])


class StackSelfAdjusting:
    """The stack-machine backend.

    A drop-in alternative to ``SelfAdjustingInterpreter`` /
    ``CompiledSelfAdjusting``: same constructor, same ``run``/``apply``
    surface, same engine-primitive sequence -- but initial runs and
    re-executions proceed with constant Python stack depth, so deep
    workloads need no recursion-limit tuning.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def run(self, expr: S.Expr) -> Any:
        unit = _Unit()
        sc = _Scope(unit)
        em = _Flattener(self, "main")
        em.expr(expr, sc, _RETK)
        code = Code("main")
        code.instrs = em.finalize()
        code.size = unit.size
        frame: List[Any] = [None] * code.size
        return self._execute(code.instrs, frame, None, _DONE)

    def apply(self, fn: Any, arg: Any) -> Any:
        if type(fn) is StackClosure:
            code = fn.code
            frame = [None] * code.size
            frame[0] = fn.frame
            frame[code.param] = arg
            return self._execute(code.instrs, frame, None, _DONE)
        if isinstance(fn, BuiltinFn):
            return fn.fn(self, arg)
        raise LmlRuntimeError(f"application of non-function {fn!r}")

    # ------------------------------------------------------------------

    def _execute(
        self,
        instrs: Tuple[tuple, ...],
        frame: list,
        dest: Optional[Modifiable],
        base: tuple,
    ) -> Any:
        """The dispatch loop: run ``instrs`` until ``base`` pops.

        One invocation is one Python frame; all nesting -- calls, memo
        intervals, mods, reads -- lives on the explicit ``ctrl`` stack.
        """
        engine = self.engine
        read_begin = engine.read_begin
        read_end = engine.read_end
        mod_begin = engine.mod_begin
        mod_end = engine.mod_end
        memo_probe = engine.memo_probe
        memo_commit = engine.memo_commit
        engine_write = engine.write
        ctrl: List[tuple] = [base]
        push = ctrl.append
        pop = ctrl.pop
        pc = 0
        try:
            while True:
                # ---- dispatch until a value return (1) or unwind (2)
                action = 0
                value = None
                while True:
                    ins = instrs[pc]
                    op = ins[0]
                    if op == OP_STEPS:
                        ins[1](frame)
                        pc += 1
                    elif op == OP_READ:
                        src = ins[1](frame)
                        if not isinstance(src, Modifiable):
                            raise LmlRuntimeError(
                                f"read of a non-modifiable value: {src!r}"
                            )
                        rcode = ins[2]
                        reader = StackReader(self, rcode, frame, dest)
                        edge, rvalue = read_begin(src, reader)
                        push((K_READ, edge))
                        # Fresh frame per (re-)execution, like the other
                        # backends' fresh reader env/frame.
                        frame = [None] * rcode.size
                        frame[0] = reader.frame
                        frame[ins[3]] = rvalue
                        instrs = rcode.instrs
                        pc = 0
                    elif op == OP_CASE:
                        g = ins[1]
                        scrut = frame[ins[2]] if g is None else g(frame)
                        ent = ins[3].get(scrut.tag)
                        if ent is not None:
                            bslot, pc = ent
                            if bslot is not None:
                                frame[bslot] = scrut.arg
                        elif ins[4] is not None:
                            pc = ins[4]
                        else:
                            raise MatchFailure(f"no clause for {scrut.tag}")
                    elif op == OP_MOD:
                        dmod, checkpoint = mod_begin()
                        push((
                            K_MOD, dmod, checkpoint, dest,
                            instrs, frame, ins[1], ins[2],
                        ))
                        dest = dmod
                        pc += 1
                    elif op == OP_WRITES:
                        engine_write(dest, frame[ins[1]])
                        action = 2
                        break
                    elif op == OP_WRITE:
                        engine_write(dest, ins[1](frame))
                        action = 2
                        break
                    elif op == OP_READC:
                        src = ins[1](frame)
                        if not isinstance(src, Modifiable):
                            raise LmlRuntimeError(
                                f"read of a non-modifiable value: {src!r}"
                            )
                        reader = partial(engine_write, dest)
                        edge, rvalue = read_begin(src, reader)
                        push((K_READ, edge))
                        reader(rvalue)
                        pop()
                        read_end(edge)
                        action = 2
                        break
                    elif op == OP_MEMO or op == OP_TMEMO:
                        tail = op == OP_TMEMO
                        if tail:
                            _o, gf, ga = ins
                            slot = cont = None
                        else:
                            _o, slot, gf, ga, cont = ins
                        fn = gf(frame)
                        kf = (
                            fn if type(fn) is StackClosure else memo_key(fn)
                        )
                        arg = ga(frame)
                        ta = type(arg)
                        if (
                            ta is Modifiable or ta is int or ta is str
                            or ta is bool
                        ):
                            ka = arg
                        elif ta is ConValue:
                            ka = arg.memo_key()
                        else:
                            ka = memo_key(arg)
                        hit, result, entry = memo_probe((kf, ka))
                        if hit:
                            if tail:
                                value = result
                                action = 1
                                break
                            frame[slot] = result
                            pc = cont
                        elif type(fn) is StackClosure:
                            if not tail:
                                push((K_RET, instrs, frame, slot, cont))
                            push((K_MEMO, entry))
                            rcode = fn.code
                            nf = [None] * rcode.size
                            nf[0] = fn.frame
                            nf[rcode.param] = arg
                            frame = nf
                            instrs = rcode.instrs
                            pc = 0
                        elif isinstance(fn, BuiltinFn):
                            result = fn.fn(self, arg)
                            memo_commit(entry, result)
                            if tail:
                                value = result
                                action = 1
                                break
                            frame[slot] = result
                            pc = cont
                        else:
                            raise LmlRuntimeError(
                                f"application of non-function {fn!r}"
                            )
                    elif op == OP_CALL or op == OP_TCALL:
                        if op == OP_CALL:
                            _o, slot, gf, ga, cont = ins
                        else:
                            _o, gf, ga = ins
                        fn = gf(frame)
                        arg = ga(frame)
                        if type(fn) is StackClosure:
                            if op == OP_CALL:
                                push((K_RET, instrs, frame, slot, cont))
                            rcode = fn.code
                            nf = [None] * rcode.size
                            nf[0] = fn.frame
                            nf[rcode.param] = arg
                            frame = nf
                            instrs = rcode.instrs
                            pc = 0
                        elif isinstance(fn, BuiltinFn):
                            result = fn.fn(self, arg)
                            if op == OP_TCALL:
                                value = result
                                action = 1
                                break
                            frame[slot] = result
                            pc = cont
                        else:
                            raise LmlRuntimeError(
                                f"application of non-function {fn!r}"
                            )
                    elif op == OP_RET:
                        value = ins[1](frame)
                        action = 1
                        break
                    elif op == OP_STOREJ:
                        frame[ins[1]] = ins[2](frame)
                        pc = ins[3]
                    elif op == OP_IF:
                        if ins[1](frame):
                            pc += 1
                        else:
                            pc = ins[2]
                    elif op == OP_CASEK:
                        scrut = ins[1](frame)
                        pc = ins[2].get((type(scrut), scrut))
                        if pc is None:
                            pc = ins[3]
                            if pc is None:
                                raise MatchFailure(f"no arm for {scrut!r}")
                    else:  # pragma: no cover - compiler bug
                        raise AssertionError(f"unknown opcode {op}")

                # ---- return / unwind through the control stack
                while True:
                    top = pop()
                    k = top[0]
                    if action == 1:
                        if k == K_MEMO:
                            memo_commit(top[1], value)
                            continue
                        if k == K_RET:
                            instrs = top[1]
                            frame = top[2]
                            frame[top[3]] = value
                            pc = top[4]
                            break
                        if k == K_DONE:
                            return value
                        raise AssertionError("corrupt control stack")
                    # action == 2: a changeable chain finished (write /
                    # copy-read); close the enclosing read and mod
                    # intervals exactly as the recursive returns would.
                    if k == K_READ:
                        read_end(top[1])
                        continue
                    if k == K_MOD:
                        dmod = top[1]
                        mod_end(dmod, top[2])
                        dest = top[3]
                        slot = top[6]
                        if slot is None:
                            # Tail-position mod: its destination is the
                            # value being returned.
                            value = dmod
                            action = 1
                            continue
                        instrs = top[4]
                        frame = top[5]
                        frame[slot] = dmod
                        pc = top[7]
                        break
                    if k == K_DONEC:
                        return None
                    raise AssertionError("corrupt control stack")
        except BaseException:
            # Mirror the recursive backends' try/finally nesting: release
            # open intervals innermost-first, truncating at the outermost
            # transactional mod, then re-raise unmangled so the engine's
            # failure handling (transactional abort, rollback/rebuild,
            # lazy-demand hazards, fault injection) sees exactly what it
            # would from the other backends.
            read_abort = engine.read_abort
            mod_abort = engine.mod_abort
            while ctrl:
                top = ctrl.pop()
                k = top[0]
                if k == K_READ:
                    read_abort(top[1])
                elif k == K_MOD:
                    mod_abort(top[1], top[2])
            raise
