"""The closure-compilation backend (``backend="compiled"``).

Stages translated SXML into nested Python closures with slot-indexed
frames, eliminating per-step AST dispatch and environment-chain lookups
from runtime execution.  See :mod:`repro.compile.closures` for the staging
pass and README "Backends" for how to select it.
"""

from repro.compile.closures import CompClosure, CompiledSelfAdjusting

__all__ = ["CompClosure", "CompiledSelfAdjusting"]
