"""Backend registry and the single backend-resolution path.

The repository grew three ways to pick the self-adjusting execution
backend -- a ``backend=`` keyword, the CLI's ``--backend`` flag, and the
``REPRO_BACKEND`` environment variable -- each resolved in a different
place.  This module is now the only resolver; everything (``Session``,
the CLI, the test suite, the benchmark harness) funnels through
:func:`resolve_backend`.

Precedence, highest first:

1. an explicit request (``backend=`` keyword / ``--backend`` flag);
2. the ``REPRO_BACKEND`` environment variable (CI runs the whole suite
   under ``REPRO_BACKEND=compiled``; an empty value counts as unset);
3. the default, ``"interp"``.
"""

from __future__ import annotations

import os
from typing import Optional

#: The self-adjusting execution backends (README "Backends"): ``interp``
#: walks the translated SXML; ``compiled`` stages it into Python closures
#: (:mod:`repro.compile`) for zero-dispatch execution; ``stack`` flattens
#: it into instruction sequences driven by an explicit control stack
#: (:mod:`repro.compile.stackmachine`) for zero-recursion execution of
#: deep workloads.
BACKENDS = ("interp", "compiled", "stack")

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_BACKEND"

DEFAULT_BACKEND = "interp"


def resolve_backend(explicit: Optional[str] = None) -> str:
    """Resolve the backend name: explicit flag > ``$REPRO_BACKEND`` > default.

    Raises ``ValueError`` for a name outside :data:`BACKENDS`, naming the
    source (argument or environment) that supplied it.
    """
    if explicit is not None:
        if explicit not in BACKENDS:
            raise ValueError(
                f"backend={explicit!r} is not a backend (expected one of {BACKENDS})"
            )
        return explicit
    from_env = os.environ.get(BACKEND_ENV_VAR)
    if from_env:
        if from_env not in BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV_VAR}={from_env!r} is not a backend "
                f"(expected one of {BACKENDS})"
            )
        return from_env
    return DEFAULT_BACKEND
