"""Measurement harness for the paper's tables and figures.

* :mod:`repro.bench.runner` -- timing/space measurement of one benchmark
  configuration (conventional run, self-adjusting run, average propagation);
* :mod:`repro.bench.handwritten` -- hand-written self-adjusting programs
  against the Python runtime API (the AFL baseline of Section 4.9);
* :mod:`repro.bench.report` -- paper-style table and series formatting.
"""

from repro.bench.runner import BenchRow, measure_handwritten
from repro.bench.report import (
    format_normalized,
    format_phases,
    format_series,
    format_table,
)

__all__ = [
    "BenchRow",
    "format_normalized",
    "format_phases",
    "format_series",
    "format_table",
    "measure_handwritten",
]
