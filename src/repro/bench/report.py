"""Paper-style table and series formatting for benchmark results."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.bench.runner import BenchRow


def _fmt_time(seconds: float) -> str:
    if seconds != seconds:  # NaN
        return "-"
    if seconds >= 0.1:
        return f"{seconds:.2f}"
    if seconds >= 1e-3:
        return f"{seconds*1e3:.2f}e-3"
    return f"{seconds:.1e}"


def _fmt_ratio(value: float) -> str:
    if value != value:
        return "-"
    if value >= 1000:
        return f"{value:.1e}"
    return f"{value:.1f}"


def format_table(rows: Iterable[BenchRow], title: str = "") -> str:
    """Render rows in the layout of the paper's Table 1."""
    header = (
        f"{'Application (n)':<24} {'Conv. Run (s)':>14} {'Self-Adj. Run (s)':>18} "
        f"{'Avg. Prop. (s)':>15} {'Overhead':>9} {'Speedup':>9}"
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.name + f'({row.n})':<24} {_fmt_time(row.conv_run):>14} "
            f"{_fmt_time(row.sa_run):>18} {_fmt_time(row.avg_prop):>15} "
            f"{_fmt_ratio(row.overhead):>9} {_fmt_ratio(row.speedup):>9}"
        )
    return "\n".join(lines)


#: Meter counters shown by :func:`format_phases`, in column order.
_PHASE_COUNTERS = (
    ("reads_executed", "reads"),
    ("edges_reexecuted", "reexec"),
    ("writes", "writes"),
    ("changed_writes", "changed"),
    ("memo_hits", "memo hit"),
    ("memo_misses", "memo miss"),
    ("mods_created", "mods"),
)


def format_phases(rows: Iterable[BenchRow], title: str = "") -> str:
    """Render per-phase timing and engine-counter deltas.

    One line per (row, phase): wall time of the phase plus the meter
    counters it consumed (reads executed, edges re-executed, writes, memo
    hits/misses, modifiables created).  Rows without phase data are
    skipped.
    """
    header = (
        f"{'Application (n)':<22} {'phase':<12} {'time (s)':>10} "
        + " ".join(f"{label:>10}" for _, label in _PHASE_COUNTERS)
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        for phase_name, phase in row.phases.items():
            counters = phase.get("counters", {})
            cells = " ".join(
                f"{counters.get(key, 0):>10}" for key, _ in _PHASE_COUNTERS
            )
            label = f"{row.name}({row.n})"
            lines.append(
                f"{label:<22} {phase_name:<12} "
                f"{_fmt_time(phase['seconds']):>10} {cells}"
            )
    return "\n".join(lines)


def format_series(
    title: str,
    xs: Sequence,
    series: dict,
    x_label: str = "n",
    fmt=lambda v: f"{v:.4g}",
) -> str:
    """Render figure data as an aligned text table: one row per x value."""
    names = list(series)
    header = f"{x_label:>10} " + " ".join(f"{name:>16}" for name in names)
    lines = [title, header, "-" * len(header)]
    for i, x in enumerate(xs):
        cells = " ".join(f"{fmt(series[name][i]):>16}" for name in names)
        lines.append(f"{x:>10} {cells}")
    return "\n".join(lines)


def format_normalized(
    title: str,
    benchmarks: Sequence[str],
    series: dict,
    baseline: str,
) -> str:
    """Render a normalized bar-chart-style table (the paper's Figure 9):
    every series divided by the baseline series, per benchmark."""
    names = list(series)
    header = f"{'benchmark':>12} " + " ".join(f"{name:>14}" for name in names)
    lines = [title + f"  (normalized to {baseline} = 1.0)", header, "-" * len(header)]
    for i, bench in enumerate(benchmarks):
        base = series[baseline][i]
        cells = " ".join(
            f"{(series[name][i] / base if base else float('nan')):>14.2f}"
            for name in names
        )
        lines.append(f"{bench:>12} {cells}")
    return "\n".join(lines)
