"""Benchmark measurement (the paper's Section 4.2 methodology, scaled).

For each configuration we measure:

* **Conv. Run** -- wall time of the conventional executable;
* **Self-Adj. Run** -- wall time of the initial self-adjusting run
  (builds the trace);
* **Self-Adj. Avg. Prop.** -- average time of change propagation over a
  sample of random incremental changes;
* **Overhead** = self-adjusting run / conventional run;
* **Speedup** = conventional run / average propagation;
* **trace size** -- live timestamps + edges + memo entries, the paper's
  space axis (DESIGN.md explains why we report trace size instead of RSS).

As in the paper, timings exclude input construction, the initial run is
excluded from propagation timings, and garbage collection is excluded from
timed sections by default (Section 4.10 discusses GC separately;
``gc_enabled=True`` reproduces Figure 10's inclusive timing).
"""

from __future__ import annotations

import gc
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.base import App
from repro.sac.engine import Engine


@dataclass
class BenchRow:
    """One measured configuration (one row of Table 1 / one point of a
    figure)."""

    name: str
    n: int
    conv_run: float
    sa_run: float
    avg_prop: float
    trace_size: int = 0
    mods_created: int = 0
    prop_samples: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        return self.sa_run / self.conv_run if self.conv_run > 0 else float("nan")

    @property
    def speedup(self) -> float:
        return self.conv_run / self.avg_prop if self.avg_prop > 0 else float("inf")

    @property
    def phases(self) -> dict:
        """Per-phase timing and meter-counter deltas (may be empty)."""
        return self.extra.get("phases", {})


def _phase(seconds: float, before: dict, after: dict, samples: int = 1) -> dict:
    """One per-phase record: wall time plus nonzero meter-counter deltas."""
    counters = {
        key: after.get(key, 0) - before.get(key, 0)
        for key in after
        if after.get(key, 0) != before.get(key, 0)
    }
    return {"seconds": seconds, "samples": samples, "counters": counters}


def _timed(fn: Callable[[], Any], gc_enabled: bool) -> float:
    """Wall time of one call, optionally with the collector disabled."""
    was_enabled = gc.isenabled()
    if not gc_enabled and was_enabled:
        gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        if not gc_enabled and was_enabled:
            gc.enable()


def measure_handwritten(
    name: str,
    run: Callable[[Engine, Any], Any],
    app: App,
    n: int,
    *,
    prop_samples: int = 20,
    seed: int = 0,
    gc_enabled: bool = False,
) -> BenchRow:
    """Measure a hand-written (AFL-style) self-adjusting program.

    ``run(engine, input_value)`` performs the initial run and returns the
    output.  Inputs, changes, and the conventional baseline come from the
    corresponding compiled app so the comparison is apples-to-apples.
    """
    rng = random.Random(seed)
    data = app.make_data(n, rng)

    program = app.compiled()
    conv = program.conventional_instance()
    conv_input = app.make_conv_input(data)
    conv_time = _timed(lambda: conv.apply(conv_input), gc_enabled)

    engine = Engine()
    input_value, handle = app.make_sa_input(engine, data)
    before_run = engine.meter.snapshot()
    sa_time = _timed(lambda: run(engine, input_value), gc_enabled)
    after_run = engine.meter.snapshot()

    prop_total = 0.0
    for step in range(prop_samples):
        app.apply_change(handle, rng, step)
        prop_total += _timed(engine.propagate, gc_enabled)
    avg_prop = prop_total / prop_samples if prop_samples else float("nan")
    after_prop = engine.meter.snapshot()

    row = BenchRow(
        name=name,
        n=n,
        conv_run=conv_time,
        sa_run=sa_time,
        avg_prop=avg_prop,
        trace_size=engine.trace_size(),
        mods_created=engine.meter.mods_created,
        prop_samples=prop_samples,
    )
    row.extra["phases"] = {
        "initial-run": _phase(sa_time, before_run, after_run),
        "propagation": _phase(
            prop_total, after_run, after_prop, samples=max(prop_samples, 1)
        ),
    }
    return row
