"""Hand-written self-adjusting programs (the AFL baseline, Section 4.9).

These are direct Python ports of the list benchmarks against the runtime
API of :class:`repro.sac.Engine`, with hand-placed ``mod``/``read``/
``write`` and hand-chosen memoization -- structured like the published AFL
combinator-library benchmarks.  They operate on the same input
representation as the compiled programs (:class:`ModListInput` cells), so
the measurement harness can drive both identically.

Being native Python rather than interpreted SXML, they play the role of
AFL's "carefully engineered hand-written library": somewhat faster than the
compiler's output, at the cost of writing all the plumbing by hand --
compare the bodies below with the two-line annotations of
:mod:`repro.apps.listops`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.interp.values import ConValue
from repro.sac.api import IdKey
from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable

NIL = ConValue("Nil")


def _cons(head: Any, tail: Modifiable) -> ConValue:
    return ConValue("Cons", (head, tail))


def _mangle(h: int) -> int:
    return h // 3 + h // 5 + h // 7


def hand_map(engine: Engine, head: Modifiable, f: Callable = _mangle) -> Modifiable:
    """AFL-style memoized list map."""

    def go(l: Modifiable) -> Modifiable:
        def comp(dest: Modifiable) -> None:
            def on_cell(cell: ConValue) -> None:
                if cell.arg is None:
                    engine.write(dest, NIL)
                else:
                    h, t = cell.arg
                    r = engine.memo(("map", IdKey(t)), lambda: go(t))
                    engine.write(dest, _cons(f(h), r))

            engine.read(l, on_cell)

        return engine.mod(comp)

    return go(head)


def hand_filter(engine: Engine, head: Modifiable) -> Modifiable:
    """AFL-style memoized filter (copy-through on dropped elements)."""

    def go(l: Modifiable) -> Modifiable:
        def comp(dest: Modifiable) -> None:
            def on_cell(cell: ConValue) -> None:
                if cell.arg is None:
                    engine.write(dest, NIL)
                else:
                    h, t = cell.arg
                    r = engine.memo(("filter", IdKey(t)), lambda: go(t))
                    if _mangle(h) % 2 == 0:
                        engine.write(dest, _cons(h, r))
                    else:
                        engine.read(r, lambda c: engine.write(dest, c))

            engine.read(l, on_cell)

        return engine.mod(comp)

    return go(head)


def hand_split(engine: Engine, head: Modifiable):
    """Two filter passes returning a stable pair of changeable lists."""

    def half(keep_parity: int, l: Modifiable) -> Modifiable:
        def go(l: Modifiable) -> Modifiable:
            def comp(dest: Modifiable) -> None:
                def on_cell(cell: ConValue) -> None:
                    if cell.arg is None:
                        engine.write(dest, NIL)
                    else:
                        h, t = cell.arg
                        r = engine.memo(("split", keep_parity, IdKey(t)), lambda: go(t))
                        if h % 2 == keep_parity:
                            engine.write(dest, _cons(h, r))
                        else:
                            engine.read(r, lambda c: engine.write(dest, c))

                engine.read(l, on_cell)

            return engine.mod(comp)

        return go(l)

    return (half(0, head), half(1, head))


def hand_qsort(engine: Engine, head: Modifiable) -> Modifiable:
    """AFL-style accumulator quicksort with memoized filters."""

    def filt(pred_key: str, p: int, keep: Callable, l: Modifiable) -> Modifiable:
        def go(l: Modifiable) -> Modifiable:
            def comp(dest: Modifiable) -> None:
                def on_cell(cell: ConValue) -> None:
                    if cell.arg is None:
                        engine.write(dest, NIL)
                    else:
                        h, t = cell.arg
                        r = engine.memo((pred_key, p, IdKey(t)), lambda: go(t))
                        if keep(h):
                            engine.write(dest, _cons(h, r))
                        else:
                            engine.read(r, lambda c: engine.write(dest, c))

                engine.read(l, on_cell)

            return engine.mod(comp)

        return go(l)

    def qs(l: Modifiable, rest: Modifiable) -> Modifiable:
        def comp(dest: Modifiable) -> None:
            def on_cell(cell: ConValue) -> None:
                if cell.arg is None:
                    engine.read(rest, lambda c: engine.write(dest, c))
                else:
                    h, t = cell.arg
                    le = engine.memo(
                        ("lt", h, IdKey(t)), lambda: filt("lt", h, lambda x: x < h, t)
                    )
                    gt = engine.memo(
                        ("ge", h, IdKey(t)), lambda: filt("ge", h, lambda x: x >= h, t)
                    )
                    bigger = engine.memo(
                        ("qs", IdKey(gt), IdKey(rest)), lambda: qs(gt, rest)
                    )
                    mid = engine.mod(lambda d: engine.write(d, _cons(h, bigger)))
                    smaller = engine.memo(
                        ("qs", IdKey(le), IdKey(mid)), lambda: qs(le, mid)
                    )
                    engine.read(smaller, lambda c: engine.write(dest, c))

            engine.read(l, on_cell)

        return engine.mod(comp)

    nil_mod = engine.mod(lambda d: engine.write(d, NIL))
    return qs(head, nil_mod)


def hand_msort(engine: Engine, head: Modifiable) -> Modifiable:
    """AFL-style mergesort with value-bit division (see apps.listops)."""

    def half(b: int, m: int, l: Modifiable) -> Modifiable:
        def go(l: Modifiable) -> Modifiable:
            def comp(dest: Modifiable) -> None:
                def on_cell(cell: ConValue) -> None:
                    if cell.arg is None:
                        engine.write(dest, NIL)
                    else:
                        h, t = cell.arg
                        r = engine.memo(("half", b, m, IdKey(t)), lambda: go(t))
                        if (h // m) % 2 == b:
                            engine.write(dest, _cons(h, r))
                        else:
                            engine.read(r, lambda c: engine.write(dest, c))

                engine.read(l, on_cell)

            return engine.mod(comp)

        return go(l)

    def cp(l: Modifiable) -> Modifiable:
        """Identity-stable copy: output cells keyed by the input cells, so
        merge's exhaustion case never shares the other list's spine (see
        apps.listops for why sharing cascades)."""

        def comp(dest: Modifiable) -> None:
            def on_cell(cell: ConValue) -> None:
                if cell.arg is None:
                    engine.write(dest, NIL)
                else:
                    h, t = cell.arg
                    r = engine.memo(("cp", IdKey(t)), lambda: cp(t))
                    engine.write(dest, _cons(h, r))

            engine.read(l, on_cell)

        return engine.mod(comp)

    def merge(a: Modifiable, b: Modifiable) -> Modifiable:
        def comp(dest: Modifiable) -> None:
            def on_a(ca: ConValue) -> None:
                if ca.arg is None:
                    r = engine.memo(("cpm", IdKey(b)), lambda: cp(b))
                    engine.read(r, lambda c: engine.write(dest, c))
                    return
                ha, ta = ca.arg

                def on_b(cb: ConValue) -> None:
                    if cb.arg is None:
                        r = engine.memo(("cpm", IdKey(ta)), lambda: cp(ta))
                        engine.write(dest, _cons(ha, r))
                    elif ha <= cb.arg[0]:
                        r = engine.memo(
                            ("mg", IdKey(ta), IdKey(b)), lambda: merge(ta, b)
                        )
                        engine.write(dest, _cons(ha, r))
                    else:
                        hb, tb = cb.arg
                        r = engine.memo(
                            ("mg", IdKey(a), IdKey(tb)), lambda: merge(a, tb)
                        )
                        engine.write(dest, _cons(hb, r))

                engine.read(b, on_b)

            engine.read(a, on_a)

        return engine.mod(comp)

    def ms(l: Modifiable, m: int) -> Modifiable:
        def comp(dest: Modifiable) -> None:
            def on_cell(cell: ConValue) -> None:
                if cell.arg is None:
                    engine.write(dest, NIL)
                    return
                h, t = cell.arg

                def on_tail(tc: ConValue) -> None:
                    if tc.arg is None:
                        engine.write(dest, _cons(h, t))
                        return
                    h0 = engine.memo(("h0", m, IdKey(l)), lambda: half(0, m, l))
                    h1 = engine.memo(("h1", m, IdKey(l)), lambda: half(1, m, l))
                    s0 = engine.memo(("ms", 2 * m, IdKey(h0)), lambda: ms(h0, 2 * m))
                    s1 = engine.memo(("ms", 2 * m, IdKey(h1)), lambda: ms(h1, 2 * m))
                    r = engine.memo(("mg", IdKey(s0), IdKey(s1)), lambda: merge(s0, s1))
                    engine.read(r, lambda c: engine.write(dest, c))

                engine.read(t, on_tail)

            engine.read(l, on_cell)

        return engine.mod(comp)

    return ms(head, 1)


#: The hand-written programs usable with ``measure_handwritten``; keyed by
#: the compiled app they correspond to.
HANDWRITTEN = {
    "map": hand_map,
    "filter": hand_filter,
    "split": hand_split,
    "qsort": hand_qsort,
    "msort": hand_msort,
}


def hand_msort_keyed(engine: Engine, head: Modifiable) -> Modifiable:
    """Mergesort using the runtime's unsafe interface (``keyed_mod``).

    Identical division strategy to :func:`hand_msort`, but every merged
    output cell is allocated under a stable key ``(merge instance, element
    value)``.  When a change shifts the merge interleaving, the re-executed
    steps write equal contents into the *recycled* cells, so propagation
    cuts off instead of re-keying the suffix -- the fix for the cascade
    documented in DESIGN.md Section 6 (paper Section 4.9: "AFL provides an
    unsafe interface ... our compiler does not directly support these
    low-level primitives").
    """

    def half(b: int, m: int, l: Modifiable) -> Modifiable:
        def go(l: Modifiable) -> Modifiable:
            def comp(dest: Modifiable) -> None:
                def on_cell(cell: ConValue) -> None:
                    if cell.arg is None:
                        engine.write(dest, NIL)
                    else:
                        h, t = cell.arg
                        r = engine.memo(("kh", b, m, IdKey(t)), lambda: go(t))
                        if (h // m) % 2 == b:
                            engine.write(dest, _cons(h, r))
                        else:
                            engine.read(r, lambda c: engine.write(dest, c))

                engine.read(l, on_cell)

            return engine.mod(comp)

        return go(l)

    def merge(a: Modifiable, b: Modifiable) -> Modifiable:
        sid = (IdKey(a), IdKey(b))

        def produce(dest: Modifiable, ra: Modifiable, rb: Modifiable) -> None:
            """Write the merge of (ra, rb) into dest, one cell at a time;
            each successor cell's identity is keyed by its element."""

            def on_a(ca: ConValue) -> None:
                def on_b(cb: ConValue) -> None:
                    if ca.arg is None and cb.arg is None:
                        engine.write(dest, NIL)
                        return
                    if cb.arg is None or (
                        ca.arg is not None and ca.arg[0] <= cb.arg[0]
                    ):
                        h, na, nb = ca.arg[0], ca.arg[1], rb
                    else:
                        h, na, nb = cb.arg[0], ra, cb.arg[1]
                    nxt = engine.memo(
                        ("kmg", sid, h, IdKey(na), IdKey(nb)),
                        lambda: engine.keyed_mod(
                            ("kcell", sid, h), lambda d: produce(d, na, nb)
                        ),
                    )
                    engine.write(dest, _cons(h, nxt))

                engine.read(rb, on_b)

            engine.read(ra, on_a)

        return engine.memo(
            ("kmg-top", sid),
            lambda: engine.keyed_mod(("kcell-top", sid), lambda d: produce(d, a, b)),
        )

    def ms(l: Modifiable, m: int) -> Modifiable:
        def comp(dest: Modifiable) -> None:
            def on_cell(cell: ConValue) -> None:
                if cell.arg is None:
                    engine.write(dest, NIL)
                    return
                h, t = cell.arg

                def on_tail(tc: ConValue) -> None:
                    if tc.arg is None:
                        engine.write(dest, _cons(h, t))
                        return
                    h0 = engine.memo(("kh0", m, IdKey(l)), lambda: half(0, m, l))
                    h1 = engine.memo(("kh1", m, IdKey(l)), lambda: half(1, m, l))
                    s0 = engine.memo(("kms", 2 * m, IdKey(h0)), lambda: ms(h0, 2 * m))
                    s1 = engine.memo(("kms", 2 * m, IdKey(h1)), lambda: ms(h1, 2 * m))
                    r = engine.memo(("kmm", IdKey(s0), IdKey(s1)), lambda: merge(s0, s1))
                    engine.read(r, lambda c: engine.write(dest, c))

                engine.read(t, on_tail)

            engine.read(l, on_cell)

        return engine.mod(comp)

    return ms(head, 1)
