"""Fair round-robin scheduling of propagation slices across pooled docs.

One asyncio process hosts many engines, and change propagation is
synchronous CPU work: whoever holds the loop starves everyone else.  The
pool therefore never drains a document to completion in one go -- it runs
*slices* (``propagate(budget=...)``) and yields between them -- and this
scheduler decides whose slice runs next.

The discipline is plain round-robin over the set of documents with
pending work: a document that exhausts its budget goes to the *back* of
the ring, so a pathological client with an enormous dirty queue delays
its siblings by at most one slice each, while small edits on quiet
documents keep completing in one slice.  Admission is idempotent (a
document already in the ring is not enqueued twice), and
:meth:`discard` drops a closed document wherever it sits.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Optional, Set

__all__ = ["FairScheduler"]


class FairScheduler:
    """Round-robin ring of document keys with pending propagation work."""

    def __init__(self) -> None:
        self._ring: Deque[str] = deque()
        self._queued: Set[str] = set()
        self._wakeup = asyncio.Event()
        #: total scheduling decisions (enqueues + requeues), for stats
        self.scheduled = 0
        #: slices that ran out of budget and went to the back of the ring
        self.rotations = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __contains__(self, key: str) -> bool:
        return key in self._queued

    def enqueue(self, key: str) -> bool:
        """Admit ``key`` at the back of the ring (idempotent)."""
        if key in self._queued:
            return False
        self._queued.add(key)
        self._ring.append(key)
        self.scheduled += 1
        self._wakeup.set()
        return True

    def requeue(self, key: str) -> None:
        """Rotate ``key`` to the back: its slice ran out of budget."""
        if key in self._queued:  # pragma: no cover - defensive
            return
        self._queued.add(key)
        self._ring.append(key)
        self.scheduled += 1
        self.rotations += 1
        self._wakeup.set()

    def next(self) -> Optional[str]:
        """Pop the next key to run, or ``None`` if the ring is idle."""
        if not self._ring:
            self._wakeup.clear()
            return None
        key = self._ring.popleft()
        self._queued.discard(key)
        return key

    def discard(self, key: str) -> None:
        """Forget ``key`` entirely (document closed)."""
        if key in self._queued:
            self._queued.discard(key)
            try:
                self._ring.remove(key)
            except ValueError:  # pragma: no cover - defensive
                pass

    async def wait(self) -> None:
        """Block until at least one key is (or becomes) schedulable."""
        if self._ring:
            return
        self._wakeup.clear()
        await self._wakeup.wait()

    def kick(self) -> None:
        """Wake a pump blocked in :meth:`wait` (e.g. for shutdown)."""
        self._wakeup.set()

    def stats(self) -> dict:
        return {
            "pending": len(self._ring),
            "scheduled": self.scheduled,
            "rotations": self.rotations,
        }
