"""``repro.server``: many concurrent incremental sessions, one process.

The service layer over :class:`repro.api.Session` (DESIGN.md Section 9):

* :class:`~repro.server.pool.SessionPool` -- hosts one engine per client
  document, drains them in fair budgeted slices, and contains faults
  per-document (rollback, escalating to rebuild);
* :class:`~repro.server.scheduler.FairScheduler` -- the round-robin ring
  those slices run under;
* :mod:`repro.server.protocol` -- newline-delimited JSON frames over
  TCP / unix sockets (``serve``), plus the matching asyncio
  :class:`~repro.server.protocol.Client`.

Start one from the command line with ``python -m repro serve``.
"""

from repro.server.pool import (
    DocError,
    DocFailedError,
    PooledDoc,
    QuotaExceededError,
    SessionPool,
    UnknownDocError,
)
from repro.server.protocol import (
    Client,
    FrameTooLargeError,
    ServerError,
    serve,
)
from repro.server.scheduler import FairScheduler

__all__ = [
    "Client",
    "DocError",
    "DocFailedError",
    "FairScheduler",
    "FrameTooLargeError",
    "PooledDoc",
    "QuotaExceededError",
    "ServerError",
    "SessionPool",
    "UnknownDocError",
    "serve",
]
