"""`SessionPool`: hundreds of independent incremental sessions, one process.

Each client *document* is a :class:`repro.api.Session` -- its own engine,
trace, and handle namespace -- keyed by a document name.  The pool layers
three things on top that a lone ``Session`` cannot provide:

* **Admission + fair scheduling.**  Propagation is synchronous CPU work,
  so the pool never drains one document to completion while others wait:
  eager documents drain in ``propagate(budget=slice_budget)`` slices
  under a round-robin :class:`~repro.server.scheduler.FairScheduler`,
  lazy documents drain in equally sliced ``demand`` calls at read time,
  and the loop yields between slices so every client's frames keep
  flowing.
* **Wire addressing.**  ``open`` binds every input cell to a stable
  string handle (``"cell:<i>"``) plus ``"out"`` for the output, via the
  :meth:`Session.handle` layer -- so edits and reads address cells by
  serializable name, never by in-process object.
* **Per-document recovery.**  A fault inside one document's propagation
  is contained there: the pool rolls the document back
  (``on_error="rollback"``), escalating after ``max_rollbacks``
  consecutive rollbacks -- first to a **restore from the document's last
  checkpoint** (when ``checkpoint_dir`` is set), then to a from-scratch
  rebuild -- and marks the document failed only when no recovery
  applies.  Sibling documents never see any of it -- their engines share
  nothing but the event loop.
* **Durability** (``checkpoint_dir=...``).  Every document gets a
  content-addressed snapshot file plus an fsync'd write-ahead edit
  journal (:mod:`repro.persist`): edits are journaled before they are
  acknowledged, snapshots are written every ``checkpoint_every``
  acknowledged edits (piggybacking on drain completion, so checkpoints
  never race a propagation), and ``open`` of a previously checkpointed
  document recovers it warm -- restore the snapshot, replay the journal
  suffix, carry on.  Corrupt or mismatched checkpoint state degrades to
  a cold open (counted in stats), never a poisoned pool.
* **Admission quotas.**  ``max_edits_per_round`` / ``max_bytes_per_round``
  cap what one document may stage between drains; over-quota edits are
  rejected with :class:`QuotaExceededError` (a typed, per-request error)
  so one chatty client cannot starve the ring or balloon the journal.

The pool is asyncio-single-threaded: engine calls happen inline on the
loop (no locks), and concurrency comes from interleaving slices, not
threads.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import Session
from repro.persist import (
    JournalCorruptError,
    PersistError,
    SnapshotMismatchError,
    read_header,
)
from repro.persist import replay_journal as _replay_journal
from repro.sac.exceptions import (
    EnginePoisonedError,
    PropagationBudgetExceeded,
    ReexecutionError,
)

__all__ = [
    "DocError",
    "DocFailedError",
    "PooledDoc",
    "QuotaExceededError",
    "SessionPool",
    "UnknownDocError",
]

log = logging.getLogger("repro.server.pool")


class DocError(Exception):
    """Base class for per-document pool errors."""

    def __init__(self, doc: str, message: str) -> None:
        super().__init__(message)
        self.doc = doc


class UnknownDocError(DocError):
    """The named document is not open in this pool."""

    def __init__(self, doc: str) -> None:
        super().__init__(doc, f"unknown document {doc!r}")


class DocFailedError(DocError):
    """The document faulted and no recovery policy applied."""

    def __init__(self, doc: str, message: str) -> None:
        super().__init__(doc, f"document {doc!r} failed: {message}")


class QuotaExceededError(DocError):
    """The document hit its per-round admission quota.

    Raised *before* the edit is staged or journaled: the request fails,
    the document stays consistent and usable, and the quota clears when
    the document's staged work next drains.  On a lazy document (which
    otherwise drains only at reads) the quota hit itself schedules that
    drain, so retrying after it is never a dead end.
    """

    def __init__(self, doc: str, kind: str, used: int, limit: int) -> None:
        super().__init__(
            doc,
            f"document {doc!r} exceeded its per-round {kind} quota "
            f"({used} > {limit}); retry after the next drain",
        )
        self.kind = kind
        self.used = used
        self.limit = limit


@dataclass
class PooledDoc:
    """One hosted document: a session plus pool-side accounting."""

    name: str
    session: Session
    mode: str
    cells: List[str] = field(default_factory=list)
    out: Optional[str] = None
    #: futures resolved when the document's staged edits are fully drained
    waiters: List[asyncio.Future] = field(default_factory=list)
    #: write-ahead journal (checkpointing pools only)
    journal: Optional[Any] = None
    failed: bool = False
    error: Optional[str] = None
    edits: int = 0
    batches: int = 0
    reads: int = 0
    drains: int = 0
    slices: int = 0
    rollbacks: int = 0
    rebuilds: int = 0
    faults: int = 0
    consecutive_rollbacks: int = 0
    #: durability accounting (all zero when checkpointing is off)
    recovered: bool = False
    replayed: int = 0
    checkpoints: int = 0
    restores: int = 0
    snapshot_failures: int = 0
    consecutive_restores: int = 0
    ops_since_checkpoint: int = 0
    #: admission-quota accounting for the current scheduling round
    round_edits: int = 0
    round_bytes: int = 0
    quota_rejections: int = 0

    def check_usable(self) -> None:
        if self.failed:
            raise DocFailedError(self.name, self.error or "unrecoverable fault")

    def resolve_waiters(self, exc: Optional[BaseException] = None) -> None:
        waiters, self.waiters = self.waiters, []
        for fut in waiters:
            if fut.done():
                continue
            if exc is None:
                fut.set_result(None)
            else:
                fut.set_exception(exc)

    def snapshot(self) -> dict:
        return {
            "doc": self.name,
            "mode": self.mode,
            "cells": len(self.cells),
            "failed": self.failed,
            "error": self.error,
            "edits": self.edits,
            "batches": self.batches,
            "reads": self.reads,
            "drains": self.drains,
            "slices": self.slices,
            "rollbacks": self.rollbacks,
            "rebuilds": self.rebuilds,
            "faults": self.faults,
            "recovered": self.recovered,
            "replayed": self.replayed,
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "snapshot_failures": self.snapshot_failures,
            "quota_rejections": self.quota_rejections,
            "trace_size": self.session.engine.trace_size(),
            "demand": self._demand_stats(),
        }

    def _demand_stats(self) -> dict:
        """Lazy-relevance counters for stats frames: how much work demand
        skipped (deferrals, clean hits) and how the maintained feeds
        summaries are performing (hits vs recomputes)."""
        engine = self.session.engine
        meter = engine.meter
        return {
            "impl": engine.feeds_impl if engine.lazy else "n/a",
            "demands": meter.demands,
            "demands_clean": meter.demands_clean,
            "deferred": meter.demand_deferred,
            "hazards": meter.demand_hazards,
            "feeds_roots": meter.feeds_roots,
            "feeds_hits": meter.feeds_hits,
            "feeds_updates": meter.feeds_updates,
            "feeds_recomputes": meter.feeds_recomputes,
        }


class SessionPool:
    """Host many independent :class:`Session` documents in one process.

    ``mode`` is the default propagation discipline for opened documents
    (``"lazy"`` recommended for servers: edits ack immediately, reads
    drive sliced demands).  ``slice_budget`` caps re-executions per
    scheduling slice; ``on_error`` is the per-document recovery policy
    (``"rollback"``, ``"rebuild"``, or ``"raise"`` to surface faults to
    the caller); after ``max_rollbacks`` consecutive rollbacks on one
    document the pool escalates it -- to a restore from the last
    checkpoint when one exists (at most ``max_restores`` consecutive
    times), else to a rebuild.

    ``checkpoint_dir`` turns on durability: per-document snapshot +
    write-ahead journal files live there, edits are fsync'd durable
    before they are acknowledged (``journal_fsync=False`` trades that
    for latency), and a fresh snapshot is cut every
    ``checkpoint_every`` acknowledged edits, at drain boundaries.
    ``max_edits_per_round`` / ``max_bytes_per_round`` bound what one
    document may stage between drains (:class:`QuotaExceededError`).
    """

    def __init__(
        self,
        *,
        mode: str = "lazy",
        backend: Optional[str] = None,
        slice_budget: int = 256,
        on_error: str = "rollback",
        max_sessions: int = 1024,
        max_rollbacks: int = 3,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 64,
        journal_fsync: bool = True,
        max_restores: int = 1,
        max_edits_per_round: Optional[int] = None,
        max_bytes_per_round: Optional[int] = None,
    ) -> None:
        if on_error not in ("raise", "rollback", "rebuild"):
            raise ValueError(
                f'on_error must be "raise", "rollback" or "rebuild", '
                f"got {on_error!r}"
            )
        if slice_budget < 1:
            raise ValueError("slice_budget must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.mode = mode
        self.backend = backend
        self.slice_budget = slice_budget
        self.on_error = on_error
        self.max_sessions = max_sessions
        self.max_rollbacks = max_rollbacks
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.journal_fsync = journal_fsync
        self.max_restores = max_restores
        self.max_edits_per_round = max_edits_per_round
        self.max_bytes_per_round = max_bytes_per_round
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
        self.docs: Dict[str, PooledDoc] = {}
        from repro.server.scheduler import FairScheduler

        self.scheduler = FairScheduler()
        self._pump_task: Optional[asyncio.Task] = None
        self._running = False
        self.opened = 0
        self.closed = 0
        self.checkpoints = 0
        self.restores = 0
        self.snapshot_failures = 0
        self.quota_rejections = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "SessionPool":
        """Start the background drain pump (idempotent)."""
        if self._pump_task is None or self._pump_task.done():
            self._running = True
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name="sessionpool-pump"
            )
        return self

    async def stop(self) -> None:
        """Stop the pump; open documents stay queryable synchronously.

        With checkpointing on, every document that absorbed edits since
        its last checkpoint is snapshotted (best effort) so a graceful
        shutdown restarts warm without any journal replay.
        """
        self._running = False
        if self._pump_task is not None:
            self.scheduler.kick()
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self.checkpoint_dir is not None:
            for doc in self.docs.values():
                if not doc.failed and doc.ops_since_checkpoint:
                    self._checkpoint(doc)

    # -- documents ------------------------------------------------------

    def _doc(self, name: str) -> PooledDoc:
        doc = self.docs.get(name)
        if doc is None:
            raise UnknownDocError(name)
        return doc

    def open(
        self,
        name: str,
        *,
        app: str = "vec-reduce",
        n: int = 64,
        seed: int = 0,
        data: Optional[Sequence[Any]] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> dict:
        """Open a document backed by a registered app; return its info.

        Builds a fresh :class:`Session`, runs it on ``data`` (or
        ``app.make_data(n, seed)``), and binds the wire handles: one
        ``"cell:<i>"`` per addressable input cell, plus ``"out"`` when the
        output is a single modifiable.

        With ``checkpoint_dir`` set, a document that was checkpointed by
        a previous process recovers **warm**: its snapshot is restored,
        the journal suffix replayed, and only the resulting dirty work
        re-executed -- the durable state (every acknowledged edit) wins
        over the ``data``/``seed`` arguments.  A corrupt, torn, or
        mismatched snapshot degrades to a cold open (re-run on ``data``,
        then replay the journal so acknowledged edits still win),
        counted under ``snapshot_failures``.
        """
        if name in self.docs:
            raise DocError(name, f"document {name!r} is already open")
        if len(self.docs) >= self.max_sessions:
            raise DocError(
                name, f"pool is full ({self.max_sessions} documents)"
            )
        doc_mode = mode or self.mode
        doc_backend = backend if backend is not None else self.backend
        session = None
        if self.checkpoint_dir is not None:
            snap, _wal = self._doc_paths(name)
            if os.path.exists(snap):
                session = self._try_restore(name, app, doc_backend, doc_mode)
        recovered = session is not None
        if session is None:
            session = Session(app, mode=doc_mode, backend=doc_backend)
            if data is None:
                data = session.app.make_data(n, random.Random(seed))
            session.run(data=data)
        doc = PooledDoc(name=name, session=session, mode=doc_mode)
        doc.recovered = recovered
        self._bind_handles(doc)
        if self.checkpoint_dir is not None:
            _snap, wal = self._doc_paths(name)
            doc.replayed = self._replay_into(doc, wal)
            if session.engine.queue:
                if doc_mode == "lazy":
                    session.demand()
                else:
                    session.propagate()
            doc.journal = session.enable_journal(
                wal, fsync=self.journal_fsync
            )
            self._checkpoint(doc)
        self.docs[name] = doc
        self.opened += 1
        value = session.output
        if session.app is not None:
            value = session.app.readback(value)
        return {
            "doc": name,
            "mode": doc_mode,
            "backend": session.backend,
            "cells": len(doc.cells),
            "value": value,
            "recovered": recovered,
            "replayed": doc.replayed,
        }

    def adopt(
        self,
        name: str,
        session: Session,
        *,
        cells: Sequence[Tuple[str, Any]] = (),
        out: Any = None,
    ) -> PooledDoc:
        """Register an externally built session as a pool document.

        ``cells`` is ``(handle_name, modifiable)`` pairs to bind;
        ``out`` optionally binds ``"out"``.  This is the programmatic
        escape hatch for sessions whose input shape the generic ``open``
        marshaller does not know.
        """
        if name in self.docs:
            raise DocError(name, f"document {name!r} is already open")
        doc = PooledDoc(name=name, session=session, mode=session.mode)
        for handle_name, mod in cells:
            doc.cells.append(session.handle(mod, handle_name))
        if out is not None:
            doc.out = session.handle(out, "out")
        self.docs[name] = doc
        self.opened += 1
        return doc

    def _bind_handles(self, doc: PooledDoc) -> None:
        """(Re)bind the wire handles against the session's current input.

        Called at open and again after a rebuild (which replaces the
        engine and clears the handle registry).
        """
        session = doc.session
        doc.cells = []
        mods = getattr(session.input_handle, "mods", None)
        if mods is not None:
            for i, mod in enumerate(mods):
                doc.cells.append(session.handle(mod, f"cell:{i}"))
        from repro.sac.modifiable import Modifiable

        doc.out = None
        if isinstance(session.output, Modifiable):
            doc.out = session.handle(session.output, "out")

    async def close(self, name: str) -> dict:
        doc = self._doc(name)
        doc.resolve_waiters()
        if (
            self.checkpoint_dir is not None
            and not doc.failed
            and doc.ops_since_checkpoint
        ):
            self._checkpoint(doc)
        if doc.journal is not None:
            doc.session.disable_journal()
            doc.journal = None
        self.scheduler.discard(name)
        del self.docs[name]
        self.closed += 1
        return {"doc": name, "closed": True}

    # -- durability -----------------------------------------------------

    def _doc_paths(self, name: str) -> Tuple[str, str]:
        """Snapshot and journal paths for a document (name sanitized)."""
        safe = "".join(
            c if c.isalnum() or c in "-_." else "%%%02x" % ord(c)
            for c in name
        )
        base = os.path.join(self.checkpoint_dir, safe)
        return base + ".snap", base + ".wal"

    def _try_restore(
        self,
        name: str,
        app: str,
        backend: Optional[str],
        mode: str,
    ) -> Optional[Session]:
        """Restore a session from the document's checkpoint, or ``None``.

        Every persistence failure -- bad magic, failed CRC, truncated
        section, program/backend/mode/Python mismatch -- degrades to a
        cold open here; nothing a stale checkpoint contains can keep a
        document from opening.
        """
        snap, _wal = self._doc_paths(name)
        try:
            content = read_header(snap).get("content", {})
            if content.get("app") != app or content.get("mode") != mode:
                raise SnapshotMismatchError(
                    f"checkpoint is for app={content.get('app')!r} "
                    f"mode={content.get('mode')!r}, open requested "
                    f"app={app!r} mode={mode!r}"
                )
            return Session.restore(snap, app, backend=backend)
        except (PersistError, OSError) as exc:
            self.snapshot_failures += 1
            log.warning(
                "document %r: checkpoint restore failed (%s: %s); "
                "degrading to cold open",
                name,
                type(exc).__name__,
                exc,
            )
            return None

    def _replay_into(self, doc: PooledDoc, wal: str) -> int:
        """Re-stage the journal's edits into the document's session.

        Absolute values make replay idempotent (records the snapshot
        already absorbed cut off on equality), a torn tail is the normal
        crash signature and is dropped, and corruption earlier in the
        file keeps the clean prefix -- every acknowledged-and-durable
        edit that can be recovered, is.
        """
        session = doc.session
        try:
            records = _replay_journal(wal)
        except JournalCorruptError as exc:
            doc.snapshot_failures += 1
            self.snapshot_failures += 1
            log.warning(
                "document %r: journal corrupt after %d record(s); "
                "replaying the clean prefix",
                doc.name,
                len(exc.records),
            )
            records = exc.records
        applied = 0
        for _seq, edits in records:
            for handle, value in edits:
                try:
                    session.engine.change(session.resolve(handle), value)
                except (KeyError, ValueError, TypeError) as exc:
                    log.warning(
                        "document %r: journal edit %r -> %r not "
                        "replayable (%s); skipped",
                        doc.name,
                        handle,
                        value,
                        exc,
                    )
                    continue
                applied += 1
        return applied

    def _checkpoint(self, doc: PooledDoc) -> bool:
        """Cut a snapshot and truncate the absorbed journal (best effort).

        Runs at drain boundaries, so the engine is quiescent (staged
        lazy edits are fine and round-trip).  Failure is contained: the
        journal is retained, the previous snapshot file is untouched
        (writes are atomic), and the document keeps serving.
        """
        snap, _wal = self._doc_paths(doc.name)
        try:
            doc.session.snapshot(snap)
        except (PersistError, OSError) as exc:
            doc.snapshot_failures += 1
            self.snapshot_failures += 1
            log.warning(
                "document %r: checkpoint failed (%s: %s); journal retained",
                doc.name,
                type(exc).__name__,
                exc,
            )
            return False
        if doc.journal is not None:
            doc.journal.reset()
        doc.ops_since_checkpoint = 0
        doc.checkpoints += 1
        self.checkpoints += 1
        return True

    def _maybe_checkpoint(self, doc: PooledDoc) -> None:
        if (
            self.checkpoint_dir is not None
            and not doc.failed
            and doc.ops_since_checkpoint >= self.checkpoint_every
        ):
            self._checkpoint(doc)

    def _round_complete(self, doc: PooledDoc) -> None:
        """A drain finished: clear the admission quotas, maybe checkpoint."""
        doc.round_edits = 0
        doc.round_bytes = 0
        self._maybe_checkpoint(doc)

    async def _kick_lazy_round(self, doc: PooledDoc) -> None:
        """Make a lazy document's round actually end after a quota hit.

        Rounds end at drain boundaries, but lazy documents drain only at
        reads -- a write-only client that hit its quota would otherwise
        be told to "retry after the next drain" forever, because edits
        alone never schedule one.  So the quota hit itself schedules the
        drain (or, without a pump, runs it inline) and the round closes
        without requiring a read."""
        if doc.mode != "lazy":
            return  # eager documents drain on every edit; rounds end there
        if not doc.session.engine.queue:
            # Every staged edit cut off (or none are staged): there is
            # no drain to run, so close the round directly.
            self._round_complete(doc)
        elif self._running:
            self.scheduler.enqueue(doc.name)
        else:
            await self._drain_inline(doc)

    def _restore_doc(self, doc: PooledDoc) -> None:
        """Recovery-ladder rung: replace the document's session with its
        last checkpoint plus the journal suffix (raises ``PersistError``
        when the checkpoint cannot be used; the caller escalates)."""
        snap, wal = self._doc_paths(doc.name)
        old = doc.session
        app = old.app if old.app is not None else old.program
        session = Session.restore(snap, app, backend=old.backend)
        old.disable_journal()
        doc.session = session
        doc.journal = None
        self._bind_handles(doc)
        doc.replayed += self._replay_into(doc, wal)
        doc.journal = session.enable_journal(wal, fsync=self.journal_fsync)

    # -- admission quotas -----------------------------------------------

    def _admit(self, doc: PooledDoc, n_edits: int, payload: Any) -> None:
        """Charge an incoming edit batch against the per-round quotas.

        Raises :class:`QuotaExceededError` *before* anything is staged
        or journaled; the quotas clear when the document next drains."""
        if (
            self.max_edits_per_round is None
            and self.max_bytes_per_round is None
        ):
            return
        cost = 0
        if self.max_bytes_per_round is not None:
            try:
                cost = len(json.dumps(payload, separators=(",", ":")))
            except (TypeError, ValueError):
                cost = len(repr(payload))
        if (
            self.max_edits_per_round is not None
            and doc.round_edits + n_edits > self.max_edits_per_round
        ):
            doc.quota_rejections += 1
            self.quota_rejections += 1
            raise QuotaExceededError(
                doc.name,
                "edit",
                doc.round_edits + n_edits,
                self.max_edits_per_round,
            )
        if (
            self.max_bytes_per_round is not None
            and doc.round_bytes + cost > self.max_bytes_per_round
        ):
            doc.quota_rejections += 1
            self.quota_rejections += 1
            raise QuotaExceededError(
                doc.name,
                "byte",
                doc.round_bytes + cost,
                self.max_bytes_per_round,
            )
        doc.round_edits += n_edits
        doc.round_bytes += cost

    # -- edits ----------------------------------------------------------

    async def edit(self, name: str, cell: str, value: Any) -> dict:
        """Stage one cell edit; ack when the document is consistent again.

        Lazy documents ack immediately (the edit only marks suspicion;
        the drain happens at the next read).  Eager documents ack once
        the pool's pump has fully drained the staged work -- that drain
        runs in fair slices, so the ack latency is bounded by the ring,
        not by siblings' queue depths.
        """
        doc = self._doc(name)
        doc.check_usable()
        try:
            self._admit(doc, 1, value)
        except QuotaExceededError:
            await self._kick_lazy_round(doc)
            raise
        dirtied = doc.session.edit(cell, value)
        doc.edits += 1
        doc.ops_since_checkpoint += 1
        if doc.mode != "lazy":
            await self._await_drain(doc)
        else:
            # Lazy documents may never be read; checkpoint on the edit
            # cadence too so the journal stays bounded (staged edits
            # snapshot fine -- they round-trip as staged).
            self._maybe_checkpoint(doc)
        return {"doc": name, "dirtied": dirtied}

    async def batch(self, name: str, edits: Sequence[Sequence[Any]]) -> dict:
        """Stage many ``(cell, value)`` edits; one coalesced drain."""
        doc = self._doc(name)
        doc.check_usable()
        try:
            self._admit(doc, len(edits), edits)
        except QuotaExceededError:
            await self._kick_lazy_round(doc)
            raise
        with doc.session.batch() as b:
            for cell, value in edits:
                doc.session.edit(cell, value)
        doc.edits += len(edits)
        doc.batches += 1
        doc.ops_since_checkpoint += len(edits)
        if doc.mode != "lazy":
            await self._await_drain(doc)
        else:
            self._maybe_checkpoint(doc)
        return {"doc": name, "changed": b.changed}

    async def _await_drain(self, doc: PooledDoc) -> None:
        """Eager path: wait until the document's dirty queue is empty."""
        if not doc.session.engine.queue:
            doc.resolve_waiters()
            self._round_complete(doc)
            return
        if not self._running:
            # No pump (pool used synchronously, e.g. in tests): drain
            # inline with recovery, still sliced to bound each await.
            await self._drain_inline(doc)
            return
        fut = asyncio.get_running_loop().create_future()
        doc.waiters.append(fut)
        self.scheduler.enqueue(doc.name)
        await fut

    async def _drain_inline(self, doc: PooledDoc) -> None:
        while doc.session.engine.queue:
            done = await self._run_slice(doc)
            if done:
                break
            await asyncio.sleep(0)
        doc.resolve_waiters()

    # -- reads ----------------------------------------------------------

    async def get(self, name: str, cell: str) -> dict:
        """Up-to-date value of one handle (sliced demand under lazy)."""
        doc = self._doc(name)
        doc.check_usable()
        doc.reads += 1
        if doc.mode == "lazy":
            value = await self._demand_sliced(doc, target=cell, single=True)
        else:
            await self._await_drain(doc)
            value = doc.session.get(cell)
        return {"doc": name, "value": value}

    async def demand(
        self, name: str, cells: Optional[Sequence[str]] = None
    ) -> dict:
        """Bring cells (or the whole output) up to date in one drain.

        With ``cells``, all of them are demanded in a single
        reachability-filtered pass (multi-target demand) and their values
        returned in order.  Without, the whole output value is demanded
        and returned via the app's readback.
        """
        doc = self._doc(name)
        doc.check_usable()
        doc.reads += 1
        if cells is not None:
            if doc.mode == "lazy":
                values = await self._demand_sliced(
                    doc, target=list(cells), single=False
                )
            else:
                await self._await_drain(doc)
                values = [doc.session.get(c) for c in cells]
            return {"doc": name, "values": values}
        if doc.mode == "lazy":
            await self._demand_sliced(doc, target=None, single=False)
        else:
            await self._await_drain(doc)
        # Re-read after the drain: a restore-from-snapshot recovery
        # replaces the session object mid-drain.
        session = doc.session
        value = session.output
        if session.app is not None:
            value = session.app.readback(value)
        return {"doc": name, "value": value}

    async def _demand_sliced(
        self, doc: PooledDoc, *, target: Any, single: bool
    ) -> Any:
        """Run a lazy demand in ``slice_budget`` chunks, yielding between
        chunks and recovering per-document on faults."""
        while True:
            doc.check_usable()
            # Re-read each iteration: a restore-from-snapshot recovery
            # replaces the session object mid-demand.
            session = doc.session
            try:
                if single or target is not None:
                    value = session.engine.demand(
                        session.resolve(target)
                        if isinstance(target, str)
                        else [session.resolve(t) for t in target],
                        budget=self.slice_budget,
                    )
                else:
                    session.demand(budget=self.slice_budget)
                    value = None
            except PropagationBudgetExceeded:
                doc.slices += 1
                await asyncio.sleep(0)
                continue
            except (ReexecutionError, EnginePoisonedError) as exc:
                self._recover(doc, exc)
                await asyncio.sleep(0)
                continue
            doc.consecutive_rollbacks = 0
            doc.consecutive_restores = 0
            doc.drains += 1
            if not session.engine.queue:
                doc.resolve_waiters()
            self._round_complete(doc)
            return value

    # -- stats ----------------------------------------------------------

    def stats(self, name: Optional[str] = None) -> dict:
        if name is not None:
            doc = self._doc(name)
            snap = doc.snapshot()
            snap["session"] = doc.session.stats()
            return snap
        return {
            "documents": len(self.docs),
            "opened": self.opened,
            "closed": self.closed,
            "failed": sum(1 for d in self.docs.values() if d.failed),
            "checkpoint_dir": self.checkpoint_dir,
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "snapshot_failures": self.snapshot_failures,
            "quota_rejections": self.quota_rejections,
            "scheduler": self.scheduler.stats(),
            "docs": {n: d.snapshot() for n, d in self.docs.items()},
        }

    # -- the pump: sliced, fair, recovering drains ----------------------

    async def _pump(self) -> None:
        """Background task: round-robin one propagation slice at a time."""
        while self._running:
            await self.scheduler.wait()
            if not self._running:
                return
            name = self.scheduler.next()
            if name is None:
                continue
            doc = self.docs.get(name)
            if doc is None or doc.failed:
                continue
            try:
                done = await self._run_slice(doc)
            except DocFailedError:
                continue  # recorded on the doc; siblings unaffected
            if not done:
                self.scheduler.requeue(name)
            # The yield that makes hundreds of documents share one loop:
            # between every slice, control returns to the event loop so
            # pending frames and other clients' work interleave.
            await asyncio.sleep(0)

    async def _run_slice(self, doc: PooledDoc) -> bool:
        """One bounded propagation slice; ``True`` when the doc drained."""
        session = doc.session
        try:
            session.propagate(budget=self.slice_budget)
        except PropagationBudgetExceeded:
            doc.slices += 1
            return False
        except (ReexecutionError, EnginePoisonedError) as exc:
            self._recover(doc, exc)  # raises DocFailedError if terminal
            # doc.session may have been replaced (restore rung); a
            # recovery that left nothing queued counts as drained.
            done = not doc.session.engine.queue
            if done:
                doc.resolve_waiters()
            return done
        doc.consecutive_rollbacks = 0
        doc.consecutive_restores = 0
        doc.drains += 1
        doc.resolve_waiters()
        self._round_complete(doc)
        return True

    def _recover(self, doc: PooledDoc, exc: BaseException) -> str:
        """Apply the per-document recovery policy; contain the fault.

        Rollback undoes the staged edits back to the document's last-good
        state and re-stages them for retry (a one-shot fault then drains
        clean on the next slice).  After ``max_rollbacks`` consecutive
        rollbacks -- or when the engine is poisoned -- escalate: first to
        a **restore from the last checkpoint** (checkpointing pools only;
        the snapshot is decoded into a fresh session, the journal suffix
        replayed, so no acknowledged edit is lost -- and it works even
        when the live engine is poisoned), then to a from-scratch
        rebuild, which replaces the engine and re-binds the wire
        handles.  If nothing applies, the document (and only the
        document) is marked failed.
        """
        doc.faults += 1
        session = doc.session
        policy = self.on_error
        rollback_ok = (
            policy == "rollback"
            and isinstance(exc, ReexecutionError)
            and getattr(exc, "consistent", False)
            and doc.consecutive_rollbacks < self.max_rollbacks
        )
        if rollback_ok:
            try:
                session.engine.rollback()
            except (ReexecutionError, EnginePoisonedError):
                rollback_ok = False
            else:
                doc.rollbacks += 1
                doc.consecutive_rollbacks += 1
                return "rollback"
        if (
            policy in ("rollback", "rebuild")
            and self.checkpoint_dir is not None
            and doc.consecutive_restores < self.max_restores
        ):
            snap, _wal = self._doc_paths(doc.name)
            if os.path.exists(snap):
                try:
                    self._restore_doc(doc)
                except (PersistError, OSError) as restore_exc:
                    doc.snapshot_failures += 1
                    self.snapshot_failures += 1
                    log.warning(
                        "document %r: restore-from-snapshot failed "
                        "(%s: %s); escalating to rebuild",
                        doc.name,
                        type(restore_exc).__name__,
                        restore_exc,
                    )
                else:
                    doc.restores += 1
                    self.restores += 1
                    doc.consecutive_restores += 1
                    doc.consecutive_rollbacks = 0
                    return "restore"
        if policy in ("rollback", "rebuild") and session.app is not None:
            try:
                session.rebuild()
            except BaseException as rebuild_exc:  # noqa: BLE001
                self._fail(doc, rebuild_exc)
            doc.rebuilds += 1
            doc.consecutive_rollbacks = 0
            doc.consecutive_restores = 0
            self._bind_handles(doc)
            if self.checkpoint_dir is not None:
                # Re-base durable state on the rebuilt trace so the next
                # restore rung starts from it, not the pre-fault world.
                self._checkpoint(doc)
            doc.resolve_waiters()
            return "rebuild"
        self._fail(doc, exc)
        return "failed"  # pragma: no cover - _fail always raises

    def _fail(self, doc: PooledDoc, exc: BaseException) -> None:
        doc.failed = True
        doc.error = f"{type(exc).__name__}: {exc}"
        self.scheduler.discard(doc.name)
        failure = DocFailedError(doc.name, doc.error)
        doc.resolve_waiters(failure)
        raise failure from exc
