"""`SessionPool`: hundreds of independent incremental sessions, one process.

Each client *document* is a :class:`repro.api.Session` -- its own engine,
trace, and handle namespace -- keyed by a document name.  The pool layers
three things on top that a lone ``Session`` cannot provide:

* **Admission + fair scheduling.**  Propagation is synchronous CPU work,
  so the pool never drains one document to completion while others wait:
  eager documents drain in ``propagate(budget=slice_budget)`` slices
  under a round-robin :class:`~repro.server.scheduler.FairScheduler`,
  lazy documents drain in equally sliced ``demand`` calls at read time,
  and the loop yields between slices so every client's frames keep
  flowing.
* **Wire addressing.**  ``open`` binds every input cell to a stable
  string handle (``"cell:<i>"``) plus ``"out"`` for the output, via the
  :meth:`Session.handle` layer -- so edits and reads address cells by
  serializable name, never by in-process object.
* **Per-document recovery.**  A fault inside one document's propagation
  is contained there: the pool rolls the document back
  (``on_error="rollback"``), escalating to a from-scratch rebuild after
  ``max_rollbacks`` consecutive rollbacks (or immediately under
  ``on_error="rebuild"``), and marks the document failed only when no
  recovery applies.  Sibling documents never see any of it -- their
  engines share nothing but the event loop.

The pool is asyncio-single-threaded: engine calls happen inline on the
loop (no locks), and concurrency comes from interleaving slices, not
threads.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import Session
from repro.sac.exceptions import (
    EnginePoisonedError,
    PropagationBudgetExceeded,
    ReexecutionError,
)

__all__ = [
    "DocError",
    "DocFailedError",
    "PooledDoc",
    "SessionPool",
    "UnknownDocError",
]


class DocError(Exception):
    """Base class for per-document pool errors."""

    def __init__(self, doc: str, message: str) -> None:
        super().__init__(message)
        self.doc = doc


class UnknownDocError(DocError):
    """The named document is not open in this pool."""

    def __init__(self, doc: str) -> None:
        super().__init__(doc, f"unknown document {doc!r}")


class DocFailedError(DocError):
    """The document faulted and no recovery policy applied."""

    def __init__(self, doc: str, message: str) -> None:
        super().__init__(doc, f"document {doc!r} failed: {message}")


@dataclass
class PooledDoc:
    """One hosted document: a session plus pool-side accounting."""

    name: str
    session: Session
    mode: str
    cells: List[str] = field(default_factory=list)
    out: Optional[str] = None
    #: futures resolved when the document's staged edits are fully drained
    waiters: List[asyncio.Future] = field(default_factory=list)
    failed: bool = False
    error: Optional[str] = None
    edits: int = 0
    batches: int = 0
    reads: int = 0
    drains: int = 0
    slices: int = 0
    rollbacks: int = 0
    rebuilds: int = 0
    faults: int = 0
    consecutive_rollbacks: int = 0

    def check_usable(self) -> None:
        if self.failed:
            raise DocFailedError(self.name, self.error or "unrecoverable fault")

    def resolve_waiters(self, exc: Optional[BaseException] = None) -> None:
        waiters, self.waiters = self.waiters, []
        for fut in waiters:
            if fut.done():
                continue
            if exc is None:
                fut.set_result(None)
            else:
                fut.set_exception(exc)

    def snapshot(self) -> dict:
        return {
            "doc": self.name,
            "mode": self.mode,
            "cells": len(self.cells),
            "failed": self.failed,
            "error": self.error,
            "edits": self.edits,
            "batches": self.batches,
            "reads": self.reads,
            "drains": self.drains,
            "slices": self.slices,
            "rollbacks": self.rollbacks,
            "rebuilds": self.rebuilds,
            "faults": self.faults,
            "trace_size": self.session.engine.trace_size(),
        }


class SessionPool:
    """Host many independent :class:`Session` documents in one process.

    ``mode`` is the default propagation discipline for opened documents
    (``"lazy"`` recommended for servers: edits ack immediately, reads
    drive sliced demands).  ``slice_budget`` caps re-executions per
    scheduling slice; ``on_error`` is the per-document recovery policy
    (``"rollback"``, ``"rebuild"``, or ``"raise"`` to surface faults to
    the caller); after ``max_rollbacks`` consecutive rollbacks on one
    document the pool escalates it to a rebuild.
    """

    def __init__(
        self,
        *,
        mode: str = "lazy",
        backend: Optional[str] = None,
        slice_budget: int = 256,
        on_error: str = "rollback",
        max_sessions: int = 1024,
        max_rollbacks: int = 3,
    ) -> None:
        if on_error not in ("raise", "rollback", "rebuild"):
            raise ValueError(
                f'on_error must be "raise", "rollback" or "rebuild", '
                f"got {on_error!r}"
            )
        if slice_budget < 1:
            raise ValueError("slice_budget must be >= 1")
        self.mode = mode
        self.backend = backend
        self.slice_budget = slice_budget
        self.on_error = on_error
        self.max_sessions = max_sessions
        self.max_rollbacks = max_rollbacks
        self.docs: Dict[str, PooledDoc] = {}
        from repro.server.scheduler import FairScheduler

        self.scheduler = FairScheduler()
        self._pump_task: Optional[asyncio.Task] = None
        self._running = False
        self.opened = 0
        self.closed = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "SessionPool":
        """Start the background drain pump (idempotent)."""
        if self._pump_task is None or self._pump_task.done():
            self._running = True
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name="sessionpool-pump"
            )
        return self

    async def stop(self) -> None:
        """Stop the pump; open documents stay queryable synchronously."""
        self._running = False
        if self._pump_task is not None:
            self.scheduler.kick()
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None

    # -- documents ------------------------------------------------------

    def _doc(self, name: str) -> PooledDoc:
        doc = self.docs.get(name)
        if doc is None:
            raise UnknownDocError(name)
        return doc

    def open(
        self,
        name: str,
        *,
        app: str = "vec-reduce",
        n: int = 64,
        seed: int = 0,
        data: Optional[Sequence[Any]] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> dict:
        """Open a document backed by a registered app; return its info.

        Builds a fresh :class:`Session`, runs it on ``data`` (or
        ``app.make_data(n, seed)``), and binds the wire handles: one
        ``"cell:<i>"`` per addressable input cell, plus ``"out"`` when the
        output is a single modifiable.
        """
        if name in self.docs:
            raise DocError(name, f"document {name!r} is already open")
        if len(self.docs) >= self.max_sessions:
            raise DocError(
                name, f"pool is full ({self.max_sessions} documents)"
            )
        doc_mode = mode or self.mode
        session = Session(
            app,
            mode=doc_mode,
            backend=backend if backend is not None else self.backend,
        )
        if data is None:
            data = session.app.make_data(n, random.Random(seed))
        value = session.run(data=data)
        doc = PooledDoc(name=name, session=session, mode=doc_mode)
        self._bind_handles(doc)
        self.docs[name] = doc
        self.opened += 1
        return {
            "doc": name,
            "mode": doc_mode,
            "backend": session.backend,
            "cells": len(doc.cells),
            "value": session.app.readback(value),
        }

    def adopt(
        self,
        name: str,
        session: Session,
        *,
        cells: Sequence[Tuple[str, Any]] = (),
        out: Any = None,
    ) -> PooledDoc:
        """Register an externally built session as a pool document.

        ``cells`` is ``(handle_name, modifiable)`` pairs to bind;
        ``out`` optionally binds ``"out"``.  This is the programmatic
        escape hatch for sessions whose input shape the generic ``open``
        marshaller does not know.
        """
        if name in self.docs:
            raise DocError(name, f"document {name!r} is already open")
        doc = PooledDoc(name=name, session=session, mode=session.mode)
        for handle_name, mod in cells:
            doc.cells.append(session.handle(mod, handle_name))
        if out is not None:
            doc.out = session.handle(out, "out")
        self.docs[name] = doc
        self.opened += 1
        return doc

    def _bind_handles(self, doc: PooledDoc) -> None:
        """(Re)bind the wire handles against the session's current input.

        Called at open and again after a rebuild (which replaces the
        engine and clears the handle registry).
        """
        session = doc.session
        doc.cells = []
        mods = getattr(session.input_handle, "mods", None)
        if mods is not None:
            for i, mod in enumerate(mods):
                doc.cells.append(session.handle(mod, f"cell:{i}"))
        from repro.sac.modifiable import Modifiable

        doc.out = None
        if isinstance(session.output, Modifiable):
            doc.out = session.handle(session.output, "out")

    async def close(self, name: str) -> dict:
        doc = self._doc(name)
        doc.resolve_waiters()
        self.scheduler.discard(name)
        del self.docs[name]
        self.closed += 1
        return {"doc": name, "closed": True}

    # -- edits ----------------------------------------------------------

    async def edit(self, name: str, cell: str, value: Any) -> dict:
        """Stage one cell edit; ack when the document is consistent again.

        Lazy documents ack immediately (the edit only marks suspicion;
        the drain happens at the next read).  Eager documents ack once
        the pool's pump has fully drained the staged work -- that drain
        runs in fair slices, so the ack latency is bounded by the ring,
        not by siblings' queue depths.
        """
        doc = self._doc(name)
        doc.check_usable()
        dirtied = doc.session.edit(cell, value)
        doc.edits += 1
        if doc.mode != "lazy":
            await self._await_drain(doc)
        return {"doc": name, "dirtied": dirtied}

    async def batch(self, name: str, edits: Sequence[Sequence[Any]]) -> dict:
        """Stage many ``(cell, value)`` edits; one coalesced drain."""
        doc = self._doc(name)
        doc.check_usable()
        with doc.session.batch() as b:
            for cell, value in edits:
                doc.session.edit(cell, value)
        doc.edits += len(edits)
        doc.batches += 1
        if doc.mode != "lazy":
            await self._await_drain(doc)
        return {"doc": name, "changed": b.changed}

    async def _await_drain(self, doc: PooledDoc) -> None:
        """Eager path: wait until the document's dirty queue is empty."""
        if not doc.session.engine.queue:
            doc.resolve_waiters()
            return
        if not self._running:
            # No pump (pool used synchronously, e.g. in tests): drain
            # inline with recovery, still sliced to bound each await.
            await self._drain_inline(doc)
            return
        fut = asyncio.get_running_loop().create_future()
        doc.waiters.append(fut)
        self.scheduler.enqueue(doc.name)
        await fut

    async def _drain_inline(self, doc: PooledDoc) -> None:
        while doc.session.engine.queue:
            done = await self._run_slice(doc)
            if done:
                break
            await asyncio.sleep(0)
        doc.resolve_waiters()

    # -- reads ----------------------------------------------------------

    async def get(self, name: str, cell: str) -> dict:
        """Up-to-date value of one handle (sliced demand under lazy)."""
        doc = self._doc(name)
        doc.check_usable()
        doc.reads += 1
        if doc.mode == "lazy":
            value = await self._demand_sliced(doc, target=cell, single=True)
        else:
            await self._await_drain(doc)
            value = doc.session.get(cell)
        return {"doc": name, "value": value}

    async def demand(
        self, name: str, cells: Optional[Sequence[str]] = None
    ) -> dict:
        """Bring cells (or the whole output) up to date in one drain.

        With ``cells``, all of them are demanded in a single
        reachability-filtered pass (multi-target demand) and their values
        returned in order.  Without, the whole output value is demanded
        and returned via the app's readback.
        """
        doc = self._doc(name)
        doc.check_usable()
        doc.reads += 1
        session = doc.session
        if cells is not None:
            if doc.mode == "lazy":
                values = await self._demand_sliced(
                    doc, target=list(cells), single=False
                )
            else:
                await self._await_drain(doc)
                values = [session.get(c) for c in cells]
            return {"doc": name, "values": values}
        if doc.mode == "lazy":
            await self._demand_sliced(doc, target=None, single=False)
        else:
            await self._await_drain(doc)
        value = session.output
        if session.app is not None:
            value = session.app.readback(value)
        return {"doc": name, "value": value}

    async def _demand_sliced(
        self, doc: PooledDoc, *, target: Any, single: bool
    ) -> Any:
        """Run a lazy demand in ``slice_budget`` chunks, yielding between
        chunks and recovering per-document on faults."""
        session = doc.session
        while True:
            doc.check_usable()
            try:
                if single or target is not None:
                    value = session.engine.demand(
                        session.resolve(target)
                        if isinstance(target, str)
                        else [session.resolve(t) for t in target],
                        budget=self.slice_budget,
                    )
                else:
                    session.demand(budget=self.slice_budget)
                    value = None
            except PropagationBudgetExceeded:
                doc.slices += 1
                await asyncio.sleep(0)
                continue
            except (ReexecutionError, EnginePoisonedError) as exc:
                self._recover(doc, exc)
                await asyncio.sleep(0)
                continue
            doc.consecutive_rollbacks = 0
            doc.drains += 1
            if not session.engine.queue:
                doc.resolve_waiters()
            return value

    # -- stats ----------------------------------------------------------

    def stats(self, name: Optional[str] = None) -> dict:
        if name is not None:
            doc = self._doc(name)
            snap = doc.snapshot()
            snap["session"] = doc.session.stats()
            return snap
        return {
            "documents": len(self.docs),
            "opened": self.opened,
            "closed": self.closed,
            "failed": sum(1 for d in self.docs.values() if d.failed),
            "scheduler": self.scheduler.stats(),
            "docs": {n: d.snapshot() for n, d in self.docs.items()},
        }

    # -- the pump: sliced, fair, recovering drains ----------------------

    async def _pump(self) -> None:
        """Background task: round-robin one propagation slice at a time."""
        while self._running:
            await self.scheduler.wait()
            if not self._running:
                return
            name = self.scheduler.next()
            if name is None:
                continue
            doc = self.docs.get(name)
            if doc is None or doc.failed:
                continue
            try:
                done = await self._run_slice(doc)
            except DocFailedError:
                continue  # recorded on the doc; siblings unaffected
            if not done:
                self.scheduler.requeue(name)
            # The yield that makes hundreds of documents share one loop:
            # between every slice, control returns to the event loop so
            # pending frames and other clients' work interleave.
            await asyncio.sleep(0)

    async def _run_slice(self, doc: PooledDoc) -> bool:
        """One bounded propagation slice; ``True`` when the doc drained."""
        session = doc.session
        try:
            session.propagate(budget=self.slice_budget)
        except PropagationBudgetExceeded:
            doc.slices += 1
            return False
        except (ReexecutionError, EnginePoisonedError) as exc:
            self._recover(doc, exc)  # raises DocFailedError if terminal
            return not session.engine.queue
        doc.consecutive_rollbacks = 0
        doc.drains += 1
        doc.resolve_waiters()
        return True

    def _recover(self, doc: PooledDoc, exc: BaseException) -> str:
        """Apply the per-document recovery policy; contain the fault.

        Rollback undoes the staged edits back to the document's last-good
        state and re-stages them for retry (a one-shot fault then drains
        clean on the next slice).  After ``max_rollbacks`` consecutive
        rollbacks -- or when the engine is poisoned -- escalate to a
        from-scratch rebuild, which replaces the engine and re-binds the
        wire handles.  If nothing applies, the document (and only the
        document) is marked failed.
        """
        doc.faults += 1
        session = doc.session
        policy = self.on_error
        rollback_ok = (
            policy == "rollback"
            and isinstance(exc, ReexecutionError)
            and getattr(exc, "consistent", False)
            and doc.consecutive_rollbacks < self.max_rollbacks
        )
        if rollback_ok:
            try:
                session.engine.rollback()
            except (ReexecutionError, EnginePoisonedError):
                rollback_ok = False
            else:
                doc.rollbacks += 1
                doc.consecutive_rollbacks += 1
                return "rollback"
        if policy in ("rollback", "rebuild") and session.app is not None:
            try:
                session.rebuild()
            except BaseException as rebuild_exc:  # noqa: BLE001
                self._fail(doc, rebuild_exc)
            doc.rebuilds += 1
            doc.consecutive_rollbacks = 0
            self._bind_handles(doc)
            doc.resolve_waiters()
            return "rebuild"
        self._fail(doc, exc)
        return "failed"  # pragma: no cover - _fail always raises

    def _fail(self, doc: PooledDoc, exc: BaseException) -> None:
        doc.failed = True
        doc.error = f"{type(exc).__name__}: {exc}"
        self.scheduler.discard(doc.name)
        failure = DocFailedError(doc.name, doc.error)
        doc.resolve_waiters(failure)
        raise failure from exc
