"""Newline-delimited JSON frame protocol over TCP or a unix socket.

One frame per line, UTF-8 JSON, both directions.  Every request carries
an ``op`` plus its operands; every response echoes the request's ``id``
(when present) and carries ``ok``:

== ======================================================= =====================================
op request fields                                          response fields
== ======================================================= =====================================
open    doc, app?, n?, seed?, data?, mode?, backend?       ok, doc, mode, backend, cells, value
edit    doc, cell, value                                   ok, doc, dirtied
batch   doc, edits=[[cell, value], ...]                    ok, doc, changed
get     doc, cell                                          ok, doc, value
demand  doc, cells? (list; absent = whole output)          ok, doc, values / value
stats   doc?                                               ok, stats
close   doc                                                ok, doc, closed
== ======================================================= =====================================

Failures answer ``{"ok": false, "error": <message>, "type": <exc class>}``
on the same connection instead of tearing it down -- one client's bad
frame (or failed document) must not cost anyone their connection.  That
includes *oversized* frames: a line longer than the server's
``max_frame`` is drained to its terminating newline and answered with a
``FrameTooLargeError`` error frame, so a fat-fingered (or hostile) frame
costs one request, not the connection -- and never a
multi-frame-buffering blowup server-side.
Frames on one connection are handled in order; concurrency comes from
many connections interleaving on the loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional, Tuple

from repro.server.pool import SessionPool

__all__ = [
    "Client",
    "FrameTooLargeError",
    "ServerError",
    "encode_frame",
    "decode_frame",
    "serve",
]

#: Generous per-frame line limit: ``open`` can carry an inline data vector.
_LIMIT = 2**22


class FrameTooLargeError(ValueError):
    """A request frame exceeded the server's ``max_frame`` byte limit."""


def encode_frame(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> Any:
    return json.loads(line)


async def _handle_frame(pool: SessionPool, frame: dict) -> dict:
    op = frame.get("op")
    if op == "open":
        kwargs = {
            key: frame[key]
            for key in ("app", "n", "seed", "data", "mode", "backend")
            if key in frame
        }
        return pool.open(frame["doc"], **kwargs)
    if op == "edit":
        return await pool.edit(frame["doc"], frame["cell"], frame["value"])
    if op == "batch":
        return await pool.batch(frame["doc"], frame["edits"])
    if op == "get":
        return await pool.get(frame["doc"], frame["cell"])
    if op == "demand":
        return await pool.demand(frame["doc"], frame.get("cells"))
    if op == "stats":
        return {"stats": pool.stats(frame.get("doc"))}
    if op == "close":
        return await pool.close(frame["doc"])
    raise ValueError(f"unknown op {op!r}")


async def _read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[bytes, bool]:
    """One frame line, plus an *oversized* flag.

    ``readuntil`` raises ``LimitOverrunError`` when a line overruns the
    stream's buffer limit (our ``max_frame``), leaving the buffer in
    place and reporting how much may be consumed.  Discard exactly that
    (``readexactly`` is not limit-bounded, but we feed it at most
    buffer-resident byte counts, so nothing accumulates) until the
    oversized line's terminating newline goes by, then report
    ``(b"", True)`` -- the caller answers an error frame and the
    connection keeps framing cleanly at the next line.
    """
    try:
        return await reader.readuntil(b"\n"), False
    except asyncio.IncompleteReadError as exc:
        return exc.partial, False  # EOF, possibly mid-line
    except asyncio.LimitOverrunError as exc:
        consumed = exc.consumed
        while True:
            try:
                await reader.readexactly(consumed)
                await reader.readuntil(b"\n")
                break
            except asyncio.LimitOverrunError as more:
                consumed = more.consumed
            except asyncio.IncompleteReadError:
                break  # EOF while draining; next read reports it
        return b"", True


async def _serve_connection(
    pool: SessionPool,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    max_frame: int,
) -> None:
    try:
        while True:
            try:
                line, oversized = await _read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break
            if oversized:
                writer.write(
                    encode_frame(
                        {
                            "ok": False,
                            "error": (
                                f"frame exceeds the {max_frame}-byte "
                                f"limit"
                            ),
                            "type": "FrameTooLargeError",
                        }
                    )
                )
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                continue
            if not line:
                break
            if not line.strip():
                continue
            frame_id = None
            try:
                frame = decode_frame(line)
                frame_id = frame.get("id") if isinstance(frame, dict) else None
                if not isinstance(frame, dict):
                    raise ValueError("frame must be a JSON object")
                response = await _handle_frame(pool, frame)
                response["ok"] = True
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                response = {
                    "ok": False,
                    "error": str(exc),
                    "type": type(exc).__name__,
                }
            if frame_id is not None:
                response["id"] = frame_id
            writer.write(encode_frame(response))
            try:
                await writer.drain()
            except ConnectionError:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def serve(
    pool: SessionPool,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    path: Optional[str] = None,
    start_pump: bool = True,
    max_frame: int = _LIMIT,
) -> asyncio.AbstractServer:
    """Start serving ``pool`` over TCP (``host``/``port``) or a unix
    socket (``path``); returns the running ``asyncio`` server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.sockets[0].getsockname()``) -- the form the tests and the
    benchmark use.  The pool's drain pump is started alongside unless
    ``start_pump=False``.  ``max_frame`` bounds one request line's size
    (and therefore per-connection buffering); longer frames are answered
    with a ``FrameTooLargeError`` error frame, not a dropped connection.
    """
    if max_frame < 2:
        raise ValueError("max_frame must be >= 2")
    if start_pump:
        await pool.start()

    async def handler(reader, writer):
        await _serve_connection(pool, reader, writer, max_frame)

    if path is not None:
        return await asyncio.start_unix_server(
            handler, path=path, limit=max_frame
        )
    return await asyncio.start_server(
        handler, host=host, port=port, limit=max_frame
    )


class Client:
    """Minimal asyncio client for the frame protocol.

    One request in flight per client; run many clients for concurrency
    (that is also what the throughput benchmark does).  Raises
    :class:`ServerError` when a response comes back ``ok: false``.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._seq = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "Client":
        reader, writer = await asyncio.open_connection(host, port, limit=_LIMIT)
        return cls(reader, writer)

    @classmethod
    async def connect_unix(cls, path: str) -> "Client":
        reader, writer = await asyncio.open_unix_connection(path, limit=_LIMIT)
        return cls(reader, writer)

    async def request(self, op: str, **fields: Any) -> dict:
        self._seq += 1
        frame = {"op": op, "id": self._seq, **fields}
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_frame(line)
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown error"),
                response.get("type", "Exception"),
            )
        return response

    # -- conveniences ---------------------------------------------------

    async def open(self, doc: str, **kwargs: Any) -> dict:
        return await self.request("open", doc=doc, **kwargs)

    async def edit(self, doc: str, cell: str, value: Any) -> dict:
        return await self.request("edit", doc=doc, cell=cell, value=value)

    async def batch(self, doc: str, edits: Any) -> dict:
        return await self.request("batch", doc=doc, edits=edits)

    async def get(self, doc: str, cell: str) -> Any:
        return (await self.request("get", doc=doc, cell=cell))["value"]

    async def demand(self, doc: str, cells: Any = None) -> dict:
        if cells is None:
            return await self.request("demand", doc=doc)
        return await self.request("demand", doc=doc, cells=list(cells))

    async def stats(self, doc: Optional[str] = None) -> dict:
        if doc is None:
            return (await self.request("stats"))["stats"]
        return (await self.request("stats", doc=doc))["stats"]

    async def close_doc(self, doc: str) -> dict:
        return await self.request("close", doc=doc)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


class ServerError(RuntimeError):
    """An ``ok: false`` response from the server."""

    def __init__(self, message: str, exc_type: str) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
