"""A-normalization: Core IR to SXML.

Mirrors MLton's linearization into A-normal form (paper Section 3.2): every
intermediate result is named by a ``let``, every operand is an atom.  The
input must be monomorphic and match-compiled (simple cases only).

A copy-propagation cleanup removes the trivial ``let x = y`` bindings that
naive normalization introduces, so the translated output stays in the form
the Section 3.4 rewrite rules expect.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core import ir as C
from repro.core import sxml as S
from repro.core.freshen import fresh
from repro.core.sxmlutil import copy_propagate
from repro.lang.errors import LmlCompileError


def normalize(program: C.CoreProgram) -> S.Expr:
    """Convert the program body into SXML (with copy propagation)."""
    norm = _Normalizer(program.datatypes)
    expr = norm.norm(program.body, lambda atom: S.ERet(ty=atom.ty, atom=atom))
    return copy_propagate(expr)


class _Normalizer:
    def __init__(self, datatypes) -> None:
        self.datatypes = datatypes

    def norm(self, e: C.CoreExpr, k: Callable[[S.Atom], S.Expr]) -> S.Expr:
        """Normalize ``e``; pass its atom to the continuation ``k``."""
        if isinstance(e, C.CVar):
            return k(S.AVar(ty=e.ty, name=e.name, is_builtin=e.is_builtin))
        if isinstance(e, C.CConst):
            return k(S.AConst(ty=e.ty, value=e.value, kind=e.kind))
        if isinstance(e, C.CLet):
            # let x = rhs in body: normalize rhs, binding its result to x.
            return self.norm(
                e.rhs,
                lambda a: S.ELet(
                    ty=e.ty,
                    name=e.name,
                    bind=S.BAtom(ty=a.ty, atom=a),
                    body=self.norm(e.body, k),
                ),
            )
        if isinstance(e, C.CLetRec):
            bindings = []
            for name, _scheme, lam in e.bindings:
                if not isinstance(lam, C.CLam):
                    raise LmlCompileError("letrec binding is not a lambda")
                bindings.append((name, self.norm_lam(lam, name_hint=name)))
            return S.ELetRec(ty=e.ty, bindings=bindings, body=self.norm(e.body, k))
        if isinstance(e, C.CLam):
            return self.bind(e.ty, self.norm_lam(e), k, hint="fn")
        if isinstance(e, C.CApp):
            return self.norm(
                e.fn,
                lambda f: self.norm(
                    e.arg,
                    lambda a: self.bind(
                        e.ty, S.BApp(ty=e.ty, fn=f, arg=a), k, hint="app"
                    ),
                ),
            )
        if isinstance(e, C.CPrim):
            if e.op == "matchfail":
                return self.bind(e.ty, S.BMatchFail(ty=e.ty), k, hint="fail")
            return self.norm_list(
                e.args,
                lambda atoms: self.bind(
                    e.ty, S.BPrim(ty=e.ty, op=e.op, args=atoms), k, hint="prim"
                ),
            )
        if isinstance(e, C.CCon):
            return self.norm_list(
                e.args,
                lambda atoms: self.bind(
                    e.ty,
                    S.BCon(ty=e.ty, dt=e.dt, tag=e.tag, args=atoms),
                    k,
                    hint="con",
                ),
            )
        if isinstance(e, C.CTuple):
            return self.norm_list(
                e.items,
                lambda atoms: self.bind(
                    e.ty, S.BTuple(ty=e.ty, items=atoms), k, hint="tup"
                ),
            )
        if isinstance(e, C.CProj):
            return self.norm(
                e.arg,
                lambda a: self.bind(
                    e.ty, S.BProj(ty=e.ty, index=e.index, arg=a), k, hint="proj"
                ),
            )
        if isinstance(e, C.CIf):
            return self.norm(
                e.cond,
                lambda c: self.bind(
                    e.ty,
                    S.BIf(
                        ty=e.ty,
                        cond=c,
                        then=self.tail(e.then),
                        els=self.tail(e.els),
                    ),
                    k,
                    hint="if",
                ),
            )
        if isinstance(e, C.CCase):
            return self.norm(e.scrut, lambda s: self.norm_case(e, s, k))
        if isinstance(e, C.CRef):
            return self.norm(
                e.arg,
                lambda a: self.bind(e.ty, S.BRef(ty=e.ty, arg=a), k, hint="ref"),
            )
        if isinstance(e, C.CDeref):
            return self.norm(
                e.arg,
                lambda a: self.bind(e.ty, S.BDeref(ty=e.ty, arg=a), k, hint="drf"),
            )
        if isinstance(e, C.CAssign):
            return self.norm(
                e.ref,
                lambda r: self.norm(
                    e.value,
                    lambda v: self.bind(
                        e.ty, S.BAssign(ty=e.ty, ref=r, value=v), k, hint="asn"
                    ),
                ),
            )
        if isinstance(e, C.CAscribe):
            return self.norm(
                e.expr,
                lambda a: self.bind(
                    e.ty, S.BAscribe(ty=e.ty, atom=a, spec=e.spec), k, hint="asc"
                ),
            )
        raise AssertionError(f"unknown Core node {e!r}")

    # ------------------------------------------------------------------

    def norm_lam(self, lam: C.CLam, name_hint: str = "") -> S.BLam:
        return S.BLam(
            ty=lam.ty,
            param=lam.param,
            param_ty=lam.param_ty,
            body=self.tail(lam.body),
            param_spec=lam.param_spec,
            name_hint=name_hint,
        )

    def tail(self, e: C.CoreExpr) -> S.Expr:
        return self.norm(e, lambda a: S.ERet(ty=a.ty, atom=a))

    def bind(
        self,
        ty,
        bind: S.Bind,
        k: Callable[[S.Atom], S.Expr],
        hint: str = "t",
    ) -> S.Expr:
        name = fresh(hint)
        body = k(S.AVar(ty=ty, name=name))
        return S.ELet(ty=body.ty, name=name, bind=bind, body=body)

    def norm_list(
        self, exprs: List[C.CoreExpr], k: Callable[[List[S.Atom]], S.Expr]
    ) -> S.Expr:
        atoms: List[S.Atom] = []

        def go(index: int) -> S.Expr:
            if index == len(exprs):
                return k(atoms)
            return self.norm(
                exprs[index], lambda a: (atoms.append(a), go(index + 1))[1]
            )

        return go(0)

    def norm_case(
        self, e: C.CCase, scrut: S.Atom, k: Callable[[S.Atom], S.Expr]
    ) -> S.Expr:
        """Normalize a simple (match-compiled) case."""
        clauses: List[S.CaseClause] = []
        default: Optional[S.Expr] = None
        dt = ""
        for pat, body in e.clauses:
            if isinstance(pat, C.CPCon):
                dt = pat.dt
                if pat.args:
                    arg_pat = pat.args[0]
                    if isinstance(arg_pat, C.CPVar):
                        binder: Optional[str] = arg_pat.name
                        binder_ty = arg_pat.ty
                    elif isinstance(arg_pat, C.CPWild):
                        binder = fresh("w")
                        binder_ty = arg_pat.ty
                    else:
                        raise LmlCompileError("case not match-compiled")
                else:
                    binder = None
                    binder_ty = None
                clauses.append(
                    S.CaseClause(
                        tag=pat.tag,
                        binder=binder,
                        binder_ty=binder_ty,
                        body=self.tail(body),
                    )
                )
            elif isinstance(pat, C.CPWild):
                default = self.tail(body)
            else:
                raise LmlCompileError(f"case not match-compiled: {pat!r}")
        case_bind = S.BCase(
            ty=e.ty, dt=dt, scrut=scrut, clauses=clauses, default=default
        )
        return self.bind(e.ty, case_bind, k, hint="case")
