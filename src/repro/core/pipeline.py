"""The compiler driver (paper Figure 3).

``compile_program`` runs the full pipeline::

    parse -> elaborate (HM + $C collection) -> uniquify -> monomorphize
          -> match-compile -> A-normalize (SXML) -> level inference
          -> [self-adjusting translation -> optimize -> DCE]

and returns a :class:`CompiledProgram` holding both executables:

* the conventional one (pre-translation SXML + conventional interpreter);
* the self-adjusting one (translated SXML + engine-backed interpreter).

Compiler options mirror the paper's evaluation axes:

* ``optimize=False`` -- the "Unopt." configuration of Figure 9 (skip the
  Section 3.4 rewrite rules);
* ``memoize=False`` -- disable compiler-inserted memoized applications;
* ``coarse=True`` -- emulate the CPS baseline's coarse dependency tracking
  (extra modifiable indirection per changeable result; combine with
  ``optimize=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.backends import BACKENDS, resolve_backend
from repro.core import ir as C
from repro.core import sxml as S
from repro.core.anf import normalize
from repro.core.caseindex import index_cases
from repro.core.deadcode import eliminate_dead_code
from repro.core.freshen import uniquify
from repro.core.levels import LevelInfo, LTy, infer_levels
from repro.core.matchcomp import compile_matches
from repro.core.monomorphize import monomorphize
from repro.core.optimize import count_primitives, optimize
from repro.core.pretty import pretty_expr
from repro.core.translate import translate
from repro.interp import ensure_recursion_headroom
from repro.interp.conventional import ConventionalInterpreter
from repro.interp.selfadjusting import SelfAdjustingInterpreter
from repro.lang.elaborate import elaborate
from repro.lang.parser import parse_program
from repro.sac.engine import Engine


@dataclass
class CompilerOptions:
    memoize: bool = True
    optimize: bool = True
    coarse: bool = False
    main: str = "main"


class ConventionalInstance:
    """A runnable conventional executable: the value of ``main``."""

    def __init__(self, program: "CompiledProgram") -> None:
        ensure_recursion_headroom()
        self.interp = ConventionalInterpreter()
        self.main = self.interp.run(program.sxml_conventional)

    def apply(self, input_value: Any) -> Any:
        return self.interp.apply(self.main, input_value)


class SelfAdjustingInstance:
    """A runnable self-adjusting executable bound to an engine.

    ``apply(input)`` performs the initial (complete) run, building the
    trace; afterwards, change the input through its handles and call
    :meth:`propagate`.

    ``backend`` selects how the translated SXML executes: ``"interp"``
    (the tree-walking interpreter), ``"compiled"`` (the closure-
    compilation backend, staged once at instance creation), or ``"stack"``
    (the flat stack-machine backend: recursion-free execution for deep
    inputs).  All produce identical outputs, traces, and meter counts;
    ``None`` defers to :func:`repro.backends.resolve_backend`.
    """

    def __init__(
        self,
        program: "CompiledProgram",
        engine: Optional[Engine] = None,
        backend: Optional[str] = None,
    ) -> None:
        ensure_recursion_headroom()
        self.engine = engine or Engine()
        self.backend = resolve_backend(backend)
        if self.backend == "interp":
            self.interp = SelfAdjustingInterpreter(self.engine)
        elif self.backend == "compiled":
            from repro.compile import CompiledSelfAdjusting

            self.interp = CompiledSelfAdjusting(self.engine)
        elif self.backend == "stack":
            from repro.compile.stackmachine import StackSelfAdjusting

            self.interp = StackSelfAdjusting(self.engine)
        else:
            raise ValueError(
                f"unknown backend {self.backend!r} (expected one of {BACKENDS})"
            )
        self.main = self.interp.run(program.sxml_translated)

    def apply(self, input_value: Any) -> Any:
        return self.interp.apply(self.main, input_value)

    def propagate(self, **kwargs: Any) -> int:
        return self.engine.propagate(**kwargs)


@dataclass
class CompiledProgram:
    """All artifacts of one compilation."""

    source: str
    options: CompilerOptions
    core: C.CoreProgram = field(repr=False)
    sxml_conventional: S.Expr = field(repr=False)
    sxml_translated: S.Expr = field(repr=False)
    levels: LevelInfo = field(repr=False)

    @property
    def main_lty(self) -> LTy:
        return self.levels.main_lty

    # -- executables ----------------------------------------------------

    def conventional_instance(self) -> ConventionalInstance:
        return ConventionalInstance(self)

    def _self_adjusting_instance(
        self, engine: Optional[Engine] = None, backend: Optional[str] = None
    ) -> SelfAdjustingInstance:
        """Internal instance factory; the public surface is
        :class:`repro.api.Session`."""
        return SelfAdjustingInstance(self, engine, backend=backend)

    # -- inspection --------------------------------------------------------

    def dump_conventional(self) -> str:
        return pretty_expr(self.sxml_conventional)

    def dump_translated(self) -> str:
        return pretty_expr(self.sxml_translated)

    def primitive_counts(self) -> dict:
        """Static mod/read/write/memo counts of the translated code."""
        return count_primitives(self.sxml_translated)


def compile_program(
    source: str,
    *,
    memoize: bool = True,
    optimize_flag: bool = True,
    coarse: bool = False,
    main: str = "main",
) -> CompiledProgram:
    """Compile LML source through the full pipeline."""
    options = CompilerOptions(
        memoize=memoize, optimize=optimize_flag, coarse=coarse, main=main
    )
    ast = parse_program(source)
    core = elaborate(ast, main=main)
    core = C.CoreProgram(
        body=uniquify(core.body),
        datatypes=core.datatypes,
        main_type=core.main_type,
    )
    core = monomorphize(core)
    core = compile_matches(core)
    conventional = normalize(core)
    conventional = eliminate_dead_code(conventional)
    levels = infer_levels(conventional, core.datatypes)
    translated = translate(
        conventional, levels, memoize=memoize, coarse=coarse
    )
    if options.optimize:
        translated = optimize(translated)
    translated = eliminate_dead_code(translated)
    # Index case dispatch (tag -> clause, const -> arm) on the final ASTs
    # so both interpreters dispatch through dicts instead of clause scans.
    index_cases(conventional)
    index_cases(translated)
    return CompiledProgram(
        source=source,
        options=options,
        core=core,
        sxml_conventional=conventional,
        sxml_translated=translated,
        levels=levels,
    )
