"""Pipeline-time case-dispatch indexing.

The interpreters historically resolved ``case`` forms with a linear scan
over the clause list (and ``CCaseConst`` with a linear, type-sensitive arm
scan) on *every* execution -- including every reader re-execution during
change propagation.  :func:`index_cases` walks a finished SXML tree once
and attaches dispatch dicts to every case node:

* ``BCase.tag_map`` / ``CCase.tag_map`` -- ``tag -> CaseClause``;
* ``BCaseConst.arm_map`` / ``CCaseConst.arm_map`` --
  ``(type(const), const) -> arm body``, keyed by type as well as value so
  ``True``/``1`` and ``0.0``/``-0.0`` stay as distinguishable as the
  scan's ``value == scrut and type(value) is type(scrut)`` test.

Duplicate tags/consts keep the *first* clause, exactly like the scans.
The pass runs at the end of :func:`repro.core.pipeline.compile_program`
(after optimize + DCE, which rebuild nodes and would drop the maps); the
interpreters fall back to the linear scan for hand-built ASTs that were
never indexed.
"""

from __future__ import annotations

from repro.core import sxml as S

__all__ = ["index_cases"]


def index_cases(e: object) -> None:
    """Attach dispatch dicts to every case node reachable from ``e``.

    Accepts any ``Expr``, ``CExpr``, or ``Bind`` and mutates the tree in
    place (the maps are derived data; the node fields the compiler passes
    compare and rebuild are untouched).
    """
    _walk(e)


def _walk(e: object) -> None:
    if isinstance(e, S.ELet):
        _walk(e.bind)
        _walk(e.body)
    elif isinstance(e, (S.ELetRec, S.CLetRec)):
        for _name, lam in e.bindings:
            _walk(lam)
        _walk(e.body)
    elif isinstance(e, S.ERet):
        pass
    elif isinstance(e, S.CLet):
        _walk(e.bind)
        _walk(e.body)
    elif isinstance(e, S.CRead):
        _walk(e.body)
    elif isinstance(e, S.CIf):
        _walk(e.then)
        _walk(e.els)
    elif isinstance(e, S.CCase):
        tag_map: dict = {}
        for clause in e.clauses:
            tag_map.setdefault(clause.tag, clause)
            _walk(clause.body)
        e.tag_map = tag_map
        if e.default is not None:
            _walk(e.default)
    elif isinstance(e, S.CCaseConst):
        arm_map: dict = {}
        for value, body in e.arms:
            arm_map.setdefault((type(value), value), body)
            _walk(body)
        e.arm_map = arm_map
        if e.default is not None:
            _walk(e.default)
    elif isinstance(e, S.CImpWrite):
        _walk(e.body)
    elif isinstance(e, (S.CWrite,)):
        pass
    elif isinstance(e, S.BLam):
        _walk(e.body)
    elif isinstance(e, S.BIf):
        _walk(e.then)
        _walk(e.els)
    elif isinstance(e, S.BCase):
        tag_map = {}
        for clause in e.clauses:
            tag_map.setdefault(clause.tag, clause)
            _walk(clause.body)
        e.tag_map = tag_map
        if e.default is not None:
            _walk(e.default)
    elif isinstance(e, S.BCaseConst):
        arm_map = {}
        for value, body in e.arms:
            arm_map.setdefault((type(value), value), body)
            _walk(body)
        e.arm_map = arm_map
        if e.default is not None:
            _walk(e.default)
    elif isinstance(e, S.BMod):
        _walk(e.body)
    elif isinstance(e, (S.Bind, S.Expr, S.CExpr)):
        pass  # leaf forms: atoms only
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unknown SXML node {e!r}")
