"""Typed Core IR.

Produced by elaboration (:mod:`repro.lang.elaborate`); the input to
monomorphization, match compilation, and A-normalization.  Every node
carries its (possibly not-yet-zonked) ML type.

Conventions:

* Functions take exactly one argument (curried source functions elaborate
  to nested :class:`CLam`).
* Constructor applications are saturated: :class:`CCon` holds the argument
  expressions (empty for nullary constructors).
* ``CVar.inst`` records the instantiation of a polymorphic binding (one
  type per quantified variable); monomorphization keys on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.errors import NO_SPAN, SourceSpan
from repro.lang.levelspec import LSpec
from repro.lang.types import Scheme, Type


@dataclass
class CoreExpr:
    ty: Type = None  # type: ignore[assignment]
    span: SourceSpan = field(default=NO_SPAN, kw_only=True)


@dataclass
class CVar(CoreExpr):
    name: str = ""
    inst: Optional[List[Type]] = None  # instantiation of a polymorphic binding
    is_builtin: bool = False


@dataclass
class CConst(CoreExpr):
    value: object = None
    kind: str = "int"


@dataclass
class CLam(CoreExpr):
    param: str = ""
    param_ty: Type = None  # type: ignore[assignment]
    body: Optional[CoreExpr] = None
    param_spec: Optional[LSpec] = None  # level annotation on the parameter


@dataclass
class CApp(CoreExpr):
    fn: Optional[CoreExpr] = None
    arg: Optional[CoreExpr] = None


@dataclass
class CPrim(CoreExpr):
    op: str = ""
    args: List[CoreExpr] = field(default_factory=list)


@dataclass
class CCon(CoreExpr):
    dt: str = ""  # datatype name (monomorphized later)
    tag: str = ""
    args: List[CoreExpr] = field(default_factory=list)


@dataclass
class CTuple(CoreExpr):
    items: List[CoreExpr] = field(default_factory=list)


@dataclass
class CProj(CoreExpr):
    index: int = 1  # 1-based
    arg: Optional[CoreExpr] = None


@dataclass
class CIf(CoreExpr):
    cond: Optional[CoreExpr] = None
    then: Optional[CoreExpr] = None
    els: Optional[CoreExpr] = None


@dataclass
class CPat:
    ty: Type = None  # type: ignore[assignment]
    span: SourceSpan = NO_SPAN


@dataclass
class CPWild(CPat):
    pass


@dataclass
class CPVar(CPat):
    name: str = ""


@dataclass
class CPConst(CPat):
    value: object = None
    kind: str = "int"


@dataclass
class CPTuple(CPat):
    items: List[CPat] = field(default_factory=list)


@dataclass
class CPCon(CPat):
    dt: str = ""
    tag: str = ""
    args: List[CPat] = field(default_factory=list)


@dataclass
class CCase(CoreExpr):
    scrut: Optional[CoreExpr] = None
    clauses: List[Tuple[CPat, CoreExpr]] = field(default_factory=list)


@dataclass
class CLet(CoreExpr):
    name: str = ""
    scheme: Optional[Scheme] = None  # generalized type of the binding
    rhs: Optional[CoreExpr] = None
    body: Optional[CoreExpr] = None


@dataclass
class CLetRec(CoreExpr):
    # Each binding: (name, scheme, lambda)
    bindings: List[Tuple[str, Scheme, CoreExpr]] = field(default_factory=list)
    body: Optional[CoreExpr] = None


@dataclass
class CRef(CoreExpr):
    arg: Optional[CoreExpr] = None


@dataclass
class CDeref(CoreExpr):
    arg: Optional[CoreExpr] = None


@dataclass
class CAssign(CoreExpr):
    ref: Optional[CoreExpr] = None
    value: Optional[CoreExpr] = None


@dataclass
class CAscribe(CoreExpr):
    """Carries a level annotation down to level inference."""

    expr: Optional[CoreExpr] = None
    spec: Optional[LSpec] = None


# ----------------------------------------------------------------------
# Datatype environment


@dataclass
class ConInfo:
    """One constructor of a datatype."""

    dt: str
    tag: str
    index: int
    arg_ty: Optional[Type]  # None for nullary; may mention the dt's tyvars
    arg_spec: Optional[LSpec]  # level spec of the field (rigid positions)


@dataclass
class DataInfo:
    """One (possibly polymorphic, later monomorphized) datatype."""

    name: str
    tyvars: List[Type]  # TVar placeholders for the parameters
    constructors: List[ConInfo] = field(default_factory=list)

    def con(self, tag: str) -> ConInfo:
        for c in self.constructors:
            if c.tag == tag:
                return c
        raise KeyError(tag)


@dataclass
class CoreProgram:
    """A whole elaborated compilation unit.

    ``body`` is a single Core expression (the declaration chain ending in a
    reference to ``main``); ``datatypes`` maps datatype names to their info.
    """

    body: CoreExpr = None  # type: ignore[assignment]
    datatypes: Dict[str, DataInfo] = field(default_factory=dict)
    main_type: Type = None  # type: ignore[assignment]
