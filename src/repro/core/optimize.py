"""The post-translation optimization phase (paper Section 3.4, Figure 5).

Three shrinking rewrite rules eliminate the redundant modifiable traffic
that the local translation rules generate:

1. ``read (mod (let r = e1 in write r)) as x in e2  -->  let x = e1 in e2``
2. ``read (mod e) as x in write x                   -->  e``
3. ``mod (read a as x in write x)                   -->  a``

Each rule removes one ``read``, one ``write``, and one ``mod``.  The rules
are terminating (each strictly shrinks the term) and confluent
(Theorem 3.1); the property tests in ``tests/test_optimize.py`` check both
on randomized terms and rewrite orders.  As the paper notes, one bottom-up
pass normalizes, but we iterate to a fixpoint anyway as a safety net.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import sxml as S
from repro.core.sxmlutil import free_vars, subst_expr


def optimize(expr: S.Expr) -> S.Expr:
    """Apply rules (1)-(3) to a fixpoint."""
    opt = _Optimizer()
    result = expr
    while True:
        opt.changed = False
        result = opt.expr(result)
        if not opt.changed:
            return result


def count_primitives(e) -> dict:
    """Count mods/reads/writes in a term (used by tests and benchmarks)."""
    counts = {"mod": 0, "read": 0, "write": 0, "memo": 0}
    _count(e, counts)
    return counts


def try_rules_cexpr(e: S.CExpr) -> Optional[S.CExpr]:
    """One rewrite step at the root of a changeable expression, or None.

    Exposed at module level so the confluence property tests can drive the
    rules in arbitrary orders.
    """
    # Rules 1 and 2 fire on:  let m = mod(body) in read m as x in rest
    if (
        isinstance(e, S.CLet)
        and isinstance(e.bind, S.BMod)
        and isinstance(e.body, S.CRead)
        and isinstance(e.body.src, S.AVar)
        and e.body.src.name == e.name
    ):
        mod_body = e.bind.body
        read = e.body
        # Rule 2: read (mod e) as x in write x  -->  e
        if (
            isinstance(read.body, S.CWrite)
            and isinstance(read.body.atom, S.AVar)
            and read.body.atom.name == read.binder
            and e.name not in free_vars(mod_body)
        ):
            return mod_body
        # Rule 1: read (mod (let r = e1 in write r)) as x in e2
        #         -->  let x = e1 in e2
        if (
            isinstance(mod_body, S.CLet)
            and isinstance(mod_body.body, S.CWrite)
            and isinstance(mod_body.body.atom, S.AVar)
            and mod_body.body.atom.name == mod_body.name
            and e.name not in free_vars(read.body)
        ):
            return S.CLet(name=read.binder, bind=mod_body.bind, body=read.body)
        # Rule 1, degenerate body: read (mod (write a)) as x in e2
        #         -->  e2[x := a]
        if isinstance(mod_body, S.CWrite) and e.name not in free_vars(read.body):
            return subst_expr(read.body, {read.binder: mod_body.atom})
    # Rule 3 inside changeable lets:
    #   let y = mod (read a as x in write x) in rest  -->  rest[y := a]
    if isinstance(e, S.CLet):
        target = _rule3_target(e.bind)
        if target is not None:
            return subst_expr(e.body, {e.name: target})
    return None


def try_rules_expr(e: S.Expr) -> Optional[S.Expr]:
    """One rewrite step at the root of a stable expression, or None."""
    # Rule 3 at stable lets.
    if isinstance(e, S.ELet):
        target = _rule3_target(e.bind)
        if target is not None:
            return subst_expr(e.body, {e.name: target})
    return None


class _Optimizer:
    def __init__(self) -> None:
        self.changed = False

    def rewrite_cexpr(self, e: S.CExpr) -> S.CExpr:
        """Apply rules at this node to exhaustion (children already done)."""
        while True:
            new = try_rules_cexpr(e)
            if new is None:
                return e
            self.changed = True
            e = new

    def rewrite_expr(self, e: S.Expr) -> S.Expr:
        while True:
            new = try_rules_expr(e)
            if new is None:
                return e
            self.changed = True
            e = new

    # -- traversal ----------------------------------------------------------

    def expr(self, e: S.Expr) -> S.Expr:
        if isinstance(e, S.ELet):
            e = S.ELet(
                ty=e.ty, name=e.name, bind=self.bnd(e.bind), body=self.expr(e.body)
            )
            return self.rewrite_expr(e)
        if isinstance(e, S.ELetRec):
            bindings = [(n, self.bnd(l)) for n, l in e.bindings]
            return S.ELetRec(ty=e.ty, bindings=bindings, body=self.expr(e.body))
        if isinstance(e, S.ERet):
            return e
        raise AssertionError(f"unknown expr {e!r}")

    def cexpr(self, e: S.CExpr) -> S.CExpr:
        if isinstance(e, S.CWrite):
            return e
        if isinstance(e, S.CRead):
            e = S.CRead(
                src=e.src, binder=e.binder, binder_ty=e.binder_ty,
                body=self.cexpr(e.body),
            )
            return self.rewrite_cexpr(e)
        if isinstance(e, S.CLet):
            e = S.CLet(name=e.name, bind=self.bnd(e.bind), body=self.cexpr(e.body))
            return self.rewrite_cexpr(e)
        if isinstance(e, S.CLetRec):
            bindings = [(n, self.bnd(l)) for n, l in e.bindings]
            return S.CLetRec(bindings=bindings, body=self.cexpr(e.body))
        if isinstance(e, S.CIf):
            return S.CIf(
                cond=e.cond, then=self.cexpr(e.then), els=self.cexpr(e.els)
            )
        if isinstance(e, S.CCase):
            clauses = [
                S.CaseClause(
                    tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                    body=self.cexpr(c.body),
                )
                for c in e.clauses
            ]
            default = self.cexpr(e.default) if e.default is not None else None
            return S.CCase(dt=e.dt, scrut=e.scrut, clauses=clauses, default=default)
        if isinstance(e, S.CCaseConst):
            arms = [(v, self.cexpr(b)) for v, b in e.arms]
            default = self.cexpr(e.default) if e.default is not None else None
            return S.CCaseConst(scrut=e.scrut, arms=arms, default=default)
        if isinstance(e, S.CImpWrite):
            return S.CImpWrite(ref=e.ref, value=e.value, body=self.cexpr(e.body))
        raise AssertionError(f"unknown cexpr {e!r}")

    def bnd(self, b: S.Bind) -> S.Bind:
        if isinstance(b, S.BMod):
            return S.BMod(ty=b.ty, body=self.cexpr(b.body))
        if isinstance(b, S.BLam):
            return S.BLam(
                ty=b.ty, param=b.param, param_ty=b.param_ty, body=self.expr(b.body),
                param_spec=b.param_spec, name_hint=b.name_hint,
            )
        if isinstance(b, S.BIf):
            return S.BIf(
                ty=b.ty, cond=b.cond, then=self.expr(b.then), els=self.expr(b.els)
            )
        if isinstance(b, S.BCase):
            clauses = [
                S.CaseClause(
                    tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                    body=self.expr(c.body),
                )
                for c in b.clauses
            ]
            default = self.expr(b.default) if b.default is not None else None
            return S.BCase(
                ty=b.ty, dt=b.dt, scrut=b.scrut, clauses=clauses, default=default
            )
        if isinstance(b, S.BCaseConst):
            arms = [(v, self.expr(body)) for v, body in b.arms]
            default = self.expr(b.default) if b.default is not None else None
            return S.BCaseConst(ty=b.ty, scrut=b.scrut, arms=arms, default=default)
        return b


def _rule3_target(b: S.Bind) -> Optional[S.Atom]:
    """Match ``mod (read a as x in write x)``; return ``a`` on success."""
    if (
        isinstance(b, S.BMod)
        and isinstance(b.body, S.CRead)
        and isinstance(b.body.body, S.CWrite)
        and isinstance(b.body.body.atom, S.AVar)
        and b.body.body.atom.name == b.body.binder
    ):
        return b.body.src
    return None


def _count(e, counts: dict) -> None:
    if isinstance(e, S.BMod):
        counts["mod"] += 1
        _count(e.body, counts)
    elif isinstance(e, S.CRead):
        counts["read"] += 1
        _count(e.body, counts)
    elif isinstance(e, S.CWrite):
        counts["write"] += 1
    elif isinstance(e, S.BMemoApp):
        counts["memo"] += 1
    elif isinstance(e, S.ELet):
        _count(e.bind, counts)
        _count(e.body, counts)
    elif isinstance(e, (S.ELetRec, S.CLetRec)):
        for _n, lam in e.bindings:
            _count(lam, counts)
        _count(e.body, counts)
    elif isinstance(e, S.CLet):
        _count(e.bind, counts)
        _count(e.body, counts)
    elif isinstance(e, S.CIf):
        _count(e.then, counts)
        _count(e.els, counts)
    elif isinstance(e, S.CCase):
        for c in e.clauses:
            _count(c.body, counts)
        if e.default is not None:
            _count(e.default, counts)
    elif isinstance(e, S.CCaseConst):
        for _v, body in e.arms:
            _count(body, counts)
        if e.default is not None:
            _count(e.default, counts)
    elif isinstance(e, S.CImpWrite):
        _count(e.body, counts)
    elif isinstance(e, S.BLam):
        _count(e.body, counts)
    elif isinstance(e, S.BIf):
        _count(e.then, counts)
        _count(e.els, counts)
    elif isinstance(e, S.BCase):
        for c in e.clauses:
            _count(c.body, counts)
        if e.default is not None:
            _count(e.default, counts)
    elif isinstance(e, S.BCaseConst):
        for _v, body in e.arms:
            _count(body, counts)
        if e.default is not None:
            _count(e.default, counts)
    elif isinstance(e, (S.ERet, S.Bind)):
        pass
