"""SXML: the A-normal-form intermediate language.

This mirrors the role of MLton's SXML in the paper (Section 3.3): a
monomorphic, A-normal-form IR.  The self-adjusting translation consumes and
produces SXML; the *target-only* forms (``BMod``, ``BMemoApp``,
``BImpWrite`` and the changeable expressions ``CExpr``) only appear after
translation.

Grammar::

    atom  ::= x | c
    bind  ::= atom | prim(op, atoms) | app(f, a) | (atoms) | #i atom
            | Con atoms | fn x => e | if a then e else e | case a of ...
            | ref a | !a | a := a | ascribe a | matchfail
            | mod ce | memoapp(f, a)                -- target only
    e     ::= let x = bind in e | letrec fs in e | ret atom
    ce    ::= write a | read a as x in ce | let x = bind in ce
            | letrec fs in ce | if a then ce else ce | case a of ... ce
            | impwrite a := a in ce                 -- target only

Stable expressions (``Expr``) produce a value; changeable expressions
(``CExpr``) write their result to the ambient destination, exactly the
paper's two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.levelspec import LSpec
from repro.lang.types import Type


# ----------------------------------------------------------------------
# Atoms


@dataclass
class Atom:
    ty: Type = None  # type: ignore[assignment]


@dataclass
class AVar(Atom):
    name: str = ""
    is_builtin: bool = False


@dataclass
class AConst(Atom):
    value: object = None
    kind: str = "int"


# ----------------------------------------------------------------------
# Bindable computations


@dataclass
class Bind:
    ty: Type = None  # type: ignore[assignment]


@dataclass
class BAtom(Bind):
    atom: Atom = None  # type: ignore[assignment]


@dataclass
class BPrim(Bind):
    op: str = ""
    args: List[Atom] = field(default_factory=list)


@dataclass
class BApp(Bind):
    fn: Atom = None  # type: ignore[assignment]
    arg: Atom = None  # type: ignore[assignment]


@dataclass
class BTuple(Bind):
    items: List[Atom] = field(default_factory=list)


@dataclass
class BProj(Bind):
    index: int = 1  # 1-based
    arg: Atom = None  # type: ignore[assignment]


@dataclass
class BCon(Bind):
    dt: str = ""
    tag: str = ""
    args: List[Atom] = field(default_factory=list)  # zero or one


@dataclass
class BLam(Bind):
    param: str = ""
    param_ty: Type = None  # type: ignore[assignment]
    body: "Expr" = None  # type: ignore[assignment]
    param_spec: Optional[LSpec] = None
    name_hint: str = ""


@dataclass
class BIf(Bind):
    cond: Atom = None  # type: ignore[assignment]
    then: "Expr" = None  # type: ignore[assignment]
    els: "Expr" = None  # type: ignore[assignment]


@dataclass
class CaseClause:
    tag: str = ""
    binder: Optional[str] = None  # binds the constructor argument
    binder_ty: Optional[Type] = None
    body: object = None  # Expr or CExpr


@dataclass
class BCase(Bind):
    dt: str = ""
    scrut: Atom = None  # type: ignore[assignment]
    clauses: List[CaseClause] = field(default_factory=list)
    default: Optional[object] = None  # Expr (no binder: wildcard only)
    #: ``tag -> CaseClause``, filled by :func:`repro.core.caseindex.index_cases`
    #: at the end of the pipeline; ``None`` on freshly built/rewritten nodes.
    tag_map: Optional[dict] = field(default=None, compare=False, repr=False)


@dataclass
class BCaseConst(Bind):
    scrut: Atom = None  # type: ignore[assignment]
    arms: List[Tuple[object, object]] = field(default_factory=list)  # (const, Expr)
    default: Optional[object] = None
    #: ``(type, const) -> Expr`` (type-sensitive, matching the arm scan).
    arm_map: Optional[dict] = field(default=None, compare=False, repr=False)


@dataclass
class BRef(Bind):
    arg: Atom = None  # type: ignore[assignment]


@dataclass
class BDeref(Bind):
    arg: Atom = None  # type: ignore[assignment]


@dataclass
class BAssign(Bind):
    ref: Atom = None  # type: ignore[assignment]
    value: Atom = None  # type: ignore[assignment]


@dataclass
class BAscribe(Bind):
    atom: Atom = None  # type: ignore[assignment]
    spec: Optional[LSpec] = None


@dataclass
class BMatchFail(Bind):
    pass


# Target-only binds


@dataclass
class BMod(Bind):
    """``mod ce``: run changeable code into a fresh modifiable."""

    body: "CExpr" = None  # type: ignore[assignment]


@dataclass
class BMemoApp(Bind):
    """Memoized application (the compiler's memoization strategy)."""

    fn: Atom = None  # type: ignore[assignment]
    arg: Atom = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Stable expressions


@dataclass
class Expr:
    ty: Type = None  # type: ignore[assignment]


@dataclass
class ELet(Expr):
    name: str = ""
    bind: Bind = None  # type: ignore[assignment]
    body: Expr = None  # type: ignore[assignment]


@dataclass
class ELetRec(Expr):
    bindings: List[Tuple[str, BLam]] = field(default_factory=list)
    body: Expr = None  # type: ignore[assignment]


@dataclass
class ERet(Expr):
    atom: Atom = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Changeable expressions (target only)


@dataclass
class CExpr:
    pass


@dataclass
class CWrite(CExpr):
    atom: Atom = None  # type: ignore[assignment]


@dataclass
class CRead(CExpr):
    src: Atom = None  # type: ignore[assignment]
    binder: str = ""
    binder_ty: Optional[Type] = None
    body: CExpr = None  # type: ignore[assignment]


@dataclass
class CLet(CExpr):
    name: str = ""
    bind: Bind = None  # type: ignore[assignment]
    body: CExpr = None  # type: ignore[assignment]


@dataclass
class CLetRec(CExpr):
    bindings: List[Tuple[str, BLam]] = field(default_factory=list)
    body: CExpr = None  # type: ignore[assignment]


@dataclass
class CIf(CExpr):
    cond: Atom = None  # type: ignore[assignment]
    then: CExpr = None  # type: ignore[assignment]
    els: CExpr = None  # type: ignore[assignment]


@dataclass
class CCase(CExpr):
    dt: str = ""
    scrut: Atom = None  # type: ignore[assignment]
    clauses: List[CaseClause] = field(default_factory=list)
    default: Optional[CExpr] = None
    #: ``tag -> CaseClause``; see :func:`repro.core.caseindex.index_cases`.
    tag_map: Optional[dict] = field(default=None, compare=False, repr=False)


@dataclass
class CCaseConst(CExpr):
    scrut: Atom = None  # type: ignore[assignment]
    arms: List[Tuple[object, CExpr]] = field(default_factory=list)
    default: Optional[CExpr] = None
    #: ``(type, const) -> CExpr`` (type-sensitive, matching the arm scan).
    arm_map: Optional[dict] = field(default=None, compare=False, repr=False)


@dataclass
class CImpWrite(CExpr):
    ref: Atom = None  # type: ignore[assignment]
    value: Atom = None  # type: ignore[assignment]
    body: CExpr = None  # type: ignore[assignment]
