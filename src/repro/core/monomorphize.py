"""Monomorphization.

The paper's translation algorithm "expects, and produces, monomorphic code
in A-normal form" (Section 3.3); MLton's pipeline provides this via its
monomorphisation pass.  This module is our equivalent: it specializes every
polymorphic top-level binding per ground instantiation, keyed by the
instantiation types recorded at each use site during elaboration.

After this pass every type in the program is ground (residual unconstrained
type variables default to ``unit``), so the downstream passes (match
compilation, A-normalization, level inference, translation) never see a
type variable.

Polymorphic *datatypes* need no renaming: constructor tags identify the
clause regardless of instantiation, and level inference keys its per-
datatype field tables by the mangled ground instance type.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import ir as C
from repro.core.freshen import fresh
from repro.lang.types import (
    TVar,
    Type,
    UNIT,
    force,
    mangle,
    subst_vars,
    zonk,
)


def monomorphize(program: C.CoreProgram) -> C.CoreProgram:
    """Specialize all polymorphic bindings; returns a ground program."""
    mono = _Mono()
    body = mono.go(program.body, {}, {})
    return C.CoreProgram(
        body=body,
        datatypes=program.datatypes,
        main_type=_ground(program.main_type, {}),
    )


def _ground(ty: Type, tmap: Dict[int, Type]) -> Type:
    """Zonk, substitute, and default residual variables to unit."""
    ty = zonk(subst_vars(zonk(ty), tmap))
    return _default_tvars(ty)


def _default_tvars(ty: Type) -> Type:
    from repro.lang.types import TArrow, TCon, TTuple

    ty = force(ty)
    if isinstance(ty, TVar):
        return UNIT
    if isinstance(ty, TCon):
        if not ty.args:
            return ty
        return TCon(ty.name, [_default_tvars(a) for a in ty.args])
    if isinstance(ty, TTuple):
        return TTuple([_default_tvars(t) for t in ty.items])
    if isinstance(ty, TArrow):
        return TArrow(_default_tvars(ty.dom), _default_tvars(ty.cod))
    raise AssertionError(f"unknown type {ty!r}")


class _Mono:
    def __init__(self) -> None:
        # original binding name -> {mangled key: instantiation types}
        self.requests: Dict[str, Dict[str, List[Type]]] = {}

    # ------------------------------------------------------------------

    def go(self, e: C.CoreExpr, tmap: Dict[int, Type], rn: Dict[str, str]) -> C.CoreExpr:
        """Copy ``e`` with types grounded by ``tmap``, binders freshened by
        ``rn``, and polymorphic bindings specialized."""
        ty = _ground(e.ty, tmap)

        if isinstance(e, C.CVar):
            if e.is_builtin:
                return C.CVar(ty=ty, name=e.name, inst=None, is_builtin=True, span=e.span)
            if e.inst is not None:
                inst_tys = [_ground(t, tmap) for t in e.inst]
                key = ",".join(mangle(t) for t in inst_tys)
                self.requests.setdefault(e.name, {})[key] = inst_tys
                return C.CVar(ty=ty, name=_spec_name(e.name, key), span=e.span)
            return C.CVar(ty=ty, name=rn.get(e.name, e.name), span=e.span)

        if isinstance(e, C.CConst):
            return C.CConst(ty=ty, value=e.value, kind=e.kind, span=e.span)

        if isinstance(e, C.CLam):
            new_param = fresh(e.param)
            inner = dict(rn)
            inner[e.param] = new_param
            return C.CLam(
                ty=ty,
                param=new_param,
                param_ty=_ground(e.param_ty, tmap),
                body=self.go(e.body, tmap, inner),
                param_spec=e.param_spec,
                span=e.span,
            )

        if isinstance(e, C.CApp):
            return C.CApp(
                ty=ty, fn=self.go(e.fn, tmap, rn), arg=self.go(e.arg, tmap, rn),
                span=e.span,
            )
        if isinstance(e, C.CPrim):
            return C.CPrim(
                ty=ty, op=e.op, args=[self.go(a, tmap, rn) for a in e.args], span=e.span
            )
        if isinstance(e, C.CCon):
            return C.CCon(
                ty=ty, dt=e.dt, tag=e.tag,
                args=[self.go(a, tmap, rn) for a in e.args], span=e.span,
            )
        if isinstance(e, C.CTuple):
            return C.CTuple(ty=ty, items=[self.go(i, tmap, rn) for i in e.items], span=e.span)
        if isinstance(e, C.CProj):
            return C.CProj(ty=ty, index=e.index, arg=self.go(e.arg, tmap, rn), span=e.span)
        if isinstance(e, C.CIf):
            return C.CIf(
                ty=ty, cond=self.go(e.cond, tmap, rn),
                then=self.go(e.then, tmap, rn), els=self.go(e.els, tmap, rn),
                span=e.span,
            )
        if isinstance(e, C.CCase):
            clauses = []
            for pat, body in e.clauses:
                inner = dict(rn)
                new_pat = self.go_pat(pat, tmap, inner)
                clauses.append((new_pat, self.go(body, tmap, inner)))
            return C.CCase(
                ty=ty, scrut=self.go(e.scrut, tmap, rn), clauses=clauses, span=e.span
            )
        if isinstance(e, C.CRef):
            return C.CRef(ty=ty, arg=self.go(e.arg, tmap, rn), span=e.span)
        if isinstance(e, C.CDeref):
            return C.CDeref(ty=ty, arg=self.go(e.arg, tmap, rn), span=e.span)
        if isinstance(e, C.CAssign):
            return C.CAssign(
                ty=ty, ref=self.go(e.ref, tmap, rn), value=self.go(e.value, tmap, rn),
                span=e.span,
            )
        if isinstance(e, C.CAscribe):
            return C.CAscribe(ty=ty, expr=self.go(e.expr, tmap, rn), spec=e.spec, span=e.span)

        if isinstance(e, C.CLet):
            if e.scheme is not None and e.scheme.qvars:
                return self.specialize_let(e, tmap, rn, ty)
            new_rhs = self.go(e.rhs, tmap, rn)
            new_name = fresh(e.name)
            inner = dict(rn)
            inner[e.name] = new_name
            return C.CLet(
                ty=ty, name=new_name, scheme=None, rhs=new_rhs,
                body=self.go(e.body, tmap, inner), span=e.span,
            )

        if isinstance(e, C.CLetRec):
            qvars = e.bindings[0][1].qvars if e.bindings else []
            if qvars:
                return self.specialize_letrec(e, tmap, rn, ty)
            inner = dict(rn)
            new_names = {name: fresh(name) for name, _s, _l in e.bindings}
            inner.update(new_names)
            bindings = [
                (new_names[name], None, self.go(lam, tmap, inner))
                for name, _scheme, lam in e.bindings
            ]
            return C.CLetRec(ty=ty, bindings=bindings, body=self.go(e.body, tmap, inner), span=e.span)

        raise AssertionError(f"unknown Core node {e!r}")

    # ------------------------------------------------------------------

    def specialize_let(
        self, e: C.CLet, tmap: Dict[int, Type], rn: Dict[str, str], ty: Type
    ) -> C.CoreExpr:
        result = self.go(e.body, tmap, rn)
        requests = self.requests.pop(e.name, {})
        for key, inst_tys in requests.items():
            tmap2 = dict(tmap)
            for qv, t in zip(e.scheme.qvars, inst_tys):
                tmap2[id(qv)] = t
            rhs = self.go(e.rhs, tmap2, rn)
            result = C.CLet(
                ty=result.ty, name=_spec_name(e.name, key), scheme=None,
                rhs=rhs, body=result, span=e.span,
            )
        return result

    def specialize_letrec(
        self, e: C.CLetRec, tmap: Dict[int, Type], rn: Dict[str, str], ty: Type
    ) -> C.CoreExpr:
        result = self.go(e.body, tmap, rn)
        qvars = e.bindings[0][1].qvars
        # Union of requests for all group members.
        merged: Dict[str, List[Type]] = {}
        for name, _scheme, _lam in e.bindings:
            merged.update(self.requests.pop(name, {}))
        for key, inst_tys in merged.items():
            tmap2 = dict(tmap)
            for qv, t in zip(qvars, inst_tys):
                tmap2[id(qv)] = t
            inner = dict(rn)
            for name, _scheme, _lam in e.bindings:
                inner[name] = _spec_name(name, key)
            bindings = [
                (_spec_name(name, key), None, self.go(lam, tmap2, inner))
                for name, _scheme, lam in e.bindings
            ]
            result = C.CLetRec(ty=result.ty, bindings=bindings, body=result, span=e.span)
        return result

    # ------------------------------------------------------------------

    def go_pat(self, p: C.CPat, tmap: Dict[int, Type], rn: Dict[str, str]) -> C.CPat:
        ty = _ground(p.ty, tmap)
        if isinstance(p, C.CPWild):
            return C.CPWild(ty=ty, span=p.span)
        if isinstance(p, C.CPConst):
            return C.CPConst(ty=ty, value=p.value, kind=p.kind, span=p.span)
        if isinstance(p, C.CPVar):
            new_name = fresh(p.name)
            rn[p.name] = new_name
            return C.CPVar(ty=ty, name=new_name, span=p.span)
        if isinstance(p, C.CPTuple):
            return C.CPTuple(ty=ty, items=[self.go_pat(i, tmap, rn) for i in p.items], span=p.span)
        if isinstance(p, C.CPCon):
            return C.CPCon(
                ty=ty, dt=p.dt, tag=p.tag,
                args=[self.go_pat(a, tmap, rn) for a in p.args], span=p.span,
            )
        raise AssertionError(f"unknown pattern {p!r}")


def _spec_name(name: str, key: str) -> str:
    return f"{name}@{key}"
