"""The LML compiler middle-end and back-end.

This package contains the paper's compiler pipeline (Figure 3):

* :mod:`repro.core.ir` -- the typed Core IR produced by elaboration;
* :mod:`repro.core.monomorphize` -- specialization of polymorphic bindings
  and datatypes (MLton's monomorphisation);
* :mod:`repro.core.matchcomp` -- nested-pattern compilation;
* :mod:`repro.core.anf` -- A-normalization into the SXML-like IR;
* :mod:`repro.core.levels` -- level ($S/$C) inference on the monomorphic
  program (the propagation of level annotations through the pipeline);
* :mod:`repro.core.translate` -- the type-directed self-adjusting
  translation (the paper's primary contribution, Section 3.3);
* :mod:`repro.core.optimize` -- the three shrinking rewrite rules of
  Section 3.4 (terminating and confluent, Theorem 3.1);
* :mod:`repro.core.deadcode` -- dead-code elimination on ANF;
* :mod:`repro.core.pipeline` -- the driver tying it all together.
"""

__all__ = ["CompiledProgram", "compile_program"]


def __getattr__(name):
    # Lazy to avoid a circular import: the pipeline imports the interpreters,
    # which import the SXML IR from this package.
    if name in __all__:
        from repro.core import pipeline

        return getattr(pipeline, name)
    raise AttributeError(name)
