"""Pattern-match compilation.

Lowers Core ``case`` expressions with nested patterns into *simple* cases:

* datatype cases whose clauses are ``Tag x => e`` / ``Tag => e`` plus an
  optional wildcard default;
* constant cases over base types;
* irrefutable tuple bindings, which become projections.

The algorithm is the classic first-column specialization over a clause
matrix.  Right-hand sides may be duplicated when clauses overlap across
constructors; benchmark-scale programs keep this harmless (DESIGN.md
Section 6 records the trade-off).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import ir as C
from repro.core.freshen import fresh
from repro.lang.errors import LmlCompileError
from repro.lang.types import TCon, Type, force


def compile_matches(program: C.CoreProgram) -> C.CoreProgram:
    """Rewrite all nested-pattern cases in ``program`` into simple cases."""
    mc = _MatchComp(program.datatypes)
    return C.CoreProgram(
        body=mc.go(program.body),
        datatypes=program.datatypes,
        main_type=program.main_type,
    )


def _is_var_pat(p: C.CPat) -> bool:
    return isinstance(p, (C.CPVar, C.CPWild))


class _MatchComp:
    def __init__(self, datatypes) -> None:
        self.datatypes = datatypes

    # -- generic traversal -------------------------------------------------

    def go(self, e: C.CoreExpr) -> C.CoreExpr:
        if isinstance(e, (C.CVar, C.CConst)):
            return e
        if isinstance(e, C.CLam):
            return C.CLam(
                ty=e.ty, param=e.param, param_ty=e.param_ty, body=self.go(e.body),
                param_spec=e.param_spec, span=e.span,
            )
        if isinstance(e, C.CApp):
            return C.CApp(ty=e.ty, fn=self.go(e.fn), arg=self.go(e.arg), span=e.span)
        if isinstance(e, C.CPrim):
            return C.CPrim(ty=e.ty, op=e.op, args=[self.go(a) for a in e.args], span=e.span)
        if isinstance(e, C.CCon):
            return C.CCon(ty=e.ty, dt=e.dt, tag=e.tag, args=[self.go(a) for a in e.args], span=e.span)
        if isinstance(e, C.CTuple):
            return C.CTuple(ty=e.ty, items=[self.go(i) for i in e.items], span=e.span)
        if isinstance(e, C.CProj):
            return C.CProj(ty=e.ty, index=e.index, arg=self.go(e.arg), span=e.span)
        if isinstance(e, C.CIf):
            return C.CIf(ty=e.ty, cond=self.go(e.cond), then=self.go(e.then), els=self.go(e.els), span=e.span)
        if isinstance(e, C.CLet):
            return C.CLet(ty=e.ty, name=e.name, scheme=e.scheme, rhs=self.go(e.rhs), body=self.go(e.body), span=e.span)
        if isinstance(e, C.CLetRec):
            bindings = [(n, s, self.go(l)) for n, s, l in e.bindings]
            return C.CLetRec(ty=e.ty, bindings=bindings, body=self.go(e.body), span=e.span)
        if isinstance(e, C.CRef):
            return C.CRef(ty=e.ty, arg=self.go(e.arg), span=e.span)
        if isinstance(e, C.CDeref):
            return C.CDeref(ty=e.ty, arg=self.go(e.arg), span=e.span)
        if isinstance(e, C.CAssign):
            return C.CAssign(ty=e.ty, ref=self.go(e.ref), value=self.go(e.value), span=e.span)
        if isinstance(e, C.CAscribe):
            return C.CAscribe(ty=e.ty, expr=self.go(e.expr), spec=e.spec, span=e.span)
        if isinstance(e, C.CCase):
            scrut = self.go(e.scrut)
            clauses = [(pat, self.go(body)) for pat, body in e.clauses]
            return self.compile_case(scrut, clauses, e.ty)
        raise AssertionError(f"unknown Core node {e!r}")

    # -- match compilation --------------------------------------------------

    def compile_case(
        self,
        scrut: C.CoreExpr,
        clauses: List[Tuple[C.CPat, C.CoreExpr]],
        result_ty: Type,
    ) -> C.CoreExpr:
        """Compile one source case into simple cases."""
        # Name the scrutinee so the matrix works over variables.
        if isinstance(scrut, C.CVar):
            var = scrut
            wrap = lambda body: body  # noqa: E731
        else:
            name = fresh("scrut")
            var = C.CVar(ty=scrut.ty, name=name)
            wrap = lambda body: C.CLet(  # noqa: E731
                ty=body.ty, name=name, scheme=None, rhs=scrut, body=body
            )
        rows = [([pat], body) for pat, body in clauses]
        compiled = self.match([var], rows, result_ty)
        return wrap(compiled)

    def match(
        self,
        scruts: List[C.CoreExpr],
        rows: List[Tuple[List[C.CPat], C.CoreExpr]],
        result_ty: Type,
    ) -> C.CoreExpr:
        if not rows:
            return C.CPrim(ty=result_ty, op="matchfail", args=[])
        first_pats, first_body = rows[0]
        # All patterns in the first row are variables: bind and done.
        if all(_is_var_pat(p) for p in first_pats):
            body = first_body
            for pat, scrut in zip(first_pats, scruts):
                if isinstance(pat, C.CPVar):
                    body = C.CLet(
                        ty=body.ty, name=pat.name, scheme=None, rhs=scrut, body=body
                    )
            return body
        # Pick the first column with a non-variable pattern.
        col = next(
            i for i, p in enumerate(first_pats) if not _is_var_pat(p)
        )
        scrut = scruts[col]
        head = first_pats[col]
        if isinstance(head, C.CPTuple):
            return self.match_tuple(scruts, rows, col, result_ty)
        if isinstance(head, C.CPCon):
            return self.match_con(scruts, rows, col, result_ty)
        if isinstance(head, C.CPConst):
            return self.match_const(scruts, rows, col, result_ty)
        raise AssertionError(f"unknown pattern {head!r}")

    def match_tuple(self, scruts, rows, col, result_ty) -> C.CoreExpr:
        """Expand a tuple column into one column per component."""
        scrut = scruts[col]
        tup_ty = force(scrut.ty)
        arity = len(tup_ty.items)  # type: ignore[attr-defined]
        comp_names = [fresh("f") for _ in range(arity)]
        comp_vars = [
            C.CVar(ty=tup_ty.items[i], name=comp_names[i]) for i in range(arity)
        ]
        new_scruts = scruts[:col] + comp_vars + scruts[col + 1 :]
        new_rows = []
        for pats, body in rows:
            p = pats[col]
            if isinstance(p, C.CPTuple):
                sub = p.items
            elif isinstance(p, C.CPVar):
                # Rebind the variable to the tuple itself; components wild.
                body = C.CLet(ty=body.ty, name=p.name, scheme=None, rhs=scrut, body=body)
                sub = [C.CPWild(ty=t) for t in tup_ty.items]  # type: ignore[attr-defined]
            elif isinstance(p, C.CPWild):
                sub = [C.CPWild(ty=t) for t in tup_ty.items]  # type: ignore[attr-defined]
            else:
                raise LmlCompileError("tuple pattern against non-tuple")
            new_rows.append((pats[:col] + list(sub) + pats[col + 1 :], body))
        inner = self.match(new_scruts, new_rows, result_ty)
        for i in reversed(range(arity)):
            inner = C.CLet(
                ty=inner.ty,
                name=comp_names[i],
                scheme=None,
                rhs=C.CProj(ty=tup_ty.items[i], index=i + 1, arg=scrut),  # type: ignore[attr-defined]
                body=inner,
            )
        return inner

    def match_con(self, scruts, rows, col, result_ty) -> C.CoreExpr:
        scrut = scruts[col]
        scrut_ty = force(scrut.ty)
        assert isinstance(scrut_ty, TCon)
        info = self.datatypes[scrut_ty.name]
        from repro.lang.types import subst_vars

        tmap = {id(tv): arg for tv, arg in zip(info.tyvars, scrut_ty.args)}

        # Which constructors appear in this column?
        seen_tags = []
        for pats, _body in rows:
            p = pats[col]
            if isinstance(p, C.CPCon) and p.tag not in seen_tags:
                seen_tags.append(p.tag)
        has_default_rows = any(_is_var_pat(pats[col]) for pats, _ in rows)
        exhaustive = len(seen_tags) == len(info.constructors)

        clauses = []
        for tag in seen_tags:
            con = info.con(tag)
            field_ty = (
                subst_vars(con.arg_ty, tmap) if con.arg_ty is not None else None
            )
            if field_ty is not None:
                binder = fresh("arg")
                binder_var = C.CVar(ty=field_ty, name=binder)
                sub_scruts = scruts[:col] + [binder_var] + scruts[col + 1 :]
            else:
                binder = None
                sub_scruts = scruts[:col] + [scrut] + scruts[col + 1 :]
            sub_rows = []
            for pats, body in rows:
                p = pats[col]
                if isinstance(p, C.CPCon):
                    if p.tag != tag:
                        continue
                    sub_pat = (
                        p.args[0]
                        if p.args
                        else C.CPWild(ty=scrut_ty)
                    )
                    sub_rows.append((pats[:col] + [sub_pat] + pats[col + 1 :], body))
                else:  # var/wild row applies to every constructor
                    if isinstance(p, C.CPVar):
                        body = C.CLet(
                            ty=body.ty, name=p.name, scheme=None, rhs=scrut, body=body
                        )
                    filler_ty = field_ty if field_ty is not None else scrut_ty
                    sub_rows.append(
                        (pats[:col] + [C.CPWild(ty=filler_ty)] + pats[col + 1 :], body)
                    )
            sub = self.match(sub_scruts, sub_rows, result_ty)
            pat_args = (
                [C.CPVar(ty=field_ty, name=binder)] if binder is not None else []
            )
            clauses.append(
                (C.CPCon(ty=scrut_ty, dt=info.name, tag=tag, args=pat_args), sub)
            )

        default: Optional[C.CoreExpr] = None
        if not exhaustive:
            default_rows = []
            for pats, body in rows:
                p = pats[col]
                if _is_var_pat(p):
                    if isinstance(p, C.CPVar):
                        body = C.CLet(
                            ty=body.ty, name=p.name, scheme=None, rhs=scrut, body=body
                        )
                    default_rows.append(
                        (pats[:col] + [C.CPWild(ty=scrut_ty)] + pats[col + 1 :], body)
                    )
            if default_rows:
                default = self.match(scruts, default_rows, result_ty)
            else:
                default = C.CPrim(ty=result_ty, op="matchfail", args=[])
        elif has_default_rows:
            # Exhaustive via constructors; var rows already distributed.
            pass

        case_clauses = list(clauses)
        if default is not None:
            case_clauses.append((C.CPWild(ty=scrut_ty), default))
        return C.CCase(ty=result_ty, scrut=scrut, clauses=case_clauses)

    def match_const(self, scruts, rows, col, result_ty) -> C.CoreExpr:
        scrut = scruts[col]
        values = []
        for pats, _body in rows:
            p = pats[col]
            if isinstance(p, C.CPConst) and p.value not in values:
                values.append(p.value)
        # Build nested simple constant-cases: value arms plus default.
        arms = []
        for value in values:
            sub_rows = []
            for pats, body in rows:
                p = pats[col]
                if isinstance(p, C.CPConst):
                    if p.value == value and type(p.value) is type(value):
                        sub_rows.append(
                            (pats[:col] + [C.CPWild(ty=p.ty)] + pats[col + 1 :], body)
                        )
                else:
                    if isinstance(p, C.CPVar):
                        body = C.CLet(
                            ty=body.ty, name=p.name, scheme=None, rhs=scrut, body=body
                        )
                    sub_rows.append(
                        (pats[:col] + [C.CPWild(ty=p.ty)] + pats[col + 1 :], body)
                    )
            arms.append((value, self.match(scruts, sub_rows, result_ty)))
        default_rows = []
        for pats, body in rows:
            p = pats[col]
            if _is_var_pat(p):
                if isinstance(p, C.CPVar):
                    body = C.CLet(
                        ty=body.ty, name=p.name, scheme=None, rhs=scrut, body=body
                    )
                default_rows.append(
                    (pats[:col] + [C.CPWild(ty=scrut.ty)] + pats[col + 1 :], body)
                )
        if default_rows:
            default = self.match(scruts, default_rows, result_ty)
        else:
            default = C.CPrim(ty=result_ty, op="matchfail", args=[])
        # Represent as a chain of equality tests (simple, and keeps the
        # simple-case IR free of constant dispatch nodes).
        result = default
        from repro.lang.types import BOOL

        for value, arm in reversed(arms):
            kind = _const_kind(value)
            cond = C.CPrim(
                ty=BOOL,
                op="=",
                args=[scrut, C.CConst(ty=scrut.ty, value=value, kind=kind)],
            )
            result = C.CIf(ty=result_ty, cond=cond, then=arm, els=result)
        return result


def _const_kind(value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "real"
    if isinstance(value, str):
        return "string"
    if value == ():
        return "unit"
    raise AssertionError(f"unknown constant {value!r}")
