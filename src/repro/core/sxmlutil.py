"""Utilities over the SXML IR: substitution, free variables, copy
propagation.  Shared by A-normalization, the optimizer, and dead-code
elimination.

All passes assume globally unique binder names (guaranteed by uniquify /
monomorphization), so substitution never needs capture avoidance.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core import sxml as S


def _resolve(atom: S.Atom, env: Dict[str, S.Atom]) -> S.Atom:
    while isinstance(atom, S.AVar) and atom.name in env:
        atom = env[atom.name]
    return atom


def subst_expr(e, env: Dict[str, S.Atom]):
    """Substitute atoms for variables throughout an Expr or CExpr."""
    if not env:
        return e
    return _sub(e, env)


def copy_propagate(e):
    """Remove ``let x = y`` / ``let x = c`` bindings, substituting through."""
    return _cp(e, {})


# ----------------------------------------------------------------------


def _cp(e, env: Dict[str, S.Atom]):
    if isinstance(e, S.ELet) and isinstance(e.bind, S.BAtom):
        env = dict(env)
        env[e.name] = _resolve(e.bind.atom, env)
        return _cp(e.body, env)
    if isinstance(e, S.CLet) and isinstance(e.bind, S.BAtom):
        env = dict(env)
        env[e.name] = _resolve(e.bind.atom, env)
        return _cp(e.body, env)
    return _sub(e, env, again=_cp)


def _sub(e, env: Dict[str, S.Atom], again=None):
    """Structural map over Expr/CExpr applying the substitution ``env``.

    ``again`` lets :func:`_cp` re-dispatch on children (so nested trivial
    lets are removed too); plain substitution recurses into itself.
    """
    rec = again or (lambda x, v: _sub(x, v))
    at = lambda a: _resolve(a, env)  # noqa: E731

    # -- stable expressions
    if isinstance(e, S.ELet):
        return S.ELet(ty=e.ty, name=e.name, bind=_sub_bind(e.bind, env, rec), body=rec(e.body, env))
    if isinstance(e, S.ELetRec):
        bindings = [(n, _sub_bind(b, env, rec)) for n, b in e.bindings]
        return S.ELetRec(ty=e.ty, bindings=bindings, body=rec(e.body, env))
    if isinstance(e, S.ERet):
        return S.ERet(ty=e.ty, atom=at(e.atom))
    # -- changeable expressions
    if isinstance(e, S.CWrite):
        return S.CWrite(atom=at(e.atom))
    if isinstance(e, S.CRead):
        return S.CRead(src=at(e.src), binder=e.binder, binder_ty=e.binder_ty, body=rec(e.body, env))
    if isinstance(e, S.CLet):
        return S.CLet(name=e.name, bind=_sub_bind(e.bind, env, rec), body=rec(e.body, env))
    if isinstance(e, S.CLetRec):
        bindings = [(n, _sub_bind(b, env, rec)) for n, b in e.bindings]
        return S.CLetRec(bindings=bindings, body=rec(e.body, env))
    if isinstance(e, S.CIf):
        return S.CIf(cond=at(e.cond), then=rec(e.then, env), els=rec(e.els, env))
    if isinstance(e, S.CCase):
        clauses = [
            S.CaseClause(tag=c.tag, binder=c.binder, binder_ty=c.binder_ty, body=rec(c.body, env))
            for c in e.clauses
        ]
        default = rec(e.default, env) if e.default is not None else None
        return S.CCase(dt=e.dt, scrut=at(e.scrut), clauses=clauses, default=default)
    if isinstance(e, S.CCaseConst):
        arms = [(v, rec(b, env)) for v, b in e.arms]
        default = rec(e.default, env) if e.default is not None else None
        return S.CCaseConst(scrut=at(e.scrut), arms=arms, default=default)
    if isinstance(e, S.CImpWrite):
        return S.CImpWrite(ref=at(e.ref), value=at(e.value), body=rec(e.body, env))
    raise AssertionError(f"unknown SXML node {e!r}")


def _sub_bind(b: S.Bind, env: Dict[str, S.Atom], rec) -> S.Bind:
    at = lambda a: _resolve(a, env)  # noqa: E731
    if isinstance(b, S.BAtom):
        return S.BAtom(ty=b.ty, atom=at(b.atom))
    if isinstance(b, S.BPrim):
        return S.BPrim(ty=b.ty, op=b.op, args=[at(a) for a in b.args])
    if isinstance(b, S.BApp):
        return S.BApp(ty=b.ty, fn=at(b.fn), arg=at(b.arg))
    if isinstance(b, S.BMemoApp):
        return S.BMemoApp(ty=b.ty, fn=at(b.fn), arg=at(b.arg))
    if isinstance(b, S.BTuple):
        return S.BTuple(ty=b.ty, items=[at(a) for a in b.items])
    if isinstance(b, S.BProj):
        return S.BProj(ty=b.ty, index=b.index, arg=at(b.arg))
    if isinstance(b, S.BCon):
        return S.BCon(ty=b.ty, dt=b.dt, tag=b.tag, args=[at(a) for a in b.args])
    if isinstance(b, S.BLam):
        return S.BLam(
            ty=b.ty, param=b.param, param_ty=b.param_ty, body=rec(b.body, env),
            param_spec=b.param_spec, name_hint=b.name_hint,
        )
    if isinstance(b, S.BIf):
        return S.BIf(ty=b.ty, cond=at(b.cond), then=rec(b.then, env), els=rec(b.els, env))
    if isinstance(b, S.BCase):
        clauses = [
            S.CaseClause(tag=c.tag, binder=c.binder, binder_ty=c.binder_ty, body=rec(c.body, env))
            for c in b.clauses
        ]
        default = rec(b.default, env) if b.default is not None else None
        return S.BCase(ty=b.ty, dt=b.dt, scrut=at(b.scrut), clauses=clauses, default=default)
    if isinstance(b, S.BCaseConst):
        arms = [(v, rec(body, env)) for v, body in b.arms]
        default = rec(b.default, env) if b.default is not None else None
        return S.BCaseConst(ty=b.ty, scrut=at(b.scrut), arms=arms, default=default)
    if isinstance(b, S.BRef):
        return S.BRef(ty=b.ty, arg=at(b.arg))
    if isinstance(b, S.BDeref):
        return S.BDeref(ty=b.ty, arg=at(b.arg))
    if isinstance(b, S.BAssign):
        return S.BAssign(ty=b.ty, ref=at(b.ref), value=at(b.value))
    if isinstance(b, S.BAscribe):
        return S.BAscribe(ty=b.ty, atom=at(b.atom), spec=b.spec)
    if isinstance(b, S.BMatchFail):
        return b
    if isinstance(b, S.BMod):
        return S.BMod(ty=b.ty, body=rec(b.body, env))
    raise AssertionError(f"unknown bind {b!r}")


# ----------------------------------------------------------------------
# Free variables


def free_vars(e, acc: Optional[Set[str]] = None, bound: Optional[Set[str]] = None) -> Set[str]:
    """Free variable names of an Expr, CExpr, or Bind."""
    if acc is None:
        acc = set()
    if bound is None:
        bound = set()
    _fv(e, acc, bound)
    return acc


def _fv_atom(a: S.Atom, acc: Set[str], bound: Set[str]) -> None:
    if isinstance(a, S.AVar) and a.name not in bound and not a.is_builtin:
        acc.add(a.name)


def _fv(e, acc: Set[str], bound: Set[str]) -> None:
    if isinstance(e, S.ELet):
        _fv_bind(e.bind, acc, bound)
        _fv(e.body, acc, bound | {e.name})
    elif isinstance(e, S.ELetRec):
        names = {n for n, _ in e.bindings}
        for _n, lam in e.bindings:
            _fv_bind(lam, acc, bound | names)
        _fv(e.body, acc, bound | names)
    elif isinstance(e, S.ERet):
        _fv_atom(e.atom, acc, bound)
    elif isinstance(e, S.CWrite):
        _fv_atom(e.atom, acc, bound)
    elif isinstance(e, S.CRead):
        _fv_atom(e.src, acc, bound)
        _fv(e.body, acc, bound | {e.binder})
    elif isinstance(e, S.CLet):
        _fv_bind(e.bind, acc, bound)
        _fv(e.body, acc, bound | {e.name})
    elif isinstance(e, S.CLetRec):
        names = {n for n, _ in e.bindings}
        for _n, lam in e.bindings:
            _fv_bind(lam, acc, bound | names)
        _fv(e.body, acc, bound | names)
    elif isinstance(e, S.CIf):
        _fv_atom(e.cond, acc, bound)
        _fv(e.then, acc, bound)
        _fv(e.els, acc, bound)
    elif isinstance(e, (S.CCase, S.CCaseConst)):
        _fv_atom(e.scrut, acc, bound)
        if isinstance(e, S.CCase):
            for c in e.clauses:
                extra = {c.binder} if c.binder else set()
                _fv(c.body, acc, bound | extra)
        else:
            for _v, body in e.arms:
                _fv(body, acc, bound)
        if e.default is not None:
            _fv(e.default, acc, bound)
    elif isinstance(e, S.CImpWrite):
        _fv_atom(e.ref, acc, bound)
        _fv_atom(e.value, acc, bound)
        _fv(e.body, acc, bound)
    elif isinstance(e, S.Bind):
        _fv_bind(e, acc, bound)
    else:
        raise AssertionError(f"unknown SXML node {e!r}")


def _fv_bind(b: S.Bind, acc: Set[str], bound: Set[str]) -> None:
    if isinstance(b, S.BAtom):
        _fv_atom(b.atom, acc, bound)
    elif isinstance(b, S.BPrim):
        for a in b.args:
            _fv_atom(a, acc, bound)
    elif isinstance(b, (S.BApp, S.BMemoApp)):
        _fv_atom(b.fn, acc, bound)
        _fv_atom(b.arg, acc, bound)
    elif isinstance(b, S.BTuple):
        for a in b.items:
            _fv_atom(a, acc, bound)
    elif isinstance(b, S.BProj):
        _fv_atom(b.arg, acc, bound)
    elif isinstance(b, S.BCon):
        for a in b.args:
            _fv_atom(a, acc, bound)
    elif isinstance(b, S.BLam):
        _fv(b.body, acc, bound | {b.param})
    elif isinstance(b, S.BIf):
        _fv_atom(b.cond, acc, bound)
        _fv(b.then, acc, bound)
        _fv(b.els, acc, bound)
    elif isinstance(b, S.BCase):
        _fv_atom(b.scrut, acc, bound)
        for c in b.clauses:
            extra = {c.binder} if c.binder else set()
            _fv(c.body, acc, bound | extra)
        if b.default is not None:
            _fv(b.default, acc, bound)
    elif isinstance(b, S.BCaseConst):
        _fv_atom(b.scrut, acc, bound)
        for _v, body in b.arms:
            _fv(body, acc, bound)
        if b.default is not None:
            _fv(b.default, acc, bound)
    elif isinstance(b, S.BRef):
        _fv_atom(b.arg, acc, bound)
    elif isinstance(b, S.BDeref):
        _fv_atom(b.arg, acc, bound)
    elif isinstance(b, S.BAssign):
        _fv_atom(b.ref, acc, bound)
        _fv_atom(b.value, acc, bound)
    elif isinstance(b, S.BAscribe):
        _fv_atom(b.atom, acc, bound)
    elif isinstance(b, S.BMatchFail):
        pass
    elif isinstance(b, S.BMod):
        _fv(b.body, acc, bound)
    else:
        raise AssertionError(f"unknown bind {b!r}")


# ----------------------------------------------------------------------
# Alpha equivalence (used to state the optimizer's confluence, Thm 3.1)


def alpha_equal(a, b, env: Optional[Dict[str, str]] = None) -> bool:
    """Alpha-equivalence of two Expr/CExpr/Bind terms.

    ``env`` maps binder names of ``a`` to the corresponding names of ``b``.
    """
    if env is None:
        env = {}
    if type(a) is not type(b):
        return False
    if isinstance(a, S.AVar):
        return env.get(a.name, a.name) == b.name and a.is_builtin == b.is_builtin
    if isinstance(a, S.AConst):
        return a.value == b.value and a.kind == b.kind
    if isinstance(a, S.ELet):
        return alpha_equal(a.bind, b.bind, env) and alpha_equal(
            a.body, b.body, {**env, a.name: b.name}
        )
    if isinstance(a, (S.ELetRec, S.CLetRec)):
        if len(a.bindings) != len(b.bindings):
            return False
        inner = dict(env)
        for (na, _), (nb, _) in zip(a.bindings, b.bindings):
            inner[na] = nb
        return all(
            alpha_equal(la, lb, inner)
            for (_, la), (_, lb) in zip(a.bindings, b.bindings)
        ) and alpha_equal(a.body, b.body, inner)
    if isinstance(a, S.ERet):
        return alpha_equal(a.atom, b.atom, env)
    if isinstance(a, S.CWrite):
        return alpha_equal(a.atom, b.atom, env)
    if isinstance(a, S.CRead):
        return alpha_equal(a.src, b.src, env) and alpha_equal(
            a.body, b.body, {**env, a.binder: b.binder}
        )
    if isinstance(a, S.CLet):
        return alpha_equal(a.bind, b.bind, env) and alpha_equal(
            a.body, b.body, {**env, a.name: b.name}
        )
    if isinstance(a, S.CIf):
        return (
            alpha_equal(a.cond, b.cond, env)
            and alpha_equal(a.then, b.then, env)
            and alpha_equal(a.els, b.els, env)
        )
    if isinstance(a, (S.CCase, S.BCase)):
        if a.dt != b.dt or len(a.clauses) != len(b.clauses):
            return False
        if not alpha_equal(a.scrut, b.scrut, env):
            return False
        for ca, cb in zip(a.clauses, b.clauses):
            if ca.tag != cb.tag or (ca.binder is None) != (cb.binder is None):
                return False
            inner = env if ca.binder is None else {**env, ca.binder: cb.binder}
            if not alpha_equal(ca.body, cb.body, inner):
                return False
        if (a.default is None) != (b.default is None):
            return False
        return a.default is None or alpha_equal(a.default, b.default, env)
    if isinstance(a, (S.CCaseConst, S.BCaseConst)):
        if len(a.arms) != len(b.arms):
            return False
        if not alpha_equal(a.scrut, b.scrut, env):
            return False
        for (va, ba), (vb, bb) in zip(a.arms, b.arms):
            if va != vb or not alpha_equal(ba, bb, env):
                return False
        if (a.default is None) != (b.default is None):
            return False
        return a.default is None or alpha_equal(a.default, b.default, env)
    if isinstance(a, S.CImpWrite):
        return (
            alpha_equal(a.ref, b.ref, env)
            and alpha_equal(a.value, b.value, env)
            and alpha_equal(a.body, b.body, env)
        )
    if isinstance(a, S.BAtom):
        return alpha_equal(a.atom, b.atom, env)
    if isinstance(a, S.BPrim):
        return a.op == b.op and len(a.args) == len(b.args) and all(
            alpha_equal(x, y, env) for x, y in zip(a.args, b.args)
        )
    if isinstance(a, (S.BApp, S.BMemoApp)):
        return alpha_equal(a.fn, b.fn, env) and alpha_equal(a.arg, b.arg, env)
    if isinstance(a, S.BTuple):
        return len(a.items) == len(b.items) and all(
            alpha_equal(x, y, env) for x, y in zip(a.items, b.items)
        )
    if isinstance(a, S.BProj):
        return a.index == b.index and alpha_equal(a.arg, b.arg, env)
    if isinstance(a, S.BCon):
        return (
            a.tag == b.tag
            and len(a.args) == len(b.args)
            and all(alpha_equal(x, y, env) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, S.BLam):
        return alpha_equal(a.body, b.body, {**env, a.param: b.param})
    if isinstance(a, S.BIf):
        return (
            alpha_equal(a.cond, b.cond, env)
            and alpha_equal(a.then, b.then, env)
            and alpha_equal(a.els, b.els, env)
        )
    if isinstance(a, S.BRef):
        return alpha_equal(a.arg, b.arg, env)
    if isinstance(a, S.BDeref):
        return alpha_equal(a.arg, b.arg, env)
    if isinstance(a, S.BAssign):
        return alpha_equal(a.ref, b.ref, env) and alpha_equal(a.value, b.value, env)
    if isinstance(a, S.BAscribe):
        return alpha_equal(a.atom, b.atom, env)
    if isinstance(a, S.BMatchFail):
        return True
    if isinstance(a, S.BMod):
        return alpha_equal(a.body, b.body, env)
    raise AssertionError(f"unknown SXML node {a!r}")
