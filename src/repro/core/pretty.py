"""Pretty-printer for SXML (both conventional and translated forms).

Renders the IR in an SML-like concrete syntax close to the paper's
notation, e.g.::

    mod (read a as a' in read b as b' in write (a' * b'))

Used by golden tests, ``CompiledProgram.dump()``, and debugging.
"""

from __future__ import annotations

from typing import List

from repro.core import sxml as S


def pretty_expr(e, indent: int = 0) -> str:
    return "\n".join(_expr(e, indent))


def _pad(indent: int) -> str:
    return "  " * indent


def _atom(a: S.Atom) -> str:
    if isinstance(a, S.AVar):
        return a.name
    if isinstance(a, S.AConst):
        if a.kind == "string":
            return repr(a.value)
        if a.kind == "unit":
            return "()"
        return str(a.value)
    raise AssertionError(f"unknown atom {a!r}")


def _bind(b: S.Bind, indent: int) -> str:
    if isinstance(b, S.BAtom):
        return _atom(b.atom)
    if isinstance(b, S.BPrim):
        if len(b.args) == 2:
            return f"({_atom(b.args[0])} {b.op} {_atom(b.args[1])})"
        return f"{b.op}({', '.join(_atom(a) for a in b.args)})"
    if isinstance(b, S.BApp):
        return f"{_atom(b.fn)} {_atom(b.arg)}"
    if isinstance(b, S.BMemoApp):
        return f"memo {_atom(b.fn)} {_atom(b.arg)}"
    if isinstance(b, S.BTuple):
        return "(" + ", ".join(_atom(a) for a in b.items) + ")"
    if isinstance(b, S.BProj):
        return f"#{b.index} {_atom(b.arg)}"
    if isinstance(b, S.BCon):
        if b.args:
            return f"{b.tag} {_atom(b.args[0])}"
        return b.tag
    if isinstance(b, S.BLam):
        body = pretty_expr(b.body, indent + 1)
        return f"fn {b.param} =>\n{body}"
    if isinstance(b, S.BIf):
        lines = [f"if {_atom(b.cond)} then"]
        lines += _expr(b.then, indent + 1)
        lines.append(_pad(indent) + "else")
        lines += _expr(b.els, indent + 1)
        return "\n".join(lines)
    if isinstance(b, S.BCase):
        lines = [f"case {_atom(b.scrut)} of"]
        for c in b.clauses:
            binder = f" {c.binder}" if c.binder else ""
            lines.append(_pad(indent + 1) + f"{c.tag}{binder} =>")
            lines += _expr(c.body, indent + 2)
        if b.default is not None:
            lines.append(_pad(indent + 1) + "_ =>")
            lines += _expr(b.default, indent + 2)
        return "\n".join(lines)
    if isinstance(b, S.BCaseConst):
        lines = [f"case {_atom(b.scrut)} of"]
        for v, body in b.arms:
            lines.append(_pad(indent + 1) + f"{v!r} =>")
            lines += _expr(body, indent + 2)
        if b.default is not None:
            lines.append(_pad(indent + 1) + "_ =>")
            lines += _expr(b.default, indent + 2)
        return "\n".join(lines)
    if isinstance(b, S.BRef):
        return f"ref {_atom(b.arg)}"
    if isinstance(b, S.BDeref):
        return f"!{_atom(b.arg)}"
    if isinstance(b, S.BAssign):
        return f"{_atom(b.ref)} := {_atom(b.value)}"
    if isinstance(b, S.BAscribe):
        return f"({_atom(b.atom)} : {b.spec})"
    if isinstance(b, S.BMatchFail):
        return "matchfail"
    if isinstance(b, S.BMod):
        inner = _cexpr(b.body, indent + 1)
        if len(inner) == 1:
            return f"mod ({inner[0].strip()})"
        return "mod (\n" + "\n".join(inner) + ")"
    raise AssertionError(f"unknown bind {b!r}")


def _expr(e, indent: int) -> List[str]:
    pad = _pad(indent)
    if isinstance(e, S.ELet):
        rhs = _bind(e.bind, indent)
        lines = [f"{pad}let {e.name} = {rhs} in"]
        lines += _expr(e.body, indent)
        return lines
    if isinstance(e, S.ELetRec):
        lines = []
        for name, lam in e.bindings:
            lines.append(f"{pad}fun {name} {lam.param} =")
            lines += _expr(lam.body, indent + 1)
        lines += _expr(e.body, indent)
        return lines
    if isinstance(e, S.ERet):
        return [f"{pad}{_atom(e.atom)}"]
    raise AssertionError(f"unknown expr {e!r}")


def _cexpr(e, indent: int) -> List[str]:
    pad = _pad(indent)
    if isinstance(e, S.CWrite):
        return [f"{pad}write {_atom(e.atom)}"]
    if isinstance(e, S.CRead):
        lines = [f"{pad}read {_atom(e.src)} as {e.binder} in"]
        lines += _cexpr(e.body, indent)
        return lines
    if isinstance(e, S.CLet):
        rhs = _bind(e.bind, indent)
        lines = [f"{pad}let {e.name} = {rhs} in"]
        lines += _cexpr(e.body, indent)
        return lines
    if isinstance(e, S.CLetRec):
        lines = []
        for name, lam in e.bindings:
            lines.append(f"{pad}fun {name} {lam.param} =")
            lines += _expr(lam.body, indent + 1)
        lines += _cexpr(e.body, indent)
        return lines
    if isinstance(e, S.CIf):
        lines = [f"{pad}if {_atom(e.cond)} then"]
        lines += _cexpr(e.then, indent + 1)
        lines.append(f"{pad}else")
        lines += _cexpr(e.els, indent + 1)
        return lines
    if isinstance(e, S.CCase):
        lines = [f"{pad}case {_atom(e.scrut)} of"]
        for c in e.clauses:
            binder = f" {c.binder}" if c.binder else ""
            lines.append(_pad(indent + 1) + f"{c.tag}{binder} =>")
            lines += _cexpr(c.body, indent + 2)
        if e.default is not None:
            lines.append(_pad(indent + 1) + "_ =>")
            lines += _cexpr(e.default, indent + 2)
        return lines
    if isinstance(e, S.CCaseConst):
        lines = [f"{pad}case {_atom(e.scrut)} of"]
        for v, body in e.arms:
            lines.append(_pad(indent + 1) + f"{v!r} =>")
            lines += _cexpr(body, indent + 2)
        if e.default is not None:
            lines.append(_pad(indent + 1) + "_ =>")
            lines += _cexpr(e.default, indent + 2)
        return lines
    if isinstance(e, S.CImpWrite):
        lines = [f"{pad}impwrite {_atom(e.ref)} := {_atom(e.value)} in"]
        lines += _cexpr(e.body, indent)
        return lines
    raise AssertionError(f"unknown cexpr {e!r}")
