"""Uniquification of Core binders.

Monomorphization and A-normalization assume globally unique binder names
(like MLton's IL invariants).  This pass alpha-renames every Core binder to
a unique name.  It is also reused to freshen specialized copies during
monomorphization.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.core import ir as C

_counter = itertools.count()


def fresh(base: str) -> str:
    base = base.split("#")[0]
    return f"{base}#{next(_counter)}"


def uniquify(expr: C.CoreExpr, rename: Optional[Dict[str, str]] = None) -> C.CoreExpr:
    """Return a copy of ``expr`` with all binders renamed uniquely.

    ``rename`` maps in-scope source names to their unique names.
    """
    if rename is None:
        rename = {}
    return _go(expr, rename)


def _go(e: C.CoreExpr, rn: Dict[str, str]) -> C.CoreExpr:
    if isinstance(e, C.CVar):
        return C.CVar(
            ty=e.ty, name=rn.get(e.name, e.name), inst=e.inst,
            is_builtin=e.is_builtin, span=e.span,
        )
    if isinstance(e, C.CConst):
        return e
    if isinstance(e, C.CLam):
        new_param = fresh(e.param)
        inner = dict(rn)
        inner[e.param] = new_param
        return C.CLam(
            ty=e.ty, param=new_param, param_ty=e.param_ty,
            body=_go(e.body, inner), param_spec=e.param_spec, span=e.span,
        )
    if isinstance(e, C.CApp):
        return C.CApp(ty=e.ty, fn=_go(e.fn, rn), arg=_go(e.arg, rn), span=e.span)
    if isinstance(e, C.CPrim):
        return C.CPrim(ty=e.ty, op=e.op, args=[_go(a, rn) for a in e.args], span=e.span)
    if isinstance(e, C.CCon):
        return C.CCon(
            ty=e.ty, dt=e.dt, tag=e.tag, args=[_go(a, rn) for a in e.args], span=e.span
        )
    if isinstance(e, C.CTuple):
        return C.CTuple(ty=e.ty, items=[_go(i, rn) for i in e.items], span=e.span)
    if isinstance(e, C.CProj):
        return C.CProj(ty=e.ty, index=e.index, arg=_go(e.arg, rn), span=e.span)
    if isinstance(e, C.CIf):
        return C.CIf(
            ty=e.ty, cond=_go(e.cond, rn), then=_go(e.then, rn), els=_go(e.els, rn),
            span=e.span,
        )
    if isinstance(e, C.CCase):
        clauses = []
        for pat, body in e.clauses:
            inner = dict(rn)
            new_pat = _go_pat(pat, inner)
            clauses.append((new_pat, _go(body, inner)))
        return C.CCase(ty=e.ty, scrut=_go(e.scrut, rn), clauses=clauses, span=e.span)
    if isinstance(e, C.CLet):
        new_rhs = _go(e.rhs, rn)
        new_name = fresh(e.name)
        inner = dict(rn)
        inner[e.name] = new_name
        return C.CLet(
            ty=e.ty, name=new_name, scheme=e.scheme, rhs=new_rhs,
            body=_go(e.body, inner), span=e.span,
        )
    if isinstance(e, C.CLetRec):
        inner = dict(rn)
        new_names = {}
        for name, _scheme, _lam in e.bindings:
            new_names[name] = fresh(name)
            inner[name] = new_names[name]
        bindings = [
            (new_names[name], scheme, _go(lam, inner))
            for name, scheme, lam in e.bindings
        ]
        return C.CLetRec(ty=e.ty, bindings=bindings, body=_go(e.body, inner), span=e.span)
    if isinstance(e, C.CRef):
        return C.CRef(ty=e.ty, arg=_go(e.arg, rn), span=e.span)
    if isinstance(e, C.CDeref):
        return C.CDeref(ty=e.ty, arg=_go(e.arg, rn), span=e.span)
    if isinstance(e, C.CAssign):
        return C.CAssign(ty=e.ty, ref=_go(e.ref, rn), value=_go(e.value, rn), span=e.span)
    if isinstance(e, C.CAscribe):
        return C.CAscribe(ty=e.ty, expr=_go(e.expr, rn), spec=e.spec, span=e.span)
    raise AssertionError(f"unknown Core node {e!r}")


def _go_pat(p: C.CPat, rn: Dict[str, str]) -> C.CPat:
    """Rename pattern binders, extending ``rn`` in place."""
    if isinstance(p, (C.CPWild, C.CPConst)):
        return p
    if isinstance(p, C.CPVar):
        new_name = fresh(p.name)
        rn[p.name] = new_name
        return C.CPVar(ty=p.ty, name=new_name, span=p.span)
    if isinstance(p, C.CPTuple):
        return C.CPTuple(
            ty=p.ty, items=[_go_pat(i, rn) for i in p.items], span=p.span
        )
    if isinstance(p, C.CPCon):
        return C.CPCon(
            ty=p.ty, dt=p.dt, tag=p.tag, args=[_go_pat(a, rn) for a in p.args],
            span=p.span,
        )
    raise AssertionError(f"unknown pattern {p!r}")
