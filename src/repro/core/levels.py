"""Level inference on the monomorphic SXML program.

The paper's compiler propagates the surface ``$C`` annotations through every
MLton phase down to SXML, where the translation consumes them (Section 3.2).
We implement the same result as a standalone inference pass over SXML,
following the information-flow discipline of Chen et al. (ICFP 2011) /
Pottier-Simonet:

* every type position in the program gets a *level variable*;
* value flow adds equalities (union-find merges);
* elimination forms add directed ``lower -> upper`` constraints: the result
  of inspecting changeable data is changeable (``if``/``case`` on a
  changeable scrutinee, primops over changeable operands, projection from a
  changeable tuple, application of a changeable function, dereference);
* ``$C`` annotations seed C; unannotated *datatype-declaration* positions
  and base positions of builtin signatures are rigidly stable -- changeable
  data flowing there is a level error directing the programmer to annotate.

Solving is a least fixed point: propagate C through merged groups and along
edges; everything unreached is stable.  Over-approximation is sound for the
translation (extra tracking, never missed tracking).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.core import sxml as S
from repro.core.ir import DataInfo
from repro.lang.builtins import BUILTIN_SCHEMES
from repro.lang.errors import LmlLevelError
from repro.lang.levelspec import LSpec
from repro.lang.types import (
    TArrow,
    TCon,
    TTuple,
    TVar,
    Type,
    force,
    mangle,
    subst_vars,
)

_ids = itertools.count()


class LVar:
    """A level variable: union-find node with directed flow edges."""

    __slots__ = ("id", "parent", "value", "rigid", "out", "origin")

    def __init__(self, origin: str = "") -> None:
        self.id = next(_ids)
        self.parent: Optional["LVar"] = None
        self.value: Optional[str] = None  # 'C' once known changeable
        self.rigid = False  # must stay stable
        self.out: List["LVar"] = []
        self.origin = origin

    def find(self) -> "LVar":
        node = self
        while node.parent is not None:
            if node.parent.parent is not None:
                node.parent = node.parent.parent
            node = node.parent
        return node

    @property
    def level(self) -> str:
        return self.find().value or "S"


class LTy:
    """A level-shadowed type: one level variable per position.

    ``kind`` is 'base', 'tuple', 'arrow', 'vector', 'ref', or 'data'.
    Datatype positions carry no children (their field levels live in the
    per-instance tables of :class:`LevelInference`), keyed by ``dtkey``.
    """

    __slots__ = ("kind", "top", "children", "dtkey")

    def __init__(self, kind: str, top: LVar, children=None, dtkey: str = "") -> None:
        self.kind = kind
        self.top = top
        self.children: List["LTy"] = children or []
        self.dtkey = dtkey

    @property
    def level(self) -> str:
        return self.top.level

    def describe(self) -> str:  # pragma: no cover - debugging aid
        mark = "$C" if self.level == "C" else ""
        if self.kind == "tuple":
            return "(" + " * ".join(c.describe() for c in self.children) + ")" + mark
        if self.kind == "arrow":
            return f"({self.children[0].describe()} -> {self.children[1].describe()}){mark}"
        if self.kind in ("vector", "ref"):
            return f"({self.children[0].describe()} {self.kind}){mark}"
        return (self.dtkey or self.kind) + mark


class LevelInference:
    """Inference state: level variables, flow edges, per-datatype tables."""

    def __init__(self, datatypes: Dict[str, DataInfo]) -> None:
        self.datatypes = datatypes
        self.var_lty: Dict[str, LTy] = {}
        self.dt_fields: Dict[str, Dict[str, Optional[LTy]]] = {}
        self._c_seeds: List[LVar] = []
        self._atom_cache: Dict[int, LTy] = {}

    # ------------------------------------------------------------------
    # Constraint primitives

    def fresh(self, origin: str = "") -> LVar:
        return LVar(origin)

    def set_c(self, v: LVar, origin: str = "") -> None:
        root = v.find()
        if root.value != "C":
            root.value = "C"
            self._c_seeds.append(root)
        if origin and not root.origin:
            root.origin = origin

    def flow(self, lower: LVar, upper: LVar) -> None:
        """If ``lower`` is changeable then ``upper`` must be."""
        lo, up = lower.find(), upper.find()
        if lo is up:
            return
        lo.out.append(up)

    def union(self, a: LVar, b: LVar) -> None:
        ra, rb = a.find(), b.find()
        if ra is rb:
            return
        rb.parent = ra
        ra.out.extend(rb.out)
        rb.out = []
        ra.rigid = ra.rigid or rb.rigid
        if rb.value == "C":
            self.set_c(ra)
        if not ra.origin:
            ra.origin = rb.origin

    def unify(self, a: LTy, b: LTy) -> None:
        self.union(a.top, b.top)
        if a.kind == "data" or b.kind == "data":
            return  # field levels are shared per-datatype, nothing to do
        for ca, cb in zip(a.children, b.children):
            self.unify(ca, cb)

    # ------------------------------------------------------------------
    # Building level types

    def build_lty(self, ty: Type, origin: str = "") -> LTy:
        ty = force(ty)
        top = self.fresh(origin)
        if isinstance(ty, TVar):  # residual polymorphism (defaults to unit)
            return LTy("base", top)
        if isinstance(ty, TTuple):
            return LTy("tuple", top, [self.build_lty(t, origin) for t in ty.items])
        if isinstance(ty, TArrow):
            return LTy(
                "arrow", top, [self.build_lty(ty.dom, origin), self.build_lty(ty.cod, origin)]
            )
        if isinstance(ty, TCon):
            if ty.name in ("vector", "ref"):
                return LTy(ty.name, top, [self.build_lty(ty.args[0], origin)])
            if ty.name in self.datatypes:
                key = mangle(ty)
                self._ensure_fields(ty, key)
                return LTy("data", top, dtkey=key)
            return LTy("base", top)
        raise AssertionError(f"unknown type {ty!r}")

    def _ensure_fields(self, ty: TCon, key: str) -> None:
        """Build the shared field level-types of a datatype instance."""
        if key in self.dt_fields:
            return
        table: Dict[str, Optional[LTy]] = {}
        self.dt_fields[key] = table
        info = self.datatypes[ty.name]
        tmap = {id(tv): arg for tv, arg in zip(info.tyvars, ty.args)}
        for con in info.constructors:
            if con.arg_ty is None:
                table[con.tag] = None
                continue
            field_ty = subst_vars(con.arg_ty, tmap)
            flty = self.build_lty(field_ty, origin=f"field of {con.tag}")
            if con.arg_spec is not None:
                self.constrain_spec(flty, con.arg_spec, f"datatype {ty.name}")
            table[con.tag] = flty

    def fields_of(self, ty: Type) -> Dict[str, Optional[LTy]]:
        ty = force(ty)
        assert isinstance(ty, TCon)
        key = mangle(ty)
        self._ensure_fields(ty, key)
        return self.dt_fields[key]

    # ------------------------------------------------------------------
    # Annotations

    def constrain_spec(self, lty: LTy, spec: LSpec, where: str) -> None:
        """Apply a level annotation to a level type."""
        if spec.kind == "flex":
            return
        if spec.level == "C":
            self.set_c(lty.top, where)
        elif spec.level == "S" and spec.rigid:
            lty.top.find().rigid = True
            if not lty.top.find().origin:
                lty.top.find().origin = where
        if lty.kind == "data":
            # Parameter-position annotations on datatypes are not supported
            # (annotate in the datatype declaration instead); children of
            # the spec would refer to instantiation parameters.
            return
        for clty, cspec in zip(lty.children, spec.children):
            self.constrain_spec(clty, cspec, where)

    # ------------------------------------------------------------------
    # Builtin signatures

    def builtin_lty(self, name: str, use_ty: Type) -> LTy:
        """Level type for one use of a builtin, from its scheme.

        Scheme type variables share a level type per occurrence (e.g. all
        three ``'a`` positions of ``vreduce``); concrete scheme positions
        (vector spines, indices, the function arrows themselves) are rigidly
        stable.
        """
        scheme = BUILTIN_SCHEMES[name]
        qmap: Dict[int, LTy] = {}

        def go(sty: Type, gty: Type) -> LTy:
            sty = force(sty)
            gty = force(gty)
            if isinstance(sty, TVar):
                if id(sty) not in qmap:
                    qmap[id(sty)] = self.build_lty(gty, origin=f"use of {name}")
                return qmap[id(sty)]
            top = self.fresh(f"signature of {name}")
            top.rigid = True
            if isinstance(sty, TTuple):
                assert isinstance(gty, TTuple)
                return LTy(
                    "tuple", top, [go(s, g) for s, g in zip(sty.items, gty.items)]
                )
            if isinstance(sty, TArrow):
                assert isinstance(gty, TArrow)
                return LTy("arrow", top, [go(sty.dom, gty.dom), go(sty.cod, gty.cod)])
            if isinstance(sty, TCon):
                if sty.name == "vector":
                    assert isinstance(gty, TCon)
                    return LTy("vector", top, [go(sty.args[0], gty.args[0])])
                return LTy("base", top)
            raise AssertionError(f"unknown scheme type {sty!r}")

        return go(scheme.body, use_ty)

    # ------------------------------------------------------------------
    # Solving

    def solve(self) -> None:
        """Propagate changeability; raise on rigid violations."""
        seen = set()
        stack = [v.find() for v in self._c_seeds]
        while stack:
            root = stack.pop().find()
            if id(root) in seen:
                continue
            seen.add(id(root))
            root.value = "C"
            if root.rigid:
                where = root.origin or "a stable position"
                raise LmlLevelError(
                    "changeable data flows into a rigidly stable position "
                    f"({where}); add a $C annotation to the type declaration"
                )
            for succ in root.out:
                succ_root = succ.find()
                if succ_root.value != "C":
                    stack.append(succ_root)
                elif id(succ_root) not in seen:
                    stack.append(succ_root)


class LevelInfo:
    """The result of level inference, consumed by the translation."""

    def __init__(self, inference: LevelInference, main_lty: LTy) -> None:
        self._inf = inference
        self.main_lty = main_lty

    def lty(self, name: str) -> LTy:
        return self._inf.var_lty[name]

    def has(self, name: str) -> bool:
        return name in self._inf.var_lty

    def level_of(self, name: str) -> str:
        return self._inf.var_lty[name].level

    def fields_of(self, ty: Type) -> Dict[str, Optional[LTy]]:
        return self._inf.fields_of(ty)


def infer_levels(
    expr: S.Expr,
    datatypes: Dict[str, DataInfo],
    main_name: Optional[str] = None,
) -> LevelInfo:
    """Run level inference over an SXML program and solve.

    Returns a :class:`LevelInfo` whose ``main_lty`` is the level type of the
    program's result atom.
    """
    inf = LevelInference(datatypes)
    walker = _Walker(inf)
    main_lty = walker.expr(expr)
    inf.solve()
    return LevelInfo(inf, main_lty)


class _Walker:
    def __init__(self, inf: LevelInference) -> None:
        self.inf = inf

    # -- atoms ----------------------------------------------------------

    def atom(self, a: S.Atom) -> LTy:
        inf = self.inf
        if isinstance(a, S.AVar):
            if a.is_builtin:
                cached = inf._atom_cache.get(id(a))
                if cached is None:
                    cached = inf.builtin_lty(a.name, a.ty)
                    inf._atom_cache[id(a)] = cached
                return cached
            return inf.var_lty[a.name]
        cached = inf._atom_cache.get(id(a))
        if cached is None:
            cached = inf.build_lty(a.ty, origin="constant")
            inf._atom_cache[id(a)] = cached
        return cached

    # -- expressions -----------------------------------------------------

    def expr(self, e: S.Expr) -> LTy:
        inf = self.inf
        while True:
            if isinstance(e, S.ELet):
                inf.var_lty[e.name] = self.bind(e.bind)
                e = e.body
            elif isinstance(e, S.ELetRec):
                for name, lam in e.bindings:
                    inf.var_lty[name] = inf.build_lty(lam.ty, origin=name)
                for name, lam in e.bindings:
                    inf.unify(self.bind(lam), inf.var_lty[name])
                e = e.body
            elif isinstance(e, S.ERet):
                return self.atom(e.atom)
            else:
                raise AssertionError(f"unknown expr {e!r}")

    # -- binds -------------------------------------------------------------

    def bind(self, b: S.Bind) -> LTy:
        inf = self.inf
        if isinstance(b, S.BAtom):
            return self.atom(b.atom)
        if isinstance(b, S.BPrim):
            result = inf.build_lty(b.ty, origin=f"result of {b.op}")
            for a in b.args:
                inf.flow(self.atom(a).top, result.top)
            return result
        if isinstance(b, S.BApp):
            f = self.atom(b.fn)
            a = self.atom(b.arg)
            assert f.kind == "arrow", f"application of non-arrow {f.kind}"
            inf.unify(f.children[0], a)
            inf.flow(f.top, f.children[1].top)
            return f.children[1]
        if isinstance(b, S.BTuple):
            return LTy("tuple", inf.fresh("tuple"), [self.atom(a) for a in b.items])
        if isinstance(b, S.BProj):
            t = self.atom(b.arg)
            assert t.kind == "tuple"
            result = t.children[b.index - 1]
            inf.flow(t.top, result.top)
            return result
        if isinstance(b, S.BCon):
            fields = inf.fields_of(b.ty)
            if b.args:
                field = fields[b.tag]
                assert field is not None
                inf.unify(self.atom(b.args[0]), field)
            return inf.build_lty(b.ty, origin=f"value of {b.tag}")
        if isinstance(b, S.BLam):
            dom = inf.build_lty(b.param_ty, origin=f"parameter {b.param}")
            if b.param_spec is not None:
                inf.constrain_spec(dom, b.param_spec, f"parameter {b.param}")
            inf.var_lty[b.param] = dom
            cod = self.expr(b.body)
            return LTy("arrow", inf.fresh("lambda"), [dom, cod])
        if isinstance(b, S.BIf):
            c = self.atom(b.cond)
            t1 = self.expr(b.then)
            t2 = self.expr(b.els)
            inf.unify(t1, t2)
            inf.flow(c.top, t1.top)
            return t1
        if isinstance(b, S.BCase):
            s = self.atom(b.scrut)
            fields = inf.fields_of(b.scrut.ty)
            result: Optional[LTy] = None
            for clause in b.clauses:
                if clause.binder is not None:
                    field = fields[clause.tag]
                    assert field is not None
                    inf.var_lty[clause.binder] = field
                bt = self.expr(clause.body)
                if result is None:
                    result = bt
                else:
                    inf.unify(result, bt)
            if b.default is not None:
                bt = self.expr(b.default)
                if result is None:
                    result = bt
                else:
                    inf.unify(result, bt)
            assert result is not None
            inf.flow(s.top, result.top)
            return result
        if isinstance(b, S.BCaseConst):
            s = self.atom(b.scrut)
            result: Optional[LTy] = None
            for _v, body in b.arms:
                bt = self.expr(body)
                result = bt if result is None else (inf.unify(result, bt), result)[1]
            if b.default is not None:
                bt = self.expr(b.default)
                result = bt if result is None else (inf.unify(result, bt), result)[1]
            assert result is not None
            inf.flow(s.top, result.top)
            return result
        if isinstance(b, S.BRef):
            # Paper Figure 4: (ref x) : t ref $C.  The *cell* is the
            # changeable thing; its content type t stays stable at the top
            # (store a stable value; nested changeable components are fine).
            inner = self.atom(b.arg)
            inner.top.find().rigid = True
            if not inner.top.find().origin:
                inner.top.find().origin = "reference content"
            top = inf.fresh("ref")
            inf.set_c(top, "ref allocation")
            return LTy("ref", top, [inner])
        if isinstance(b, S.BDeref):
            # !x is changeable data: same shape as the content, but the
            # value as a whole lives in the cell's modifiable.
            t = self.atom(b.arg)
            assert t.kind == "ref"
            inner = t.children[0]
            top = inf.fresh("deref")
            inf.set_c(top, "dereference")
            return LTy(inner.kind, top, inner.children, inner.dtkey)
        if isinstance(b, S.BAssign):
            # The stored content is the raw value (a changeable right-hand
            # side is read first; the translation unboxes it), so only the
            # structure *below* the top must agree with the cell's content.
            t = self.atom(b.ref)
            assert t.kind == "ref"
            inner = t.children[0]
            v = self.atom(b.value)
            for ci, cv in zip(inner.children, v.children):
                inf.unify(ci, cv)
            result = inf.build_lty(b.ty, origin="assignment")
            inf.flow(v.top, result.top)
            return result
        if isinstance(b, S.BAscribe):
            t = self.atom(b.atom)
            inf.constrain_spec(t, b.spec, "annotation")
            return t
        if isinstance(b, S.BMatchFail):
            return inf.build_lty(b.ty, origin="match failure")
        raise AssertionError(f"unknown bind {b!r}")
