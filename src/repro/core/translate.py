"""The type-directed self-adjusting translation (paper Section 3.3).

Translates level-annotated SXML into SXML with self-adjusting primitives
(``mod``, ``read``, ``write``, memoized application), by purely local,
type-(level-)directed rewrites, extending Chen et al. (ICFP 2011) to the
full language (datatypes, references, vectors).

Representation invariant: a source value whose type has a changeable top
level is represented by a *modifiable* holding the representation of the
underlying value.  The two translation modes of the paper map onto the two
SXML expression sorts:

* stable mode produces :class:`~repro.core.sxml.Expr` (value code);
* changeable mode produces :class:`~repro.core.sxml.CExpr` (code that
  writes its result to the ambient destination).

Highlights (matching the paper's Figures 2 and 4):

* a primop over changeable operands becomes nested ``read``s around the
  primop and a ``write`` -- inside a fresh ``mod`` when in stable position
  (``Mod (Read a (fn a' => Read b (fn b' => Write (a'*b'))))``);
* a function with changeable result returns the modifiable its body's
  stable-mode translation produces (``fn (a,b) => Mod (Read a ...)`` as in
  Figure 2 -- the ``mod`` comes from the body's own rules, so functions
  whose bodies merely *select* changeable data, like ``transpose``, stay
  free of reads);
* ``ref x``  becomes ``mod (write x)``; ``!x`` becomes an alias (reading is
  deferred to uses, sound under the initialize-then-read discipline);
  ``x := v`` becomes an imperative write;
* changeable-mode recursive calls are memoized (``BMemoApp``) when
  ``memoize`` is on -- the compiler's counterpart of the AFL benchmarks'
  memoization strategy (Section 4.1).

The local rules deliberately generate redundant ``mod``/``read``/``write``
triples in composite positions; the Section 3.4 optimizer removes them.

``coarse`` mode emulates the CPS baseline's coarse dependency tracking by
adding one extra modifiable indirection per changeable result (and is
meant to be combined with the optimizer disabled); see DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core import sxml as S
from repro.core.freshen import fresh
from repro.core.levels import LevelInfo, LTy
from repro.lang.errors import LmlCompileError
from repro.lang.types import Type


def translate(
    expr: S.Expr,
    levels: LevelInfo,
    *,
    memoize: bool = True,
    coarse: bool = False,
) -> S.Expr:
    """Translate a conventional SXML program into a self-adjusting one."""
    expr = lift_changeable_consts(expr, levels)
    tr = _Translator(levels, memoize=memoize, coarse=coarse)
    tr.collect_rec_names(expr)
    return tr.expr(expr)


def lift_changeable_consts(expr: S.Expr, levels: LevelInfo) -> S.Expr:
    """Name constants that occur in changeable positions.

    A constant whose level resolved to changeable (e.g. the ``0.0`` identity
    passed to ``vreduce`` over changeable reals) must be boxed in a
    modifiable.  Binding it with a ``let`` lets the ordinary translation
    rule for changeable constants (``Mod (Write c)``, visible in the
    paper's Figure 2) take over.
    """
    lifter = _ConstLifter(levels)
    return lifter.expr(expr)


class _ConstLifter:
    def __init__(self, levels: LevelInfo) -> None:
        self.levels = levels

    def _needs_lift(self, a: S.Atom) -> bool:
        if not isinstance(a, S.AConst):
            return False
        lty = self.levels._inf._atom_cache.get(id(a))
        return lty is not None and lty.level == "C"

    def _lift_atoms(self, atoms, pending):
        out = []
        for a in atoms:
            if self._needs_lift(a):
                name = fresh("k")
                self.levels._inf.var_lty[name] = self.levels._inf._atom_cache[id(a)]
                pending.append((name, S.BAtom(ty=a.ty, atom=a)))
                out.append(S.AVar(ty=a.ty, name=name))
            else:
                out.append(a)
        return out

    def bind(self, b: S.Bind, pending) -> S.Bind:
        if isinstance(b, S.BTuple):
            return S.BTuple(ty=b.ty, items=self._lift_atoms(b.items, pending))
        if isinstance(b, S.BCon):
            return S.BCon(
                ty=b.ty, dt=b.dt, tag=b.tag, args=self._lift_atoms(b.args, pending)
            )
        if isinstance(b, S.BApp):
            (arg,) = self._lift_atoms([b.arg], pending)
            return S.BApp(ty=b.ty, fn=b.fn, arg=arg)
        if isinstance(b, S.BAssign):
            (value,) = self._lift_atoms([b.value], pending)
            return S.BAssign(ty=b.ty, ref=b.ref, value=value)
        if isinstance(b, S.BPrim):
            return S.BPrim(ty=b.ty, op=b.op, args=self._lift_atoms(b.args, pending))
        if isinstance(b, S.BLam):
            return S.BLam(
                ty=b.ty, param=b.param, param_ty=b.param_ty, body=self.expr(b.body),
                param_spec=b.param_spec, name_hint=b.name_hint,
            )
        if isinstance(b, S.BIf):
            return S.BIf(
                ty=b.ty, cond=b.cond, then=self.expr(b.then), els=self.expr(b.els)
            )
        if isinstance(b, S.BCase):
            clauses = [
                S.CaseClause(
                    tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                    body=self.expr(c.body),
                )
                for c in b.clauses
            ]
            default = self.expr(b.default) if b.default is not None else None
            return S.BCase(
                ty=b.ty, dt=b.dt, scrut=b.scrut, clauses=clauses, default=default
            )
        return b

    def expr(self, e: S.Expr) -> S.Expr:
        if isinstance(e, S.ELet):
            pending: list = []
            new_bind = self.bind(e.bind, pending)
            result = S.ELet(ty=e.ty, name=e.name, bind=new_bind, body=self.expr(e.body))
            for name, bind in reversed(pending):
                result = S.ELet(ty=e.ty, name=name, bind=bind, body=result)
            return result
        if isinstance(e, S.ELetRec):
            pending = []
            bindings = [(n, self.bind(lam, pending)) for n, lam in e.bindings]
            assert not pending  # lambdas have no atom operands
            return S.ELetRec(ty=e.ty, bindings=bindings, body=self.expr(e.body))
        if isinstance(e, S.ERet):
            return e
        raise AssertionError(f"unknown expr {e!r}")


class _Translator:
    def __init__(self, levels: LevelInfo, memoize: bool, coarse: bool) -> None:
        self.levels = levels
        self.memoize = memoize
        self.coarse = coarse
        self.rec_names: Set[str] = set()

    # ------------------------------------------------------------------

    def collect_rec_names(self, e) -> None:
        """Record letrec-bound names: candidates for memoized application."""
        if isinstance(e, S.ELetRec):
            for name, lam in e.bindings:
                self.rec_names.add(name)
                self.collect_rec_names(lam.body)
            self.collect_rec_names(e.body)
        elif isinstance(e, S.ELet):
            self.collect_rec_names(e.bind)
            self.collect_rec_names(e.body)
        elif isinstance(e, S.BLam):
            self.collect_rec_names(e.body)
        elif isinstance(e, (S.BIf,)):
            self.collect_rec_names(e.then)
            self.collect_rec_names(e.els)
        elif isinstance(e, S.BCase):
            for c in e.clauses:
                self.collect_rec_names(c.body)
            if e.default is not None:
                self.collect_rec_names(e.default)
        elif isinstance(e, S.Bind) or isinstance(e, S.ERet):
            pass

    # ------------------------------------------------------------------
    # Level helpers

    def atom_lty(self, a: S.Atom) -> Optional[LTy]:
        if isinstance(a, S.AVar):
            if a.is_builtin:
                return self.levels._inf._atom_cache.get(id(a))
            return self.levels.lty(a.name)
        return self.levels._inf._atom_cache.get(id(a))

    def atom_level(self, a: S.Atom) -> str:
        """Runtime representation level of an atom: is it a modifiable?

        Constants are never modifiables, even when their *position* joined
        to changeable (subsumption boxes them at their binding instead).
        """
        if not isinstance(a, S.AVar):
            return "S"
        lty = self.atom_lty(a)
        return lty.level if lty is not None else "S"

    # ------------------------------------------------------------------
    # Stable mode

    def expr(self, e: S.Expr) -> S.Expr:
        if isinstance(e, S.ELet):
            return S.ELet(
                ty=e.ty,
                name=e.name,
                bind=self.bind(e.bind, self.levels.lty(e.name)),
                body=self.expr(e.body),
            )
        if isinstance(e, S.ELetRec):
            bindings = []
            for name, lam in e.bindings:
                new_lam = self.bind(lam, self.levels.lty(name))
                if not isinstance(new_lam, S.BLam):
                    raise LmlCompileError(
                        f"letrec binding {name} translated to a non-lambda "
                        "(changeable recursive function values are not supported)"
                    )
                bindings.append((name, new_lam))
            return S.ELetRec(ty=e.ty, bindings=bindings, body=self.expr(e.body))
        if isinstance(e, S.ERet):
            # A constant returned at a changeable position must be boxed:
            # consumers of this value expect a modifiable.
            atom = e.atom
            if isinstance(atom, S.AConst):
                lty = self.atom_lty(atom)
                if lty is not None and lty.level == "C":
                    k = fresh("k")
                    return S.ELet(
                        ty=e.ty,
                        name=k,
                        bind=S.BMod(ty=atom.ty, body=S.CWrite(atom=atom)),
                        body=S.ERet(ty=e.ty, atom=S.AVar(ty=atom.ty, name=k)),
                    )
            return e
        raise AssertionError(f"unknown expr {e!r}")

    # ------------------------------------------------------------------
    # Changeable mode

    def cexpr(self, e: S.Expr) -> S.CExpr:
        if isinstance(e, S.ELet):
            return S.CLet(
                name=e.name,
                bind=self.bind(e.bind, self.levels.lty(e.name)),
                body=self.cexpr(e.body),
            )
        if isinstance(e, S.ELetRec):
            bindings = []
            for name, lam in e.bindings:
                new_lam = self.bind(lam, self.levels.lty(name))
                if not isinstance(new_lam, S.BLam):
                    raise LmlCompileError("changeable letrec lambda unsupported")
                bindings.append((name, new_lam))
            return S.CLetRec(bindings=bindings, body=self.cexpr(e.body))
        if isinstance(e, S.ERet):
            return self.ret(e.atom)
        raise AssertionError(f"unknown expr {e!r}")

    def ret(self, atom: S.Atom) -> S.CExpr:
        """Write the representation of ``atom`` to the ambient destination.

        A changeable variable holds a modifiable: read it and write its
        value.  A constant is written directly even when its *position*
        joined to changeable (stable-to-changeable subsumption).
        """
        if isinstance(atom, S.AVar) and self.atom_level(atom) == "C":
            v = fresh("v")
            inner_ty = atom.ty
            body: S.CExpr = self.final_write(S.AVar(ty=inner_ty, name=v))
            return S.CRead(src=atom, binder=v, binder_ty=inner_ty, body=body)
        return self.final_write(atom)

    def final_write(self, atom: S.Atom) -> S.CExpr:
        """A ``write``, with an extra indirection in coarse mode."""
        if not self.coarse:
            return S.CWrite(atom=atom)
        m = fresh("cps")
        v = fresh("v")
        return S.CLet(
            name=m,
            bind=S.BMod(ty=atom.ty, body=S.CWrite(atom=atom)),
            body=S.CRead(
                src=S.AVar(ty=atom.ty, name=m),
                binder=v,
                binder_ty=atom.ty,
                body=S.CWrite(atom=S.AVar(ty=atom.ty, name=v)),
            ),
        )

    # ------------------------------------------------------------------
    # Binds

    def bind(self, b: S.Bind, lty: LTy) -> S.Bind:
        top_c = lty.level == "C"

        if isinstance(b, S.BAtom):
            if top_c and isinstance(b.atom, S.AConst):
                # A constant in a changeable position: Mod (Write c).
                return S.BMod(ty=b.ty, body=S.CWrite(atom=b.atom))
            return b

        if isinstance(b, S.BPrim):
            changeable_args = [self.atom_level(a) == "C" for a in b.args]
            if any(changeable_args):
                return S.BMod(ty=b.ty, body=self._prim_reads(b, changeable_args))
            if top_c:
                t = fresh("t")
                return S.BMod(
                    ty=b.ty,
                    body=S.CLet(
                        name=t, bind=b,
                        body=S.CWrite(atom=S.AVar(ty=b.ty, name=t)),
                    ),
                )
            return b

        if isinstance(b, S.BApp):
            return self._app(b, lty)

        if isinstance(b, S.BTuple):
            return self._wrap_value(S.BTuple(ty=b.ty, items=b.items), top_c)

        if isinstance(b, S.BCon):
            return self._wrap_value(
                S.BCon(ty=b.ty, dt=b.dt, tag=b.tag, args=b.args), top_c
            )

        if isinstance(b, S.BLam):
            # The body translates in stable mode: a changeable result is
            # already represented by a modifiable (every stable-mode bind
            # rule yields the mod representation), so the function simply
            # returns it -- this is what makes e.g. transpose free of reads.
            new_lam = S.BLam(
                ty=b.ty, param=b.param, param_ty=b.param_ty,
                body=self.expr(b.body), param_spec=None, name_hint=b.name_hint,
            )
            return self._wrap_value(new_lam, top_c)

        if isinstance(b, S.BProj):
            if self.atom_level(b.arg) == "C":
                a2 = fresh("t")
                r = fresh("r")
                if top_c:
                    # The component is itself changeable (a modifiable):
                    # read through it so the new modifiable holds the value,
                    # keeping the one-level representation invariant.
                    v = fresh("v")
                    after: S.CExpr = S.CRead(
                        src=S.AVar(ty=b.ty, name=r),
                        binder=v,
                        binder_ty=b.ty,
                        body=S.CWrite(atom=S.AVar(ty=b.ty, name=v)),
                    )
                else:
                    after = S.CWrite(atom=S.AVar(ty=b.ty, name=r))
                inner = S.CLet(
                    name=r,
                    bind=S.BProj(
                        ty=b.ty, index=b.index, arg=S.AVar(ty=b.arg.ty, name=a2)
                    ),
                    body=after,
                )
                return S.BMod(
                    ty=b.ty,
                    body=S.CRead(src=b.arg, binder=a2, binder_ty=b.arg.ty, body=inner),
                )
            return b

        if isinstance(b, S.BIf):
            if self.atom_level(b.cond) == "C":
                c2 = fresh("c")
                return S.BMod(
                    ty=b.ty,
                    body=S.CRead(
                        src=b.cond,
                        binder=c2,
                        binder_ty=b.cond.ty,
                        body=S.CIf(
                            cond=S.AVar(ty=b.cond.ty, name=c2),
                            then=self.cexpr(b.then),
                            els=self.cexpr(b.els),
                        ),
                    ),
                )
            return S.BIf(
                ty=b.ty, cond=b.cond, then=self.expr(b.then), els=self.expr(b.els)
            )

        if isinstance(b, S.BCase):
            if self.atom_level(b.scrut) == "C":
                s2 = fresh("s")
                clauses = [
                    S.CaseClause(
                        tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                        body=self.cexpr(c.body),
                    )
                    for c in b.clauses
                ]
                default = self.cexpr(b.default) if b.default is not None else None
                return S.BMod(
                    ty=b.ty,
                    body=S.CRead(
                        src=b.scrut,
                        binder=s2,
                        binder_ty=b.scrut.ty,
                        body=S.CCase(
                            dt=b.dt,
                            scrut=S.AVar(ty=b.scrut.ty, name=s2),
                            clauses=clauses,
                            default=default,
                        ),
                    ),
                )
            clauses = [
                S.CaseClause(
                    tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                    body=self.expr(c.body),
                )
                for c in b.clauses
            ]
            default = self.expr(b.default) if b.default is not None else None
            return S.BCase(
                ty=b.ty, dt=b.dt, scrut=b.scrut, clauses=clauses, default=default
            )

        if isinstance(b, S.BRef):
            # ref x  ~~>  mod (write x)   (paper Figure 4)
            return S.BMod(ty=b.ty, body=S.CWrite(atom=b.arg))

        if isinstance(b, S.BDeref):
            # !x aliases the modifiable; uses insert their own reads.
            return S.BAtom(ty=b.ty, atom=b.arg)

        if isinstance(b, S.BAssign):
            # x := v  ~~>  impwrite x := v   (paper Figure 4).  A changeable
            # right-hand side is read first so the cell stores the value.
            if self.atom_level(b.value) == "C":
                v2 = fresh("v")
                unit_atom = S.AConst(ty=b.ty, value=(), kind="unit")
                return S.BMod(
                    ty=b.ty,
                    body=S.CRead(
                        src=b.value,
                        binder=v2,
                        binder_ty=b.value.ty,
                        body=S.CImpWrite(
                            ref=b.ref,
                            value=S.AVar(ty=b.value.ty, name=v2),
                            body=S.CWrite(atom=unit_atom),
                        ),
                    ),
                )
            return b

        if isinstance(b, S.BAscribe):
            return S.BAtom(ty=b.ty, atom=b.atom)

        if isinstance(b, S.BMatchFail):
            return b

        raise AssertionError(f"unexpected bind in source program: {b!r}")

    # ------------------------------------------------------------------

    def _prim_reads(self, b: S.BPrim, changeable_args: List[bool]) -> S.CExpr:
        """Nested reads around a primop: Read a (Read b (Write (a' op b')))."""
        new_args: List[S.Atom] = []
        reads: List[S.Atom] = []  # (src atom, binder) pairs via parallel lists
        binders: List[str] = []
        for a, is_c in zip(b.args, changeable_args):
            if is_c:
                binder = fresh("x")
                reads.append(a)
                binders.append(binder)
                new_args.append(S.AVar(ty=a.ty, name=binder))
            else:
                new_args.append(a)
        t = fresh("t")
        body: S.CExpr = S.CLet(
            name=t,
            bind=S.BPrim(ty=b.ty, op=b.op, args=new_args),
            body=S.CWrite(atom=S.AVar(ty=b.ty, name=t)),
        )
        for src, binder in reversed(list(zip(reads, binders))):
            body = S.CRead(src=src, binder=binder, binder_ty=src.ty, body=body)
        return body

    def _app(self, b: S.BApp, lty: LTy) -> S.Bind:
        f_lty = self.atom_lty(b.fn)
        assert f_lty is not None and f_lty.kind == "arrow"
        cod_c = f_lty.children[1].level == "C"
        memoizable = (
            self.memoize
            and isinstance(b.fn, S.AVar)
            and b.fn.name in self.rec_names
        )
        make = S.BMemoApp if memoizable else S.BApp
        if f_lty.level == "C":
            # The function itself is changeable: read it, apply, write.
            f2 = fresh("f")
            r = fresh("r")
            app_bind = make(ty=b.ty, fn=S.AVar(ty=b.fn.ty, name=f2), arg=b.arg)
            if cod_c:
                v = fresh("v")
                after: S.CExpr = S.CRead(
                    src=S.AVar(ty=b.ty, name=r),
                    binder=v,
                    binder_ty=b.ty,
                    body=S.CWrite(atom=S.AVar(ty=b.ty, name=v)),
                )
            else:
                after = S.CWrite(atom=S.AVar(ty=b.ty, name=r))
            return S.BMod(
                ty=b.ty,
                body=S.CRead(
                    src=b.fn,
                    binder=f2,
                    binder_ty=b.fn.ty,
                    body=S.CLet(name=r, bind=app_bind, body=after),
                ),
            )
        return make(ty=b.ty, fn=b.fn, arg=b.arg)

    def _wrap_value(self, bind: S.Bind, top_c: bool) -> S.Bind:
        """Wrap an introduction form in ``mod (write .)`` when changeable."""
        if not top_c:
            return bind
        t = fresh("t")
        return S.BMod(
            ty=bind.ty,
            body=S.CLet(
                name=t, bind=bind, body=S.CWrite(atom=S.AVar(ty=bind.ty, name=t))
            ),
        )
