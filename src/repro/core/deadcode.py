"""Dead-code elimination on SXML.

Removes ``let`` bindings whose variable is unused and whose right-hand side
is *pure* (cannot write to an observable modifiable, assign a reference, or
fail).  ``mod`` is pure for this purpose: its internal writes only target
the freshly allocated modifiable, so dropping an unused one is unobservable.
Applications are conservatively kept (they may diverge or allocate shared
state), matching the cautious stance the paper takes around MLton's DCE
(Section 3.5).
"""

from __future__ import annotations

from repro.core import sxml as S
from repro.core.sxmlutil import free_vars


_PURE_BINDS = (
    S.BAtom,
    S.BPrim,
    S.BTuple,
    S.BProj,
    S.BCon,
    S.BLam,
    S.BAscribe,
    S.BDeref,
    S.BRef,
    S.BMod,
)


def _is_pure(b: S.Bind) -> bool:
    if isinstance(b, S.BPrim) and b.op == "matchfail":
        return False
    if isinstance(b, (S.BIf, S.BCase, S.BCaseConst)):
        return False  # branches may contain impure code; keep it simple
    if isinstance(b, S.BMod):
        return not _writes_imperatively(b.body)
    return isinstance(b, _PURE_BINDS)


def _writes_imperatively(e) -> bool:
    """Does a changeable expression contain an imperative write?

    A ``mod`` whose body updates a pre-existing reference is observable and
    must not be removed even when its own result is unused.
    """
    if isinstance(e, S.CImpWrite):
        return True
    if isinstance(e, S.CRead):
        return _writes_imperatively(e.body)
    if isinstance(e, S.CLet):
        if isinstance(e.bind, (S.BAssign,)):
            return True
        if isinstance(e.bind, S.BMod) and _writes_imperatively(e.bind.body):
            return True
        return _writes_imperatively(e.body)
    if isinstance(e, S.CLetRec):
        return _writes_imperatively(e.body)
    if isinstance(e, S.CIf):
        return _writes_imperatively(e.then) or _writes_imperatively(e.els)
    if isinstance(e, S.CCase):
        return any(_writes_imperatively(c.body) for c in e.clauses) or (
            e.default is not None and _writes_imperatively(e.default)
        )
    if isinstance(e, S.CCaseConst):
        return any(_writes_imperatively(b) for _v, b in e.arms) or (
            e.default is not None and _writes_imperatively(e.default)
        )
    return False


def eliminate_dead_code(expr: S.Expr) -> S.Expr:
    """Iteratively remove unused pure bindings (to a fixpoint)."""
    dce = _Dce()
    result = expr
    while True:
        dce.changed = False
        result = dce.expr(result)
        if not dce.changed:
            return result


class _Dce:
    def __init__(self) -> None:
        self.changed = False

    def expr(self, e: S.Expr) -> S.Expr:
        if isinstance(e, S.ELet):
            body = self.expr(e.body)
            if _is_pure(e.bind) and e.name not in free_vars(body):
                self.changed = True
                return body
            return S.ELet(ty=e.ty, name=e.name, bind=self.bnd(e.bind), body=body)
        if isinstance(e, S.ELetRec):
            body = self.expr(e.body)
            used = free_vars(body)
            for _n, lam in e.bindings:
                used |= free_vars(lam)
            if not any(n in used for n, _ in e.bindings):
                self.changed = True
                return body
            bindings = [(n, self.bnd(l)) for n, l in e.bindings]
            return S.ELetRec(ty=e.ty, bindings=bindings, body=body)
        if isinstance(e, S.ERet):
            return e
        raise AssertionError(f"unknown expr {e!r}")

    def cexpr(self, e: S.CExpr) -> S.CExpr:
        if isinstance(e, S.CWrite):
            return e
        if isinstance(e, S.CRead):
            return S.CRead(
                src=e.src, binder=e.binder, binder_ty=e.binder_ty,
                body=self.cexpr(e.body),
            )
        if isinstance(e, S.CLet):
            body = self.cexpr(e.body)
            if _is_pure(e.bind) and e.name not in free_vars(body):
                self.changed = True
                return body
            return S.CLet(name=e.name, bind=self.bnd(e.bind), body=body)
        if isinstance(e, S.CLetRec):
            body = self.cexpr(e.body)
            used = free_vars(body)
            for _n, lam in e.bindings:
                used |= free_vars(lam)
            if not any(n in used for n, _ in e.bindings):
                self.changed = True
                return body
            bindings = [(n, self.bnd(l)) for n, l in e.bindings]
            return S.CLetRec(bindings=bindings, body=body)
        if isinstance(e, S.CIf):
            return S.CIf(cond=e.cond, then=self.cexpr(e.then), els=self.cexpr(e.els))
        if isinstance(e, S.CCase):
            clauses = [
                S.CaseClause(
                    tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                    body=self.cexpr(c.body),
                )
                for c in e.clauses
            ]
            default = self.cexpr(e.default) if e.default is not None else None
            return S.CCase(dt=e.dt, scrut=e.scrut, clauses=clauses, default=default)
        if isinstance(e, S.CCaseConst):
            arms = [(v, self.cexpr(b)) for v, b in e.arms]
            default = self.cexpr(e.default) if e.default is not None else None
            return S.CCaseConst(scrut=e.scrut, arms=arms, default=default)
        if isinstance(e, S.CImpWrite):
            return S.CImpWrite(ref=e.ref, value=e.value, body=self.cexpr(e.body))
        raise AssertionError(f"unknown cexpr {e!r}")

    def bnd(self, b: S.Bind) -> S.Bind:
        if isinstance(b, S.BMod):
            return S.BMod(ty=b.ty, body=self.cexpr(b.body))
        if isinstance(b, S.BLam):
            return S.BLam(
                ty=b.ty, param=b.param, param_ty=b.param_ty, body=self.expr(b.body),
                param_spec=b.param_spec, name_hint=b.name_hint,
            )
        if isinstance(b, S.BIf):
            return S.BIf(ty=b.ty, cond=b.cond, then=self.expr(b.then), els=self.expr(b.els))
        if isinstance(b, S.BCase):
            clauses = [
                S.CaseClause(
                    tag=c.tag, binder=c.binder, binder_ty=c.binder_ty,
                    body=self.expr(c.body),
                )
                for c in b.clauses
            ]
            default = self.expr(b.default) if b.default is not None else None
            return S.BCase(ty=b.ty, dt=b.dt, scrut=b.scrut, clauses=clauses, default=default)
        if isinstance(b, S.BCaseConst):
            arms = [(v, self.expr(body)) for v, body in b.arms]
            default = self.expr(b.default) if b.default is not None else None
            return S.BCaseConst(ty=b.ty, scrut=b.scrut, arms=arms, default=default)
        return b
