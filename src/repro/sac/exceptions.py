"""Exceptions raised by the self-adjusting computation runtime."""


class SacError(Exception):
    """Base class for all runtime errors in :mod:`repro.sac`."""


class WriteOutsideModError(SacError):
    """A ``write`` targeted a destination outside any ``mod`` scope.

    Translated code maintains the invariant (paper Section 2.2) that every
    ``write`` happens within the dynamic scope of a ``mod``.  The engine
    checks this invariant to catch compiler bugs early.
    """


class ReadOutsideModError(SacError):
    """A ``read`` was issued outside the dynamic scope of any ``mod``."""


class UnwrittenModError(SacError):
    """A ``mod`` body finished without writing to its destination."""


class PropagationError(SacError):
    """Change propagation encountered an inconsistent trace."""


class EnginePoisonedError(SacError):
    """The engine is poisoned and refuses all further work.

    An engine poisons itself when a failure recovery could not restore a
    consistent trace (e.g. the cleanup after an aborted re-execution
    itself raised).  Every subsequent operation on the engine raises this
    error instead of computing on a corrupt dependence graph.  Recovery
    from a poisoned engine means rebuilding from scratch, e.g.
    ``Session.propagate(on_error="rebuild")`` or a fresh ``Engine``.

    Attributes:
        reason: human-readable description of the poisoning failure.
    """

    def __init__(self, message: str, *, reason: str = ""):
        super().__init__(message)
        self.reason = reason


class ReexecutionError(PropagationError):
    """A re-executed reader raised instead of running to completion.

    Change propagation (:meth:`repro.sac.engine.Engine.propagate`)
    re-executes dirty read bodies transactionally: if the reader raises,
    the engine splices the edge's whole interval back out (both the
    partially rebuilt new trace and the not-yet-reused old trace), restores
    the cursor and reuse zone, re-queues the edge as dirty, and raises this
    error carrying the original exception (also chained as ``__cause__``).

    When ``consistent`` is True the trace is structurally well-formed
    again: the failing edge is staged for retry and the engine remains
    usable -- retry after fixing the environment, roll the inputs back
    (:meth:`repro.sac.engine.Engine.rollback`), or rebuild from scratch.
    When False, the abort cleanup itself failed and the engine has been
    poisoned (see :class:`EnginePoisonedError`).

    Attributes:
        edge: the :class:`repro.sac.trace.ReadEdge` whose reader raised;
        original: the exception raised by the reader;
        consistent: whether the trace was restored to a consistent state;
        reexecuted: read edges successfully re-executed before the failure;
        pending: dirty-queue entries remaining (the failing edge included).
    """

    def __init__(
        self,
        message: str,
        *,
        edge=None,
        original: BaseException = None,
        consistent: bool = True,
        reexecuted: int = 0,
        pending: int = 0,
    ):
        super().__init__(message)
        self.edge = edge
        self.original = original
        self.consistent = consistent
        self.reexecuted = reexecuted
        self.pending = pending


class RecursionReexecutionError(ReexecutionError):
    """A re-executed reader overflowed the Python stack.

    Self-adjusting readers nest one Python frame per traced cell, so deep
    inputs need a high interpreter recursion limit.  The engine raises the
    limit to ``Engine.RECURSION_LIMIT`` (overridable through the
    ``REPRO_RECURSION_LIMIT`` environment variable); hitting it anyway
    usually means the input outgrew the configured limit -- raise the
    limit or reduce the input size.  Raised as a typed
    :class:`ReexecutionError` so it carries the same recovery guarantees
    (interval spliced out, edge re-queued) instead of unwinding the
    propagation loop raw.
    """


class PropagationBudgetExceeded(SacError):
    """Change propagation stopped at its budget or deadline before draining
    the dirty queue.

    Raised by :meth:`repro.sac.engine.Engine.propagate` when a ``budget``
    (maximum read re-executions) or ``deadline`` (wall-clock seconds) is
    given and the queue still holds real work when the limit is reached.
    The trace is left *consistent*: every re-execution that started has
    finished, and the remaining dirty reads stay queued, so calling
    ``propagate`` again resumes exactly where the previous call stopped.

    Attributes:
        reexecuted: read edges re-executed before the limit hit;
        pending: dirty-queue entries remaining (including stale ones).
    """

    def __init__(self, message: str, *, reexecuted: int = 0, pending: int = 0):
        super().__init__(message)
        self.reexecuted = reexecuted
        self.pending = pending


class FeedsOracleError(SacError):
    """The maintained reverse-reachability summaries diverged from the
    exact recomputed reachability (lazy mode debug oracle).

    Raised only when the differential oracle is enabled
    (``Engine(feeds_oracle=True)`` or ``REPRO_FEEDS_ORACLE=1``): every
    relevance verdict then recomputes the demanded-root reachability of
    the queried modifiable from scratch and compares it against the
    incrementally maintained summary bitset.  A mismatch means summary
    maintenance missed a reader-graph change -- an engine bug, never a
    user error.
    """

