"""Exceptions raised by the self-adjusting computation runtime."""


class SacError(Exception):
    """Base class for all runtime errors in :mod:`repro.sac`."""


class WriteOutsideModError(SacError):
    """A ``write`` targeted a destination outside any ``mod`` scope.

    Translated code maintains the invariant (paper Section 2.2) that every
    ``write`` happens within the dynamic scope of a ``mod``.  The engine
    checks this invariant to catch compiler bugs early.
    """


class ReadOutsideModError(SacError):
    """A ``read`` was issued outside the dynamic scope of any ``mod``."""


class UnwrittenModError(SacError):
    """A ``mod`` body finished without writing to its destination."""


class PropagationError(SacError):
    """Change propagation encountered an inconsistent trace."""


class PropagationBudgetExceeded(SacError):
    """Change propagation stopped at its budget or deadline before draining
    the dirty queue.

    Raised by :meth:`repro.sac.engine.Engine.propagate` when a ``budget``
    (maximum read re-executions) or ``deadline`` (wall-clock seconds) is
    given and the queue still holds real work when the limit is reached.
    The trace is left *consistent*: every re-execution that started has
    finished, and the remaining dirty reads stay queued, so calling
    ``propagate`` again resumes exactly where the previous call stopped.

    Attributes:
        reexecuted: read edges re-executed before the limit hit;
        pending: dirty-queue entries remaining (including stale ones).
    """

    def __init__(self, message: str, *, reexecuted: int = 0, pending: int = 0):
        super().__init__(message)
        self.reexecuted = reexecuted
        self.pending = pending
