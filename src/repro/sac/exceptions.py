"""Exceptions raised by the self-adjusting computation runtime."""


class SacError(Exception):
    """Base class for all runtime errors in :mod:`repro.sac`."""


class WriteOutsideModError(SacError):
    """A ``write`` targeted a destination outside any ``mod`` scope.

    Translated code maintains the invariant (paper Section 2.2) that every
    ``write`` happens within the dynamic scope of a ``mod``.  The engine
    checks this invariant to catch compiler bugs early.
    """


class ReadOutsideModError(SacError):
    """A ``read`` was issued outside the dynamic scope of any ``mod``."""


class UnwrittenModError(SacError):
    """A ``mod`` body finished without writing to its destination."""


class PropagationError(SacError):
    """Change propagation encountered an inconsistent trace."""
