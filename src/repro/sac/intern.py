"""Hash-consing for constructor values.

Self-adjusting list/tree programs build enormous numbers of structurally
identical constructor cells (``Cons(h, t)`` with the same head and tail
modifiable, ``Leaf``, ``Nil``...).  Interning those cells buys two things on
the engine's hot paths:

* ``Engine._values_equal`` can answer *equal* with an identity test (two
  interned cells with internable contents are structurally equal iff they
  are the same object), so conservative write-cutoff comparisons stop
  walking deep spines;
* memo keys built from interned cells hash in O(1) by identity instead of
  recomputing a structural hash over the spine.

The table is *generic* over the constructor class: this module lives in
``repro.sac`` and must not import the interpreter, so the caller passes its
value class in (see :func:`repro.interp.values.intern_con`).  The contract
with the class is small: instances carry ``tag``/``arg`` attributes and a
writable ``_hc`` flag, and support weak references.  The table stores
canonical instances weakly -- interning never extends a value's lifetime.

Canonicalization is *best effort*.  A cell is interned only when its
argument is built from internable pieces:

* ``None`` and scalars (``int``/``bool``/``str``), keyed with their type so
  ``1``/``True``/``1.0`` never conflate;
* tuples of internable pieces;
* modifiables (identity: a modifiable *is* its own canonical name);
* already-canonical constructor values (identity, via :class:`_Ref`).

Anything else -- floats (``NaN``/``-0.0`` break the equality lattice),
closures, non-canonical constructor values -- bypasses the table; the cell
is built uninterned and behaves exactly as before.  Soundness only needs
the one-sided guarantee: *if* two values are both canonical and distinct
objects, they are structurally unequal.
"""

from __future__ import annotations

import weakref
from typing import Any, Optional

from repro.sac.modifiable import Modifiable

#: Key for a nullary constructor argument (``arg is None``).
_NONE_KEY = ("none",)


class _Ref:
    """Identity key for a canonical constructor value.

    Canonical values are compared by identity inside intern keys: hashing
    them structurally would walk the spine (defeating the point), and raw
    Python ``==`` would conflate e.g. ``Con("C", 1)`` with ``Con("C", True)``.
    The wrapper holds a strong reference; it lives inside the key of a
    :class:`weakref.WeakValueDictionary` entry, which is dropped as soon as
    the entry's (parent) value is collected, so children are pinned only
    while an interned parent still exists.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: Any) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: Any) -> bool:
        return type(other) is _Ref and other.obj is self.obj


class InternTable:
    """A weak table of canonical constructor values."""

    def __init__(self) -> None:
        self.table: "weakref.WeakValueDictionary[Any, Any]" = (
            weakref.WeakValueDictionary()
        )
        #: lookups answered with an existing canonical instance.
        self.hits = 0
        #: lookups that installed a fresh canonical instance.
        self.misses = 0
        #: constructions whose argument was not internable.
        self.bypassed = 0
        #: cells rebuilt from a snapshot (see :meth:`rehydrate`).
        self.rehydrated = 0

    def con(self, cls: Any, tag: str, arg: Any = None) -> Any:
        """Return a canonical ``cls(tag, arg)``, or a fresh uninterned one
        when ``arg`` contains uninternable pieces."""
        key = _NONE_KEY if arg is None else self._key(arg)
        if key is None:
            self.bypassed += 1
            return cls(tag, arg)
        full_key = (tag, key)
        existing = self.table.get(full_key)
        if existing is not None:
            self.hits += 1
            return existing
        self.misses += 1
        value = cls(tag, arg)
        value._hc = True
        self.table[full_key] = value
        return value

    def rehydrate(self, cls: Any, tag: str, arg: Any, canonical: bool) -> Any:
        """Rebuild a deserialized constructor cell (``repro.persist``).

        A cell that was canonical when snapshotted must come back *through*
        the table: restoring it as a plain instance would break the
        one-sided soundness guarantee (two distinct canonical objects are
        structurally unequal) that identity-fast cutoffs and memo keys rely
        on.  A cell that was uninterned stays uninterned -- its argument
        may contain pieces (floats, closures) the table refuses by design.
        """
        self.rehydrated += 1
        if canonical:
            return self.con(cls, tag, arg)
        return cls(tag, arg)

    def _key(self, value: Any) -> Optional[Any]:
        """An intern key for ``value``, or ``None`` if uninternable."""
        if value is None:
            return _NONE_KEY
        t = type(value)
        if t is int or t is str or t is bool:
            return (t, value)
        if t is Modifiable:
            return value
        if t is tuple:
            if len(value) == 2:
                # Every cons cell carries a (head, tail) pair: build the
                # same ("t", k0, k1) key without the list round-trip.
                a, b = value
                ka = self._key(a)
                if ka is None:
                    return None
                kb = self._key(b)
                if kb is None:
                    return None
                return ("t", ka, kb)
            parts: list = ["t"]
            for item in value:
                k = self._key(item)
                if k is None:
                    return None
                parts.append(k)
            return tuple(parts)
        if getattr(value, "_hc", False):
            return _Ref(value)
        if isinstance(value, Modifiable):
            return value
        return None

    def stats(self) -> dict:
        return {
            "live": len(self.table),
            "hits": self.hits,
            "misses": self.misses,
            "bypassed": self.bypassed,
            "rehydrated": self.rehydrated,
        }


#: The process-wide table.  Canonical values from different engines may
#: share cells; that is fine -- canonical values are immutable and equality
#: is structural, not engine-scoped.
INTERN = InternTable()


def intern_stats() -> dict:
    """Counters for the process-wide intern table."""
    return INTERN.stats()
