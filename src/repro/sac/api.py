"""Library-level helpers: memo keys and modifiable lists.

This module provides the pieces that hand-written self-adjusting programs
(the paper's AFL baseline, Section 4.9) and the marshalling layer share:

* :func:`memo_key` -- turn a runtime value into a hashable memoization key,
  comparing modifiables (and other unhashable objects) by identity;
* :class:`ModList` -- a Python-side handle to a modifiable list (the list
  representation of paper Section 4.1, where the *tail* of each cell is
  changeable), supporting positional insert/remove/set.

Edit methods follow the uniform convention of :class:`repro.api.Session`:
they stage the change without propagating and return the number of read
edges dirtied.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.sac.engine import Engine
from repro.sac.modifiable import Modifiable


class IdKey:
    """Identity-based hashable wrapper.

    Holds a strong reference to the object so its ``id`` cannot be recycled
    while a memo entry mentioning it is alive.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: Any) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, IdKey) and self.obj is other.obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdKey({self.obj!r})"


_SCALARS = (int, float, bool, str, bytes, type(None))


def memo_key(value: Any) -> Any:
    """Build a hashable memo key from a runtime value.

    Scalars key by value; tuples key structurally; modifiables and anything
    else (closures, constructor values, ...) key by identity unless they
    define a ``memo_key()`` method.  Identity keys are sound because a reused
    trace is only spliced when the keys match *and* the trace lies in the
    current reuse zone.
    """
    t = type(value)
    if t is int or t is str or t is float or t is bool:
        return value
    if t is Modifiable:
        # Modifiables key by identity; the object is its own key (default
        # object hash/eq run at C speed, no wrapper allocation).
        return value
    if t is tuple:
        # Dominant tuple shapes are pairs and triples (list cells, argument
        # tuples); building those directly avoids a generator frame.
        n = len(value)
        if n == 2:
            return (memo_key(value[0]), memo_key(value[1]))
        if n == 3:
            return (memo_key(value[0]), memo_key(value[1]), memo_key(value[2]))
        return tuple(map(memo_key, value))
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return tuple(memo_key(v) for v in value)
    hook = getattr(value, "memo_key", None)
    if hook is not None:
        return hook()
    return IdKey(value)


# ----------------------------------------------------------------------
# Modifiable lists (Python-value flavour, used by the AFL baselines)

NIL: Optional[Tuple] = None


class ModList:
    """A modifiable list and its position-indexed handle.

    The runtime representation matches the paper's list benchmarks: each
    cell is ``(head, tail_mod)`` and the empty list is ``None``; only the
    *tails* are modifiable, so the supported changes are insertion and
    deletion of elements (and in-place head replacement via :meth:`set`).

    Internally ``self.mods[i]`` is the modifiable containing the cell that
    starts at position ``i``; ``self.mods[len]`` contains ``None``.
    """

    def __init__(self, engine: Engine, items: Iterable[Any]) -> None:
        self.engine = engine
        self.mods: List[Modifiable] = [engine.make_input(NIL)]
        for item in reversed(list(items)):
            head_mod = engine.make_input((item, self.mods[0]))
            self.mods.insert(0, head_mod)

    # -- structure ----------------------------------------------------

    @property
    def head(self) -> Modifiable:
        """The modifiable holding the first cell (the program's input)."""
        return self.mods[0]

    def __len__(self) -> int:
        return len(self.mods) - 1

    def to_python(self) -> List[Any]:
        """Read the current contents back (untracked)."""
        out = []
        cell = self.mods[0].peek()
        while cell is not None:
            head, tail = cell
            out.append(head)
            cell = tail.peek()
        return out

    def get(self, index: int) -> Any:
        """The value of element ``index`` (untracked peek)."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        cell = self.mods[index].peek()
        assert cell is not None
        return cell[0]

    # -- changes (stage only; propagate explicitly afterwards) ---------
    #
    # Each edit returns the number of read edges it dirtied, matching
    # ``Session.edit``; nothing re-executes until propagation.

    def insert(self, index: int, value: Any) -> int:
        """Insert ``value`` so that it becomes element ``index``."""
        if not 0 <= index <= len(self):
            raise IndexError(index)
        target = self.mods[index]
        carrier = self.engine.make_input(target.peek())
        dirtied = self.engine.change(target, (value, carrier))
        self.mods.insert(index + 1, carrier)
        return dirtied

    def remove(self, index: int) -> int:
        """Remove element ``index`` (use :meth:`get` first for its value)."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        dirtied = self.engine.change(
            self.mods[index], self.mods[index + 1].peek()
        )
        del self.mods[index + 1]
        return dirtied

    def set(self, index: int, value: Any) -> int:
        """Replace the head value of element ``index``."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        cell = self.mods[index].peek()
        assert cell is not None
        return self.engine.change(self.mods[index], (value, cell[1]))


def modlist_foreach(engine: Engine, head: Modifiable, visit: Callable[[Any], None]) -> None:
    """Untracked traversal of a modifiable list (for debugging/verification)."""
    cell = head.peek()
    while cell is not None:
        value, tail = cell
        visit(value)
        cell = tail.peek()
