"""Self-adjusting computation runtime.

This package is the run-time substrate of the LML reproduction (paper
Sections 3.5-3.6): modifiables, a totally ordered execution trace built from
order-maintenance timestamps, memoization with trace reuse, and the change
propagation engine.  It can also be used directly from Python as an AFL-style
combinator library (the paper's hand-written baseline, Section 4.9).

Typical direct use::

    from repro.sac import Engine

    engine = Engine()
    m = engine.make_input(2)
    out = engine.mod(lambda dest: engine.read(m, lambda v: engine.write(dest, v * v)))
    assert out.peek() == 4
    engine.change(m, 3)
    engine.propagate()
    assert out.peek() == 9
"""

from repro.sac.engine import Batch, Engine
from repro.sac.exceptions import (
    EnginePoisonedError,
    PropagationBudgetExceeded,
    PropagationError,
    RecursionReexecutionError,
    ReexecutionError,
    SacError,
    WriteOutsideModError,
)
from repro.sac.meter import Meter
from repro.sac.modifiable import Modifiable
from repro.sac.order import Order, Stamp

__all__ = [
    "Batch",
    "Engine",
    "EnginePoisonedError",
    "Meter",
    "Modifiable",
    "Order",
    "PropagationBudgetExceeded",
    "PropagationError",
    "RecursionReexecutionError",
    "ReexecutionError",
    "SacError",
    "Stamp",
    "WriteOutsideModError",
]
