"""Order-maintenance timestamps.

The dynamic dependence graph of self-adjusting computation (Acar et al. 2006)
needs a *total order* on trace events that supports:

* ``insert_after(s)`` -- allocate a new timestamp immediately after ``s``;
* ``compare`` -- decide which of two timestamps comes first, in O(1);
* ``delete`` -- remove a timestamp (when its trace segment is discarded).

We implement the classic *list-labeling* solution: timestamps live in a
doubly-linked list and carry integer labels that respect the list order.
Insertion bisects the gap between neighbours; when a gap is exhausted, a
local window is relabeled.  The window grows until its label range exceeds
the square of its length, which yields amortized O(log n) insertions
(Bender et al.-style analysis).  Comparison is a single integer comparison.

Relabeling preserves the *relative* order of all stamps, so any heap ordered
by live stamp labels (as used by :class:`repro.sac.engine.Engine`) remains
valid across relabelings, provided comparisons always consult the current
label (our :class:`Stamp` defines ``__lt__`` that way).
"""

from __future__ import annotations

from typing import Iterator, Optional


#: Initial gap between consecutive labels.  Appending to the end of the order
#: always advances by this much, so end-of-list insertion never relabels.
SPACING = 1 << 20


class Stamp:
    """A timestamp in the total order.

    Attributes:
        label: integer label consistent with list order (mutated by
            relabeling, order-preservingly).
        live: False once deleted.  Dead stamps keep their last label so that
            stale references compare harmlessly.
        owner: optional trace object anchored at this stamp (a read edge or
            memo entry); the engine discards the owner when the stamp's
            trace segment is deleted.
    """

    __slots__ = ("label", "prev", "next", "live", "owner")

    def __init__(self, label: int) -> None:
        self.label = label
        self.prev: Optional[Stamp] = None
        self.next: Optional[Stamp] = None
        self.live = True
        self.owner = None

    def __lt__(self, other: "Stamp") -> bool:
        return self.label < other.label

    def __le__(self, other: "Stamp") -> bool:
        return self.label <= other.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "" if self.live else " dead"
        return f"<Stamp {self.label}{status}>"


class Order:
    """A list of :class:`Stamp` values supporting O(1) ordered insertion.

    The order always contains a *base* stamp that precedes everything and is
    never deleted; fresh computation starts at the base.
    """

    def __init__(self) -> None:
        self.base = Stamp(0)
        self._last = self.base
        self.n_live = 1
        self.n_relabels = 0

    # ------------------------------------------------------------------
    # Insertion

    def insert_after(self, s: Stamp) -> Stamp:
        """Allocate and return a fresh stamp immediately after ``s``."""
        if not s.live:
            raise ValueError("cannot insert after a dead stamp")
        nxt = s.next
        if nxt is None:
            label = s.label + SPACING
        else:
            gap = nxt.label - s.label
            if gap >= 2:
                label = s.label + gap // 2
            else:
                self._relabel_from(s)
                return self.insert_after(s)
        new = Stamp(label)
        new.prev = s
        new.next = nxt
        s.next = new
        if nxt is None:
            self._last = new
        else:
            nxt.prev = new
        self.n_live += 1
        return new

    def _relabel_from(self, s: Stamp) -> None:
        """Renumber a window after ``s`` to open up label space.

        Walks forward from ``s`` until the window of ``j`` stamps spans a
        label range greater than ``j**2`` (or the list ends), then spreads
        the window's labels evenly across that range.
        """
        self.n_relabels += 1
        window = []
        node = s.next
        j = 1
        while node is not None and node.label - s.label <= j * j:
            window.append(node)
            node = node.next
            j += 1
        if node is None:
            # Ran off the end: renumber the tail with full spacing.
            label = s.label
            for w in window:
                label += SPACING
                w.label = label
            return
        # ``node`` is the first stamp outside the window; spread the window
        # evenly in the open interval (s.label, node.label).
        span = node.label - s.label
        count = len(window)
        step = span // (count + 1)
        if step < 1:  # pragma: no cover - density condition prevents this
            raise AssertionError("relabel window too dense")
        label = s.label
        for w in window:
            label += step
            w.label = label

    # ------------------------------------------------------------------
    # Deletion

    def delete(self, s: Stamp) -> None:
        """Remove ``s`` from the order.  ``s`` keeps its label but is dead."""
        if s is self.base:
            raise ValueError("cannot delete the base stamp")
        if not s.live:
            return
        s.live = False
        prev, nxt = s.prev, s.next
        assert prev is not None
        prev.next = nxt
        if nxt is None:
            self._last = prev
        else:
            nxt.prev = prev
        s.prev = None
        s.next = None
        self.n_live -= 1

    # ------------------------------------------------------------------
    # Inspection helpers (used by the engine and by tests)

    def iter_between(self, a: Stamp, b: Optional[Stamp]) -> Iterator[Stamp]:
        """Yield live stamps strictly between ``a`` and ``b`` in order.

        ``b`` may be None to mean "end of the order".  The iterator is safe
        against deletion of the *yielded* stamp between steps.
        """
        node = a.next
        while node is not None and node is not b:
            nxt = node.next
            yield node
            node = nxt

    def __iter__(self) -> Iterator[Stamp]:
        node: Optional[Stamp] = self.base
        while node is not None:
            yield node
            node = node.next

    def check(self) -> None:
        """Verify internal invariants (test hook): labels strictly increase."""
        node = self.base
        count = 1
        while node.next is not None:
            nxt = node.next
            if not (node.label < nxt.label):
                raise AssertionError(
                    f"labels out of order: {node.label} !< {nxt.label}"
                )
            if nxt.prev is not node:
                raise AssertionError("broken back link")
            node = nxt
            count += 1
        if node is not self._last:
            raise AssertionError("stale last pointer")
        if count != self.n_live:
            raise AssertionError(f"live count {self.n_live} != walked {count}")
