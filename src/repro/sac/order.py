"""Order-maintenance timestamps.

The dynamic dependence graph of self-adjusting computation (Acar et al. 2006)
needs a *total order* on trace events that supports:

* ``insert_after(s)`` -- allocate a new timestamp immediately after ``s``;
* ``compare`` -- decide which of two timestamps comes first, in O(1);
* ``delete`` -- remove a timestamp (when its trace segment is discarded).

We implement the classic *two-level indirection* solution (Bender et al.;
the same structure Porter et al. 2025 exploit for incremental typing):
stamps live in a doubly-linked list and are grouped into *buckets* of
bounded size.  Each bucket carries a top-level integer label; each stamp a
small *local* label within its bucket.  Comparison packs the pair into one
integer key (``bucket.label << LOCAL_BITS | local``), cached on the stamp,
so ``a < b`` is a single C-speed integer comparison.

Insertion bisects the local gap between neighbours.  When a bucket's local
label space is exhausted its ≤ ``BUCKET_CAPACITY`` stamps are respread
across the full local range -- an O(1) *amortized* relabel, because the
respread opens gaps of ``LOCAL_MAX / (capacity + 1)`` (many halvings wide)
and touches a bounded number of stamps.  A full bucket splits in two.  Only
the top level -- with n / capacity entries -- ever runs the classic
list-labeling window relabel, making relabel storms asymptotically rarer
than in the flat scheme this replaces.

Every operation that changes an existing stamp's cached key (respread,
split, top-level relabel) bumps :attr:`Order.epoch`.  Consumers that
snapshot keys -- the engine's propagation heap stores ``(key, tiebreak)``
entries -- watch the epoch and re-key their snapshots when it moves, instead
of consulting stamps on every heap sift.  Snapshots taken at *different*
epochs are not mutually comparable, which is why the engine re-keys the
whole heap at once rather than validating entries pop-by-pop.

Deleted stamps are recycled through a bounded free-list.  Holders of
possibly-dead stamp references that must detect recycling (the engine's
keyed-allocation table) compare :attr:`Stamp.gen`, which increments each
time a pooled stamp is brought back into service.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

#: Gap between consecutive top-level bucket labels on append.  Appending a
#: bucket at the end of the order never relabels.
SPACING = 1 << 20

#: Bits reserved for the local (within-bucket) label in the packed key.
LOCAL_BITS = 32

#: Local labels live in [0, LOCAL_MAX).
LOCAL_MAX = 1 << LOCAL_BITS

#: Local gap used when appending at the end of a bucket.
LOCAL_GAP = 1 << 16

#: Maximum stamps per bucket before it splits.  Bounds the cost of a local
#: respread (and of re-keying a bucket when its top-level label moves).
BUCKET_CAPACITY = 64

#: Bound on the stamp free-list.
POOL_CAP = 8192


class Bucket:
    """A top-level node: a contiguous run of stamps sharing a high label."""

    __slots__ = ("label", "high", "prev", "next", "count", "first")

    def __init__(self, label: int) -> None:
        self.label = label
        #: ``label << LOCAL_BITS``, cached: packing a stamp key is then one
        #: C-speed ``or`` on the insertion fast path.
        self.high = label << LOCAL_BITS
        self.prev: Optional[Bucket] = None
        self.next: Optional[Bucket] = None
        self.count = 0
        self.first: Optional[Stamp] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bucket {self.label} x{self.count}>"


class Stamp:
    """A timestamp in the total order.

    Attributes:
        key: packed ``(bucket.label << LOCAL_BITS) | local`` comparison key,
            kept consistent by the order (mutated order-preservingly by
            relabels).  Comparisons use only this one integer.
        local: label within the owning bucket.
        bucket: the owning :class:`Bucket`.
        live: False once deleted.  Dead stamps keep their last key so that
            stale references compare harmlessly.
        gen: recycling generation; bumped when a pooled dead stamp is
            brought back into service, so holders of old references can
            detect the reuse (see :class:`Order` docstring).
        owner: optional trace object anchored at this stamp (a read edge or
            memo entry); the engine discards the owner when the stamp's
            trace segment is deleted.
    """

    __slots__ = ("key", "local", "bucket", "prev", "next", "live", "gen", "owner")

    def __init__(self, bucket: Bucket, local: int) -> None:
        self.bucket = bucket
        self.local = local
        self.key = bucket.high | local
        self.prev: Optional[Stamp] = None
        self.next: Optional[Stamp] = None
        self.live = True
        self.gen = 0
        self.owner = None

    @property
    def label(self) -> int:
        """The packed comparison key (back-compat alias used by
        observability exporters and reprs)."""
        return self.key

    def __lt__(self, other: "Stamp") -> bool:
        return self.key < other.key

    def __le__(self, other: "Stamp") -> bool:
        return self.key <= other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "" if self.live else " dead"
        return f"<Stamp {self.key}{status}>"


class Order:
    """A list of :class:`Stamp` values supporting O(1) ordered insertion.

    The order always contains a *base* stamp that precedes everything and is
    never deleted; fresh computation starts at the base.
    """

    def __init__(self) -> None:
        base_bucket = Bucket(0)
        self.base = Stamp(base_bucket, 0)
        base_bucket.first = self.base
        base_bucket.count = 1
        self._base_bucket = base_bucket
        self._first_bucket = base_bucket
        self._last_bucket = base_bucket
        self._last = self.base
        self.n_live = 1
        self.n_buckets = 1
        self.n_relabels = 0
        #: bumped whenever any existing stamp's cached key changes; heap
        #: snapshots keyed on stamps must be rebuilt when this moves.
        self.epoch = 0
        self._pool: List[Stamp] = []
        self.stamps_allocated = 1
        self.stamps_reused = 0

    # ------------------------------------------------------------------
    # Insertion

    def insert_after(self, s: Stamp) -> Stamp:
        """Allocate and return a fresh stamp immediately after ``s``."""
        if not s.live:
            raise ValueError("cannot insert after a dead stamp")
        while True:
            bucket = s.bucket
            nxt = s.next
            if nxt is None or nxt.bucket is not bucket:
                # ``s`` is the last stamp of its bucket: append locally, or
                # open a fresh bucket right after this one when the bucket
                # is full / its local space is exhausted.
                local = s.local + LOCAL_GAP
                if local >= LOCAL_MAX or bucket.count >= BUCKET_CAPACITY:
                    bucket = self._bucket_after(bucket)
                    local = LOCAL_GAP
            else:
                if bucket.count >= BUCKET_CAPACITY:
                    self._split(bucket)
                    continue
                # Asymmetric bisection: change propagation inserts
                # monotonically *forward* after an advancing cursor, so
                # splitting near ``s`` leaves most of the gap for the
                # stamps that will follow.  A forward run then sustains
                # ~log_{8/7}(gap) inserts before exhausting the gap --
                # past BUCKET_CAPACITY, so the bucket splits before it
                # ever needs a respace.
                local = s.local + ((nxt.local - s.local) >> 3)
                if local == s.local:
                    self._respace(bucket)
                    continue
            # Place the stamp (inline: this is the engine's hottest call).
            pool = self._pool
            if pool:
                new = pool.pop()
                new.bucket = bucket
                new.local = local
                new.key = bucket.high | local
                new.live = True
                new.gen += 1
                self.stamps_reused += 1
            else:
                new = Stamp(bucket, local)
                self.stamps_allocated += 1
            new.prev = s
            new.next = nxt
            s.next = new
            if nxt is None:
                self._last = new
            else:
                nxt.prev = new
            if bucket.first is None:
                bucket.first = new
            bucket.count += 1
            self.n_live += 1
            return new

    def _respace(self, bucket: Bucket) -> None:
        """Spread ``bucket``'s locals evenly across the full local range."""
        self.n_relabels += 1
        self.epoch += 1
        step = LOCAL_MAX // (bucket.count + 1)
        high = bucket.high
        local = 0
        node = bucket.first
        for _ in range(bucket.count):
            local += step
            node.local = local
            node.key = high | local
            node = node.next

    def _split(self, bucket: Bucket) -> None:
        """Move the upper half of a full bucket into a fresh successor."""
        new_bucket = self._bucket_after(bucket)
        keep = bucket.count - (bucket.count >> 1)
        node = bucket.first
        for _ in range(keep - 1):
            node = node.next
        moved = node.next
        new_bucket.first = moved
        count = 0
        while moved is not None and moved.bucket is bucket:
            moved.bucket = new_bucket
            count += 1
            moved = moved.next
        bucket.count = keep
        new_bucket.count = count
        self._respace(bucket)
        self._respace(new_bucket)

    def _bucket_after(self, bucket: Bucket) -> Bucket:
        """Insert and return a fresh empty bucket right after ``bucket``."""
        while True:
            nxt = bucket.next
            if nxt is None:
                label = bucket.label + SPACING
            else:
                gap = nxt.label - bucket.label
                if gap < 2:
                    self._relabel_buckets_from(bucket)
                    continue
                label = bucket.label + (gap >> 1)
            new = Bucket(label)
            new.prev = bucket
            new.next = nxt
            bucket.next = new
            if nxt is None:
                self._last_bucket = new
            else:
                nxt.prev = new
            self.n_buckets += 1
            return new

    def _relabel_buckets_from(self, bucket: Bucket) -> None:
        """Renumber a top-level window after ``bucket``.

        Classic list-labeling: the window grows until its label range
        exceeds the square of its length (or the list ends), then its
        labels are spread evenly -- amortized O(log n) over n / capacity
        top-level entries.  Every stamp in a moved bucket gets its cached
        key refreshed (≤ BUCKET_CAPACITY each).
        """
        self.n_relabels += 1
        self.epoch += 1
        window = []
        node = bucket.next
        j = 1
        while node is not None and node.label - bucket.label <= j * j:
            window.append(node)
            node = node.next
            j += 1
        if node is None:
            # Ran off the end: renumber the tail with full spacing.
            label = bucket.label
            for w in window:
                label += SPACING
                self._set_bucket_label(w, label)
            return
        span = node.label - bucket.label
        step = span // (len(window) + 1)
        if step < 1:  # pragma: no cover - density condition prevents this
            raise AssertionError("bucket relabel window too dense")
        label = bucket.label
        for w in window:
            label += step
            self._set_bucket_label(w, label)

    def _set_bucket_label(self, bucket: Bucket, label: int) -> None:
        bucket.label = label
        bucket.high = high = label << LOCAL_BITS
        node = bucket.first
        for _ in range(bucket.count):
            node.key = high | node.local
            node = node.next

    # ------------------------------------------------------------------
    # Deletion

    def delete(self, s: Stamp) -> None:
        """Remove ``s`` from the order.  ``s`` keeps its key but is dead."""
        if s is self.base:
            raise ValueError("cannot delete the base stamp")
        if not s.live:
            return
        s.live = False
        prev, nxt = s.prev, s.next
        assert prev is not None
        prev.next = nxt
        if nxt is None:
            self._last = prev
        else:
            nxt.prev = prev
        s.prev = None
        s.next = None
        s.owner = None
        bucket = s.bucket
        bucket.count -= 1
        if bucket.first is s:
            bucket.first = (
                nxt if nxt is not None and nxt.bucket is bucket else None
            )
        if bucket.count == 0 and bucket is not self._base_bucket:
            bprev, bnxt = bucket.prev, bucket.next
            bprev.next = bnxt
            if bnxt is None:
                self._last_bucket = bprev
            else:
                bnxt.prev = bprev
            bucket.prev = None
            bucket.next = None
            self.n_buckets -= 1
        self.n_live -= 1
        pool = self._pool
        if len(pool) < POOL_CAP:
            pool.append(s)

    def delete_range(self, a: Stamp, b: Optional[Stamp]) -> None:
        """Remove every stamp strictly between ``a`` and ``b`` (one splice).

        Equivalent to calling :meth:`delete` on each stamp in the range,
        but the surrounding list is spliced once and the live count is
        adjusted once -- trace truncation deletes tens of thousands of
        contiguous stamps, so the per-call bookkeeping is worth hoisting.
        ``b`` may be None to mean "end of the order".  ``a`` and ``b``
        themselves are kept; ``b is a`` names an empty interval.
        """
        if b is a:
            return
        node = a.next
        if node is None or node is b:
            return
        pool = self._pool
        base_bucket = self._base_bucket
        removed = 0
        while node is not None and node is not b:
            nxt = node.next
            node.live = False
            node.owner = None
            node.prev = None
            node.next = None
            bucket = node.bucket
            bucket.count -= 1
            if bucket.first is node:
                bucket.first = (
                    nxt if nxt is not None and nxt.bucket is bucket else None
                )
            if bucket.count == 0 and bucket is not base_bucket:
                bprev, bnxt = bucket.prev, bucket.next
                bprev.next = bnxt
                if bnxt is None:
                    self._last_bucket = bprev
                else:
                    bnxt.prev = bprev
                bucket.prev = None
                bucket.next = None
                self.n_buckets -= 1
            if len(pool) < POOL_CAP:
                pool.append(node)
            removed += 1
            node = nxt
        a.next = b
        if b is None:
            self._last = a
        else:
            b.prev = a
        self.n_live -= removed

    # ------------------------------------------------------------------
    # Inspection helpers (used by the engine and by tests)

    def iter_between(self, a: Stamp, b: Optional[Stamp]) -> Iterator[Stamp]:
        """Yield live stamps strictly between ``a`` and ``b`` in order.

        ``b`` may be None to mean "end of the order".  The iterator is safe
        against deletion of the *yielded* stamp between steps.
        """
        node = a.next
        while node is not None and node is not b:
            nxt = node.next
            yield node
            node = nxt

    def __iter__(self) -> Iterator[Stamp]:
        node: Optional[Stamp] = self.base
        while node is not None:
            yield node
            node = node.next

    def stats(self) -> dict:
        """Structure statistics (consumed by the profiling harness)."""
        return {
            "live_stamps": self.n_live,
            "buckets": self.n_buckets,
            "relabels": self.n_relabels,
            "epoch": self.epoch,
            "stamps_allocated": self.stamps_allocated,
            "stamps_reused": self.stamps_reused,
            "pooled": len(self._pool),
        }

    def check(self) -> None:
        """Verify internal invariants (test hook).

        Keys strictly increase along the stamp list; bucket structure is
        consistent (counts, first pointers, label packing, top-level label
        order); the live count and last pointers are accurate.
        """
        node = self.base
        count = 1
        while node.next is not None:
            nxt = node.next
            if not (node.key < nxt.key):
                raise AssertionError(
                    f"keys out of order: {node.key} !< {nxt.key}"
                )
            if nxt.prev is not node:
                raise AssertionError("broken back link")
            node = nxt
            count += 1
        if node is not self._last:
            raise AssertionError("stale last pointer")
        if count != self.n_live:
            raise AssertionError(f"live count {self.n_live} != walked {count}")
        # Bucket-level invariants.
        bucket = self._first_bucket
        n_buckets = 0
        total = 0
        prev_bucket = None
        while bucket is not None:
            n_buckets += 1
            if prev_bucket is not None:
                if not (prev_bucket.label < bucket.label):
                    raise AssertionError(
                        f"bucket labels out of order: "
                        f"{prev_bucket.label} !< {bucket.label}"
                    )
                if bucket.prev is not prev_bucket:
                    raise AssertionError("broken bucket back link")
            if bucket.count < 0:
                raise AssertionError("negative bucket count")
            if bucket.high != bucket.label << LOCAL_BITS:
                raise AssertionError("stale cached bucket high label")
            if bucket.count:
                node = bucket.first
                if node is None:
                    raise AssertionError("populated bucket without first")
                prev_local = -1
                for _ in range(bucket.count):
                    if node is None or node.bucket is not bucket:
                        raise AssertionError("bucket count overruns members")
                    if not (prev_local < node.local):
                        raise AssertionError("locals out of order in bucket")
                    if node.local >= LOCAL_MAX:
                        raise AssertionError("local label out of range")
                    expected = (bucket.label << LOCAL_BITS) | node.local
                    if node.key != expected:
                        raise AssertionError(
                            f"stale packed key {node.key} != {expected}"
                        )
                    prev_local = node.local
                    node = node.next
                if node is not None and node.bucket is bucket:
                    raise AssertionError("bucket members overrun count")
            elif bucket is not self._base_bucket:
                raise AssertionError("empty non-base bucket left linked")
            total += bucket.count
            prev_bucket = bucket
            bucket = bucket.next
        if prev_bucket is not self._last_bucket:
            raise AssertionError("stale last-bucket pointer")
        if n_buckets != self.n_buckets:
            raise AssertionError(
                f"bucket count {self.n_buckets} != walked {n_buckets}"
            )
        if total != self.n_live:
            raise AssertionError(
                f"bucket totals {total} != live count {self.n_live}"
            )
