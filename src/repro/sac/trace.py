"""Trace records: read edges and memo entries.

The *trace* of a self-adjusting run is the set of read edges ordered by their
start timestamps, together with the memo entries recorded during the run.
Both kinds of record are *anchored* at their start stamp (``stamp.owner``),
so that deleting a time range retracts exactly the records created in it.

Both records are ``__slots__``-packed and recycled through engine free-lists
once fully retracted (see :class:`repro.sac.engine.Engine`): a discarded
edge that is not sitting in the dirty queue goes straight back to the pool,
a queued one when it is finally popped, and a dead memo entry when lazy
pruning or compaction removes it from its table bucket.  Recycling is
skipped while an observability hook is attached, because hooks name records
by identity.

The propagation heap does *not* compare these records: the engine stores
``(key, tiebreak, edge)`` tuples whose leading ints decide the order at C
speed, so the records need no ordering protocol at all.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sac.order import Stamp


class ReadEdge:
    """A recorded ``read`` of a modifiable.

    The edge remembers the reader closure and the timestamp interval
    ``[start, end]`` spanned by the reader's execution.  When the modifiable
    changes, the edge becomes *dirty* and is queued; change propagation
    re-executes the closure within its interval, discarding whatever part of
    the old sub-trace is not reused through memoization.

    ``dest`` is the innermost enclosing ``mod`` destination at the time the
    read ran: the modifiable this read's re-execution ultimately writes.
    It is what lazy (demand-driven) propagation walks to decide whether a
    dirty edge feeds a demanded output (see ``Engine.demand``); eager
    propagation never looks at it.  ``None`` means the read ran with no
    enclosing destination on record, which demand treats as "feeds
    everything" (always sound, possibly eager).
    """

    __slots__ = ("mod", "reader", "start", "end", "dest", "dirty", "dead")

    def __init__(
        self,
        mod: Any,
        reader: Callable[[Any], None],
        start: Stamp,
        dest: Any = None,
    ) -> None:
        self.mod = mod
        self.reader = reader
        self.start: Optional[Stamp] = start
        self.end: Optional[Stamp] = None
        self.dest = dest
        self.dirty = False
        self.dead = False

    def discard(self, engine: Any) -> None:
        """Retract this edge: called when its start stamp is deleted.

        The reader closure and the modifiable reference are dropped eagerly:
        a dead edge can linger in the dirty queue (it is skipped when
        popped), and without this the closure's captured environment --
        often a whole sub-computation's worth of values -- would stay live
        until the queue drains.  An edge that is *not* queued is done for
        good and goes back to the engine's free-list immediately (queued
        ones are recycled at pop time instead: the queue entry still
        references them).
        """
        self.dead = True
        if engine._feeds_summary:
            # Reverse-reachability maintenance must see mod/dest before
            # they are cleared (mirrors the inlined _delete_range path).
            engine._note_edge_death(self)
        self.mod.readers.discard(self)
        self.mod = None
        self.reader = None
        self.dest = None
        engine.meter.live_edges -= 1
        if not self.dirty and engine.hook is None:
            pool = engine._edge_pool
            if len(pool) < engine.EDGE_POOL_CAP:
                self.start = None
                self.end = None
                pool.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ("dirty" if self.dirty else "") + (" dead" if self.dead else "")
        at = self.start.key if self.start is not None else "?"
        return f"<ReadEdge @{at} {flags}>"


class MemoEntry:
    """A memo-table record of one memoized computation.

    Stores the result and the timestamp interval of the computation.  During
    re-execution, a live entry whose interval lies inside the current reuse
    zone can be *spliced*: the engine skips over the entry's interval instead
    of recomputing, keeping the entire sub-trace (and its pending dirty
    reads, which are then propagated in timestamp order).
    """

    __slots__ = ("key", "result", "start", "end", "dead")

    def __init__(self, key: Any, start: Stamp) -> None:
        self.key = key
        self.result: Any = None
        self.start: Optional[Stamp] = start
        self.end: Optional[Stamp] = None
        self.dead = False

    def discard(self, engine: Any) -> None:
        """Retract this entry: called when its start stamp is deleted.

        The stored result is dropped eagerly (a dead entry can never be
        spliced, so the value is unreachable through the trace), and the
        entry is reported to the engine's dead-entry account, which drives
        memo-table compaction (:meth:`repro.sac.engine.Engine.compact`).
        The entry itself stays in its table bucket until lazy pruning or
        compaction removes it -- that is where it is recycled.
        """
        self.dead = True
        self.result = None
        engine.meter.live_memo_entries -= 1
        engine._dead_memo_entries += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        at = self.start.key if self.start is not None else "?"
        return f"<MemoEntry {self.key!r} @{at}>"
