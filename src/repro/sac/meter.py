"""Instrumentation counters for the self-adjusting runtime.

The paper's space plots (Figure 7, Figure 9) report memory consumption.  We
run on a garbage-collected interpreter where ``maxrss`` is noisy, so the
benchmarks report *trace size* instead: live timestamps, read edges, memo
entries, and modifiables created.  Trace size is the quantity that the
paper's theoretical bounds speak about (space is proportional to the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Meter:
    """Counters maintained by :class:`repro.sac.engine.Engine`."""

    mods_created: int = 0
    reads_executed: int = 0
    writes: int = 0
    changed_writes: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    edges_reexecuted: int = 0
    #: dirty-queue entries conclusively popped during propagation; the gap
    #: to ``edges_reexecuted`` is stale entries (dead or already-clean
    #: edges) skipped without work.
    queue_drained: int = 0
    #: dirty-queue entries pushed (edges newly dirtied or re-queued).
    queue_pushes: int = 0
    #: whole-queue re-key passes forced by order-maintenance relabels: heap
    #: entries snapshot their stamp's packed key, so when the order's epoch
    #: moves the engine rebuilds every snapshot at once (see
    #: :mod:`repro.sac.order`).
    queue_rekeys: int = 0
    #: coalesced edit groups propagated via ``Engine.batch``/``change_many``.
    batches: int = 0
    #: re-executions aborted because the reader raised; each abort spliced
    #: the edge's interval back out and re-queued the edge (see
    #: :class:`repro.sac.exceptions.ReexecutionError`).
    reexec_aborts: int = 0
    #: ``Engine.rollback`` recoveries (undo staged edits, propagate back to
    #: the last-good state, re-stage).
    rollbacks: int = 0
    #: failed initial runs whose partial trace was truncated back to the
    #: pre-run checkpoint (transactional ``mod`` / ``Session.run``).
    run_aborts: int = 0
    #: lazy mode (``Engine(mode="lazy")``): demand calls served, demand
    #: calls answered without any propagation work (the demanded
    #: modifiable was not suspect), suspect bits set by edit-time dirty
    #: marking, dirty-queue entries set aside by a demand pass because
    #: they do not feed the demanded output, and stale-read hazards a
    #: demand drain unwound (a re-execution reached a possibly-stale
    #: modifiable outside the relevance cone; the drain widened the cone
    #: and retried, or degraded to a full pass on a cycle).  All five stay
    #: zero on eager engines, so eager meter pins are unaffected.
    demands: int = 0
    demands_clean: int = 0
    suspect_marks: int = 0
    demand_deferred: int = 0
    demand_hazards: int = 0
    #: maintained reverse-reachability summaries (lazy ``feeds="summary"``
    #: engines): relevance queries answered from a valid summary in O(1)
    #: (``feeds_hits``), summary cells written by incremental maintenance —
    #: growth on new edges plus invalidations on edge death
    #: (``feeds_updates``), summary cells rebuilt by region recomputation
    #: on first query after invalidation (``feeds_recomputes``), and demand
    #: roots registered (``feeds_roots``).  All four stay zero on eager
    #: engines and on the retired ``feeds="dfs"`` baseline, so existing
    #: meter pins are unaffected.
    feeds_hits: int = 0
    feeds_updates: int = 0
    feeds_recomputes: int = 0
    feeds_roots: int = 0
    #: reader-graph nodes explored by the legacy ``feeds="dfs"`` relevance
    #: walk (one increment per DFS frame pushed).  The summary impl
    #: answers the same queries with one bitmask test each, so this
    #: counter against ``feeds_hits`` is the deterministic measure of the
    #: filtering work the maintained summaries avoid -- it is what the
    #: repeated-demand benchmark gates on, immune to machine noise.
    feeds_dfs_visits: int = 0
    #: trace-compaction passes and the table entries they reclaimed.
    compactions: int = 0
    memo_entries_compacted: int = 0
    alloc_entries_compacted: int = 0
    live_edges: int = 0
    live_memo_entries: int = 0

    def snapshot(self) -> dict:
        """Return a plain-dict copy of all counters."""
        return dict(self.__dict__)

    def reset(self) -> None:
        for key in list(self.__dict__):
            setattr(self, key, 0)

    def trace_size(self, engine) -> int:
        """A memory proxy: live stamps + edges + memo entries."""
        return engine.order.n_live + self.live_edges + self.live_memo_entries


@dataclass
class MeterDiff:
    """Difference between two meter snapshots (work done by one phase)."""

    before: dict = field(default_factory=dict)
    after: dict = field(default_factory=dict)

    def __getitem__(self, key: str) -> int:
        return self.after.get(key, 0) - self.before.get(key, 0)
