"""The change-propagation engine.

This module implements the core of self-adjusting computation (paper
Sections 3.5-3.6, following Acar et al., TOPLAS 2006/2009):

* ``mod`` / ``read`` / ``write`` build the dynamic dependence graph (trace)
  during the initial run;
* ``change`` modifies input modifiables between runs;
* ``propagate`` re-executes exactly the reads that observed changed values,
  in timestamp order, discarding stale trace and splicing in *memoized*
  sub-traces where possible.

The memoization discipline is AFL's (Acar et al. 2009): during re-execution
of a read edge with interval ``[s, e]``, the not-yet-discarded old trace
between the current time cursor and ``e`` is the *reuse zone*.  A memo hit
whose interval lies inside the zone is spliced in: the trace between the
cursor and the hit is discarded, the cursor jumps past the hit, and any
dirty reads inside the reused interval remain queued and are propagated
later, in timestamp order.

Imperative references (paper Figure 4's ``impwrite``) are supported for the
common initialize-then-read pattern: an imperative write makes *later* reads
dirty, but earlier reads keep the value they legitimately observed.  General
read-before-write aliasing would need the versioned store of Acar et al.
2008 and is out of scope (see DESIGN.md Section 6).
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.sac.exceptions import (
    EnginePoisonedError,
    FeedsOracleError,
    PropagationBudgetExceeded,
    PropagationError,
    ReadOutsideModError,
    RecursionReexecutionError,
    ReexecutionError,
    SacError,
    UnwrittenModError,
)
from repro.sac.meter import Meter
from repro.sac.modifiable import UNWRITTEN, Modifiable
from repro.sac.order import Order, Stamp
from repro.sac.trace import MemoEntry, ReadEdge

#: bit 0 of every reverse-reachability summary bitset: "feeds a
#: ``dest=None`` edge", i.e. conservatively feeds everything.  Demand
#: roots own the higher bits (see ``Modifiable.root_bit``).
UNIV = 1


def _values_equal(a: Any, b: Any) -> bool:
    """Conservative value equality used to suppress no-op writes.

    A write may be suppressed only when the new value is observationally
    identical to the old one, and Python's ``==`` is too coarse for that:
    ``True == 1 == 1.0`` and ``0.0 == -0.0`` conflate observably different
    values.  Equality here is therefore *type-sensitive*.  Two NaNs of the
    same type count as equal (a reader that observed NaN recomputes the
    same results from a fresh NaN, so cutting off is consistent).
    Modifiables compare by identity; tuples and constructor values compare
    structurally under the same rules.  Returning False for incomparable
    values is always sound (it only causes extra propagation).

    Hash-consed constructor values (see :mod:`repro.sac.intern`) make the
    common cases O(1): identical canonical instances hit the leading
    identity test, and two *distinct* canonical instances are unequal by
    construction (the intern key discriminates exactly the distinctions
    made here), so no structural walk is needed either way.  The walk
    itself is iterative -- an explicit pair stack instead of recursion -- so
    a cutoff check on a 10k-deep constructor chain cannot overflow the
    interpreter stack.
    """
    if a is b:
        return True
    stack = [(a, b)]
    pop = stack.pop
    while stack:
        a, b = pop()
        if a is b:
            continue
        ta = type(a)
        if ta is not type(b):
            return False
        if ta is float:
            if a == b:
                if a == 0.0 and math.copysign(1.0, a) != math.copysign(1.0, b):
                    return False
                continue
            if a != a and b != b:  # NaN == NaN for cutoff purposes
                continue
            return False
        if ta is tuple:
            if len(a) != len(b):
                return False
            stack.extend(zip(a, b))
            continue
        tag = getattr(a, "tag", None)
        if tag is not None and hasattr(a, "arg"):
            # Constructor values, duck-typed so the runtime does not import
            # the interpreter layer: same tag, argument equal under these
            # rules.
            if tag != b.tag:
                return False
            if getattr(a, "_hc", False) and getattr(b, "_hc", False):
                # Both canonical but not identical: unequal by construction.
                return False
            stack.append((a.arg, b.arg))
            continue
        try:
            if a == b:
                continue
        except Exception:
            return False
        return False
    return True


class _DemandStaleRead(Exception):
    """Internal control flow for demand drains (never user-visible).

    A demand pass defers dirty reads outside the demanded cone, so a
    re-executed reader can reach a modifiable whose pending feeders were
    set aside -- a *stale* one.  Reading it anyway is hazardous: with
    ``keyed_mod`` identity recycling the stale structure can be *cyclic*,
    and a reader following the loop recurses to the interpreter limit
    instead of converging through re-dirtying.  :meth:`Engine.read`
    raises this when a suspect modifiable with no current reader path to
    the demand target is about to be read (and, as a backstop, when any
    modifiable is re-entered :data:`Engine.CYCLE_READ_DEPTH` reads deep);
    the drain undoes the partial re-execution transactionally, widens the
    relevance set so the stale feeders run first, and retries in
    timestamp order -- degrading to a full propagation if hazards exceed
    :data:`Engine.DEMAND_HAZARD_CAP`.
    """

    def __init__(self, mod: "Modifiable") -> None:
        self.mod = mod


class Engine:
    """One self-adjusting computation: a trace plus a change queue.

    An Engine owns a timestamp order, a priority queue of dirty read edges,
    memo tables, and instrumentation counters.  All primitives are methods,
    so independent computations (e.g. a benchmark and its verifier) never
    interfere.
    """

    #: Self-adjusting programs nest reader closures deeply (one level per
    #: list cell); CPython 3.11+ keeps pure-Python frames on the heap, so a
    #: high recursion limit is safe.  Override with the
    #: ``REPRO_RECURSION_LIMIT`` environment variable (deeper inputs need
    #: more; a :class:`RecursionReexecutionError` names the variable when
    #: the limit is hit anyway).
    RECURSION_LIMIT = 600_000

    #: bounds on the trace-record free-lists (see ``_edge_pool`` /
    #: ``_memo_pool`` in ``__init__``).
    EDGE_POOL_CAP = 8192
    MEMO_POOL_CAP = 8192

    #: how many reads deep the *same* modifiable may be re-entered during
    #: a demand drain before the engine concludes the reader is chasing
    #: stale cyclic structure and unwinds it (see
    #: :class:`_DemandStaleRead`).  Honest programs recurse through a
    #: *different* cell per read, so any small value works; 8 keeps a
    #: false positive implausible.
    CYCLE_READ_DEPTH = 8
    #: how many stale-read hazards one demand drain may unwind before it
    #: stops trusting relevance filtering and degrades to a full
    #: propagation (each unwind rebuilds a cone from scratch, so past
    #: this point the full pass is the cheaper sound option).
    DEMAND_HAZARD_CAP = 32

    def __init__(
        self,
        *,
        mode: str = "eager",
        feeds: Optional[str] = None,
        feeds_oracle: Optional[bool] = None,
    ) -> None:
        import os
        import sys

        if mode not in ("eager", "lazy"):
            raise ValueError(f'mode must be "eager" or "lazy", got {mode!r}')
        #: propagation mode.  ``"eager"`` (default): ``propagate`` drains
        #: the whole dirty queue.  ``"lazy"``: edits additionally mark the
        #: *suspect* cone (writer -> dependent reads -> enclosing mod
        #: destinations) so :meth:`demand` can re-execute only the dirty
        #: subgraph feeding one demanded output; a full ``propagate``
        #: still works and clears every suspect bit.
        self.mode = mode
        self.lazy = mode == "lazy"
        #: how lazy demand decides relevance (``"summary"``: maintained
        #: reverse-reachability bitsets, O(1) amortized per queue entry;
        #: ``"dfs"``: the retired per-demand memoized DFS, kept as the
        #: benchmark baseline and a fallback).  Selected per engine or via
        #: the ``REPRO_FEEDS`` environment variable; irrelevant to eager
        #: engines.
        if feeds is None:
            feeds = os.environ.get("REPRO_FEEDS") or "summary"
        if feeds not in ("summary", "dfs"):
            raise ValueError(f'feeds must be "summary" or "dfs", got {feeds!r}')
        self.feeds_impl = feeds
        #: differential debug oracle: every summary relevance verdict
        #: recomputes reachability from scratch and raises
        #: :class:`FeedsOracleError` on divergence.  ``REPRO_FEEDS_ORACLE=1``
        #: turns it on for chaos sweeps.
        if feeds_oracle is None:
            feeds_oracle = os.environ.get(
                "REPRO_FEEDS_ORACLE", ""
            ).lower() in ("1", "true", "yes", "on")
        self.feeds_oracle = bool(feeds_oracle)
        self._feeds_summary = self.lazy and feeds == "summary"
        #: union of the summary bitsets of every live dirty queue entry's
        #: destination (``UNIV`` for ``dest=None`` entries): the set of
        #: demand roots that pending work can still reach.  Maintained
        #: incrementally on dirty transitions (exact at rest, a sound
        #: over-approximation mid-drain) and reconciled against the queue
        #: at every drain exit.  A registered target whose root bit is
        #: absent here is provably clean -- that is the O(1) demand fast
        #: path.
        self._dirty_roots = 0
        #: whether ``_dirty_roots`` is currently exact (it is always a
        #: sound over-approximation; rewiring through *invalid* summaries
        #: can hide growth, in which case this flips False and relevance
        #: stops trusting "provably clean" until the next reconciliation).
        self._dirty_roots_exact = True
        self._next_root_bit = UNIV << 1
        #: edge-death invalidations queued while a summary demand drain is
        #: running (see :meth:`_note_edge_death`); flushed at drain exit.
        self._deferred_deaths: List[Modifiable] = []
        #: non-None exactly while a summary-impl demand drain runs: the
        #: drained targets' root bits ``| UNIV``, the mask a destination's
        #: summary is tested against for relevance.
        self._drain_mask: Optional[int] = None
        limit = self.RECURSION_LIMIT
        env_limit = os.environ.get("REPRO_RECURSION_LIMIT")
        if env_limit:
            limit = int(env_limit)
        self.recursion_limit = limit
        if sys.getrecursionlimit() < limit:
            sys.setrecursionlimit(limit)
        self.alloc_table: dict = {}
        self.order = Order()
        self.now: Stamp = self.order.base
        #: bound once: ``insert_after`` is the single hottest engine call.
        self._insert_after = self.order.insert_after
        #: propagation heap of ``(key, tiebreak, edge)`` entries.  Keys are
        #: snapshots of ``edge.start.key`` so heap sifts compare plain ints;
        #: when the order's epoch moves (a relabel changed some keys) the
        #: whole heap is re-keyed at once (see :meth:`_rekey_queue`).
        self.queue: List[Tuple[int, int, ReadEdge]] = []
        self._queue_epoch = self.order.epoch
        self._queue_seq = 0
        self._queue_peak = 0
        #: free-lists recycling discarded trace records (allocator churn is
        #: measurable during compaction-heavy propagation).  Recycling is
        #: disabled while an observability hook is attached: hooks name
        #: records by identity, which reuse would alias.
        self._edge_pool: List[ReadEdge] = []
        self._memo_pool: List[MemoEntry] = []
        self.edges_reused = 0
        self.memo_entries_reused = 0
        self.memo_table: dict = {}
        self.reuse_limit: Optional[Stamp] = None
        self.meter = Meter()
        self._mod_depth = 0
        self._reexec_depth = 0
        #: stack of enclosing ``mod`` destinations; the top is recorded on
        #: every read edge as its ``dest`` (the DDG node the read feeds).
        #: Maintained unconditionally -- it is two list operations per mod
        #: -- so a session can be switched to lazy inspection tooling
        #: without re-running, and so eager and lazy traces stay identical.
        self._dest_stack: List[Optional[Modifiable]] = []
        #: lazy mode: every modifiable whose suspect bit is currently set
        #: (for bulk clearing after a full propagation).
        self._suspect_mods: set = set()
        #: set on the first *in-run* imperative write (``:=``).  Imperative
        #: writes can reach modifiables outside their reader's destination
        #: cone, which demand's relevance filter cannot see before the
        #: reader runs; once one is observed, :meth:`demand` degrades to a
        #: full propagation (still correct, no longer lazy).
        self._has_imperative = False
        #: non-None exactly while a demand drain is re-executing: the
        #: the active demand drain's relevance memo (None outside demand
        #: drains), consulted by :meth:`read` to refuse reads of
        #: possibly-stale modifiables (see :class:`_DemandStaleRead`).
        self._drain_feeds: Optional[dict] = None
        #: generation for negative relevance verdicts (see :meth:`_feeds`);
        #: starts at 2 so a stored generation can never equal ``True``.
        self._drain_gen = 2
        #: id -> nesting count of modifiables currently being read inside
        #: the demand drain (cycle backstop).
        self._demand_reads: dict = {}
        self._demand_degrade = False
        self.propagating = False
        #: open ``batch()`` scopes; while positive, edits accumulate in the
        #: dirty queue and propagation runs once at the outermost exit.
        self._batch_depth = 0
        self._batch_changes = 0
        #: dead memo entries still occupying table buckets; when this
        #: outgrows the live population, :meth:`compact` sweeps the tables.
        self._dead_memo_entries = 0
        #: poisoning reason, or None while the engine is healthy.  Set when
        #: failure cleanup could not restore a consistent trace; every
        #: public operation then raises :class:`EnginePoisonedError`.
        self._poison: Optional[str] = None
        #: journal of ``(mod, old_value)`` pairs for every effective input
        #: edit staged since the last *complete* propagation; consumed by
        #: :meth:`rollback` to restore the last-good state after a failed
        #: propagation.
        self._edit_log: List[Tuple[Modifiable, Any]] = []
        self._journal_enabled = True
        #: floor before automatic compaction is considered at all (small
        #: computations never pay a sweep).
        self.compact_threshold = 64
        #: Optional observability hook (see :mod:`repro.obs.events`).  When
        #: None -- the default -- every emission site costs one attribute
        #: check, keeping the hot path fast.
        self.hook: Optional[Any] = None

    def attach_hook(self, hook: Any) -> None:
        """Install an observability hook (a ``repro.obs.events.TraceHook``).

        The hook receives structured engine events (mod-create,
        read-start/end, write, memo-hit/miss, splice, discard,
        propagate-begin/end, ...).  Pass ``None`` to detach.  To install
        several hooks at once, wrap them in a
        :class:`repro.obs.events.FanoutHook`.
        """
        self.hook = hook
        if hook is not None:
            hook.on_attach(self)

    # ------------------------------------------------------------------
    # Failure model: poisoning and recovery (see DESIGN.md Section 7)

    @property
    def poisoned(self) -> bool:
        """Whether the engine has been poisoned (see :meth:`poison`)."""
        return self._poison is not None

    def poison(self, reason: str) -> None:
        """Mark the engine unusable: the trace can no longer be trusted.

        Called by the engine itself when failure cleanup cannot restore a
        consistent trace (and available to hosts that detect external
        corruption).  Afterwards every public operation raises
        :class:`EnginePoisonedError`; the only way forward is a rebuild on
        a fresh engine (``Session.propagate(on_error="rebuild")``).
        """
        if self._poison is None:
            self._poison = reason
            if self.hook is not None:
                try:
                    self.hook.on_poison(reason)
                except Exception:  # the hook must not mask the poisoning
                    pass

    def _check_usable(self) -> None:
        if self._poison is not None:
            raise EnginePoisonedError(
                f"engine is poisoned and refuses further work: {self._poison}",
                reason=self._poison,
            )

    def truncate_after(self, checkpoint: Stamp) -> bool:
        """Delete all trace after ``checkpoint`` and restore the cursor.

        The recovery primitive behind transactional initial runs: take
        ``checkpoint = engine.now`` before running new computation; if the
        run raises, ``truncate_after(checkpoint)`` retracts everything the
        partial run recorded, leaving the engine exactly as it was.
        Returns True when the cleanup succeeded; on an internal failure the
        engine poisons itself and returns False (never raises, so callers
        can re-raise the run's original exception).
        """
        try:
            self._delete_range(checkpoint, None)
            self.now = checkpoint
            self.meter.run_aborts += 1
            return True
        except BaseException as exc:  # cleanup itself failed: poison
            self.poison(
                f"trace truncation after a failed run raised {exc!r}"
            )
            return False

    # ------------------------------------------------------------------
    # Dirty queue

    def _enqueue(self, edge: ReadEdge) -> None:
        """Push a (just-dirtied) edge onto the propagation heap.

        Heap entries snapshot the start stamp's packed key.  Snapshots
        taken at different order epochs are not mutually comparable, so a
        pending epoch change re-keys the existing entries *before* the
        push -- afterwards every entry in the heap agrees with the current
        epoch again.
        """
        if self.order.epoch != self._queue_epoch:
            self._rekey_queue()
        seq = self._queue_seq + 1
        self._queue_seq = seq
        self.meter.queue_pushes += 1
        queue = self.queue
        heapq.heappush(queue, (edge.start.key, seq, edge))
        if len(queue) > self._queue_peak:
            self._queue_peak = len(queue)

    def _rekey_queue(self) -> None:
        """Rebuild every heap entry's key snapshot after a relabel.

        Dead entries are kept (their stale keys still form a total order,
        and dropping them here would skew the drain accounting); they are
        skipped and recycled when popped, as usual.
        """
        queue = self.queue
        for i, (_key, seq, edge) in enumerate(queue):
            queue[i] = (edge.start.key, seq, edge)
        heapq.heapify(queue)
        self._queue_epoch = self.order.epoch
        self.meter.queue_rekeys += 1

    # ------------------------------------------------------------------
    # Persistence hooks (see ``repro.persist``)

    def snapshot_precondition(self) -> None:
        """Raise unless the engine is in a serializable (quiescent) state.

        Quiescent means: no propagation, re-execution, batch, or ``mod``
        scope in flight, and not poisoned.  Staged-but-unpropagated edits
        (a non-empty dirty queue, suspect bits, the rollback journal) are
        fine -- lazy sessions live in that state -- because the queue and
        journal round-trip through the snapshot.
        """
        from repro.persist.errors import SnapshotStateError

        if self._poison is not None:
            raise SnapshotStateError(f"engine is poisoned: {self._poison}")
        if (
            self.propagating
            or self._batch_depth
            or self._mod_depth
            or self._reexec_depth
            or self._dest_stack
            or self.reuse_limit is not None
        ):
            raise SnapshotStateError(
                "snapshot requires a quiescent engine (no propagation, "
                "batch, or mod scope in flight)"
            )

    def queue_pop_order(self) -> List[ReadEdge]:
        """The propagation heap's edges in pop order (for serialization).

        Re-keys first if a relabel is pending so every entry agrees with
        the current epoch; the resulting ``(key, seq)`` pairs are then
        totally ordered and sorting them yields exactly the order
        :meth:`propagate` would pop.
        """
        if self.order.epoch != self._queue_epoch:
            self._rekey_queue()
        return [edge for _key, _seq, edge in sorted(self.queue, key=lambda t: t[:2])]

    def install_queue(self, edges: Sequence[ReadEdge]) -> None:
        """Rebuild the propagation heap from ``edges`` in pop order.

        Restore-side dual of :meth:`queue_pop_order`.  Fresh ``(key, seq)``
        snapshots are assigned against the *current* stamp keys: relative
        stamp order survives a restore even though the packed integers do
        not, and monotone keys with strictly increasing sequence numbers
        make the sorted list a valid heap as-is.  Dead edges (discarded
        while queued, kept for drain accounting) get a keyed tombstone
        stamp clamped to the preceding live key, preserving their pop
        position.  No meters move: the serialized meter already counted
        these pushes on the live engine.
        """
        from repro.persist.codec import _dead_stamp

        entries: List[Tuple[int, int, ReadEdge]] = []
        last_key = 0
        for seq, edge in enumerate(edges, start=1):
            if edge.dead:
                if edge.start is None:
                    edge.start = _dead_stamp(last_key, 0)
                key = edge.start.key
            else:
                key = edge.start.key
                last_key = key
            entries.append((key, seq, edge))
        self.queue = entries
        self._queue_seq = len(entries)
        self._queue_peak = max(self._queue_peak, len(entries))
        self._queue_epoch = self.order.epoch

    # ------------------------------------------------------------------
    # Trace construction primitives

    def _advance(self) -> Stamp:
        stamp = self._insert_after(self.now)
        self.now = stamp
        return stamp

    def make_input(self, value: Any) -> Modifiable:
        """Create an input modifiable holding ``value``.

        Inputs are created outside the traced computation; change them with
        :meth:`change` and then call :meth:`propagate`.
        """
        self._check_usable()
        self.meter.mods_created += 1
        mod = Modifiable(value)
        if self.hook is not None:
            self.hook.on_mod_create(mod, True, False)
        return mod

    def mod(self, comp: Callable[[Modifiable], None]) -> Modifiable:
        """Run changeable computation ``comp`` into a fresh modifiable.

        ``comp`` receives the destination and must finish with a
        :meth:`write` to it (possibly inside nested reads).

        An *outermost* ``mod`` (no enclosing mod and not inside change
        propagation) is transactional: if ``comp`` raises, the partial
        trace it recorded is truncated back to the pre-call checkpoint
        before the exception propagates, so a failed initial run leaves
        the engine exactly as it was.  Failures inside propagation are
        handled by :meth:`propagate`'s transactional re-execution instead.
        """
        if self._poison is not None:
            self._check_usable()
        dest = Modifiable()
        self.meter.mods_created += 1
        if self.hook is not None:
            self.hook.on_mod_create(dest, False, False)
        dest_stack = self._dest_stack
        if self._mod_depth == 0 and self._reexec_depth == 0:
            checkpoint = self.now
            self._mod_depth += 1
            dest_stack.append(dest)
            try:
                comp(dest)
                if dest.value is UNWRITTEN:
                    raise UnwrittenModError("mod body finished without writing")
            except BaseException:
                self.truncate_after(checkpoint)
                raise
            finally:
                self._mod_depth -= 1
                dest_stack.pop()
        else:
            # Nested / propagation-time mods are the hot case: no
            # transaction checkpoint (propagate() owns recovery there).
            self._mod_depth += 1
            dest_stack.append(dest)
            try:
                comp(dest)
                if dest.value is UNWRITTEN:
                    raise UnwrittenModError("mod body finished without writing")
            finally:
                self._mod_depth -= 1
                dest_stack.pop()
        return dest

    def read(self, mod: Modifiable, reader: Callable[[Any], None]) -> None:
        """Record a dependency on ``mod`` and run ``reader`` on its value.

        ``reader`` is changeable code: it will be re-executed (with the new
        value) whenever ``mod`` changes.
        """
        if self._mod_depth == 0 and self._reexec_depth == 0:
            raise ReadOutsideModError("read outside the scope of any mod")
        value = mod.value
        if value is UNWRITTEN:
            raise UnwrittenModError("read of an unwritten modifiable")
        drain_feeds = self._drain_feeds
        if drain_feeds is not None:
            # Demand-drain hazard checks (see :class:`_DemandStaleRead`).
            # A suspect modifiable outside the demand's relevance cone may
            # be arbitrarily stale -- and stale structure can be *cyclic*
            # (keyed_mod identity recycling), in which case following it
            # diverges rather than converging through re-dirtying.  Refuse
            # the read and let the drain widen the cone so the feeders run
            # first.  The depth count is the backstop for a reader that
            # slipped past the refusal and is chasing a loop anyway.
            if self._drain_mask is not None:
                if self._suspectish(mod) and not self._dest_relevant(
                    mod, drain_feeds
                ):
                    raise _DemandStaleRead(mod)
            elif mod.suspect and not self._feeds(mod, drain_feeds):
                raise _DemandStaleRead(mod)
            if self._demand_reads.get(id(mod), 0) >= self.CYCLE_READ_DEPTH:
                raise _DemandStaleRead(mod)
        # Hottest engine primitive: _advance() is inlined and the meter is
        # fetched once (two stamps + two counters per read add up).
        insert_after = self._insert_after
        start = self.now = insert_after(self.now)
        dest_stack = self._dest_stack
        dest = dest_stack[-1] if dest_stack else None
        pool = self._edge_pool
        if pool:
            edge = pool.pop()
            edge.mod = mod
            edge.reader = reader
            edge.start = start
            edge.end = None
            edge.dest = dest
            edge.dirty = False
            edge.dead = False
            self.edges_reused += 1
        else:
            edge = ReadEdge(mod, reader, start, dest)
        start.owner = edge
        mod.readers.add(edge)
        if self._feeds_summary:
            self._note_new_edge(edge)
        meter = self.meter
        meter.reads_executed += 1
        meter.live_edges += 1
        hook = self.hook
        if hook is not None:
            hook.on_read_start(edge)
        if drain_feeds is None:
            reader(value)
        else:
            # Depth-count this read so the cycle backstop above can spot a
            # reader chasing its own tail through stale structure.  Every
            # mod is counted, not just suspect ones: a stale loop can pass
            # through recycled cells that sit on no dirty dest chain.
            reads = self._demand_reads
            rkey = id(mod)
            reads[rkey] = reads.get(rkey, 0) + 1
            try:
                reader(value)
            finally:
                depth = reads[rkey] - 1
                if depth:
                    reads[rkey] = depth
                else:
                    del reads[rkey]
        edge.end = self.now = insert_after(self.now)
        if hook is not None:
            hook.on_read_end(edge)

    def write(self, dest: Modifiable, value: Any) -> None:
        """Write ``value`` into destination ``dest``.

        During re-execution, a write of an equal value is a no-op, which is
        what stops change propagation from cascading further than needed.
        """
        self.meter.writes += 1
        if dest.value is not UNWRITTEN and _values_equal(dest.value, value):
            if self.hook is not None:
                self.hook.on_write(dest, value, False)
            return
        dest.value = value
        self.meter.changed_writes += 1
        if self.hook is not None:
            self.hook.on_write(dest, value, True)
        if dest.readers:
            self._dirty_readers(dest)

    def impwrite(self, dest: Modifiable, value: Any) -> None:
        """Imperative update (translation of ``:=``, paper Figure 4).

        Inside a run, later reads (start stamp after the current time)
        become dirty while earlier reads keep the value they legitimately
        observed.  Outside any run it is an input change: all readers
        become dirty.
        """
        self._check_usable()
        self.meter.writes += 1
        if dest.value is not UNWRITTEN and _values_equal(dest.value, value):
            if self.hook is not None:
                self.hook.on_impwrite(dest, value, False, 0)
            return
        inside_run = self._mod_depth > 0 or self._reexec_depth > 0
        if inside_run:
            # An in-run imperative write can reach modifiables outside its
            # reader's destination cone, which lazy demand's relevance
            # filter cannot anticipate; record it so :meth:`demand`
            # degrades to a full propagation from here on.
            self._has_imperative = True
        if (
            self._journal_enabled
            and not inside_run
            and dest.value is not UNWRITTEN
        ):
            # An imperative write outside any run is an input edit; journal
            # it so rollback can restore the last-good state.
            self._edit_log.append((dest, dest.value))
        dest.value = value
        self.meter.changed_writes += 1
        now_key = self.now.key
        lazy = self.lazy
        summary = self._feeds_summary
        dirtied = 0
        for edge in list(dest.readers):
            if edge.dead or edge.dirty:
                continue
            if not inside_run or edge.start.key > now_key:
                edge.dirty = True
                self._enqueue(edge)
                dirtied += 1
                if lazy:
                    self._mark_suspect(edge.dest)
                    if summary:
                        d = edge.dest
                        self._dirty_roots |= (
                            UNIV if d is None else self._bits(d)
                        )
        if self.hook is not None:
            self.hook.on_impwrite(dest, value, True, dirtied)

    def _dirty_readers(self, mod: Modifiable) -> int:
        dirtied = 0
        lazy = self.lazy
        summary = self._feeds_summary
        # Dirtying never mutates the reader set, so no defensive copy.
        for edge in mod.readers:
            if not edge.dead and not edge.dirty:
                edge.dirty = True
                self._enqueue(edge)
                dirtied += 1
                if lazy:
                    # Invariant: a dirty live edge's destination chain is
                    # suspect.  An already-dirty edge was marked when it
                    # became dirty, and demand recomputes suspicion from
                    # the still-queued edges when it completes, so marking
                    # on the clean->dirty transition suffices.
                    self._mark_suspect(edge.dest)
                    if summary:
                        # Keep the dirty-roots union exact at edit time:
                        # the demand fast path reads it before any drain
                        # runs, so a conservative UNIV here would cost a
                        # full drain on a provably clean target.
                        d = edge.dest
                        self._dirty_roots |= (
                            UNIV if d is None else self._bits(d)
                        )
        return dirtied

    def _mark_suspect(self, mod: Optional[Modifiable]) -> None:
        """Mark ``mod`` and everything downstream of it suspect (lazy mode).

        Follows reader edges to their enclosing destinations, stopping at
        already-marked nodes, so a burst of edits costs time proportional
        to the newly suspect region rather than edits x depth.
        """
        if mod is None or mod.suspect:
            return
        suspect_mods = self._suspect_mods
        meter = self.meter
        hook = self.hook
        stack = [mod]
        pop = stack.pop
        while stack:
            d = pop()
            if d.suspect:
                continue
            d.suspect = True
            suspect_mods.add(d)
            meter.suspect_marks += 1
            if hook is not None:
                hook.on_dirty_mark(d)
            for edge in d.readers:
                if not edge.dead:
                    dest = edge.dest
                    if dest is not None and not dest.suspect:
                        stack.append(dest)

    def _refresh_suspects(self) -> None:
        """Recompute the suspect set from the queue (after a demand pass).

        Suspicion is sound only while it covers the upward reader-closure
        of every dirty live edge's destination.  A demand pass cannot
        simply clear the destinations it proved to feed its target: a mod
        can feed the target *and* still have a second, deferred dirty
        feeder whose cone was irrelevant to this demand -- clearing it
        would let a later demand fast-path a stale value.  So on
        completion the suspect set is recomputed exactly: the closure of
        the dests still queued dirty.  (A ``None`` dest feeds everything,
        so it pins the whole current set.)
        """
        roots = []
        for _key, _seq, edge in self.queue:
            if edge.dead or not edge.dirty:
                continue
            if edge.dest is None:
                return  # feeds everything: no suspicion can clear
            roots.append(edge.dest)
        closure: dict = {}
        stack = roots
        pop = stack.pop
        while stack:
            d = pop()
            if id(d) in closure:
                continue
            closure[id(d)] = d
            for edge in d.readers:
                if not edge.dead:
                    dest = edge.dest
                    if dest is not None and id(dest) not in closure:
                        stack.append(dest)
        for d in self._suspect_mods:
            if id(d) not in closure:
                d.suspect = False
        kept = set(closure.values())
        for d in kept:
            # A re-execution may have built a fresh reader chain over a
            # deferred dirty dest; its mods were clean when marked-on-dirty
            # ran, so (re)assert the bit for the whole closure.
            d.suspect = True
        self._suspect_mods = kept

    # ------------------------------------------------------------------
    # Maintained reverse-reachability summaries (lazy feeds="summary")
    #
    # Each modifiable carries ``fsum``, an int bitset of the demand roots
    # its value can flow into through live reader edges (bit 0 = UNIV =
    # "feeds a dest=None edge, i.e. everything"), plus ``fsum_valid`` and
    # a lazily allocated reverse index ``in_edges`` (live edges whose
    # ``dest`` is this modifiable -- its feeders).  The core invariant is
    # *invalid-closed-upstream*: whenever a summary is invalid, the
    # summaries of everything feeding it are invalid too.  Invalidation
    # therefore walks upstream with stop-at-invalid (amortized O(1) per
    # edge death), growth walks upstream monotonically, and revalidation
    # recomputes a whole invalid region -- which is downstream-closed by
    # the same invariant -- in one fixpoint on first query.  The result:
    # the drain loop's per-entry relevance check is a bitmask test against
    # ``_drain_mask`` instead of the per-demand DFS that ``feeds="dfs"``
    # still runs.

    def _note_new_edge(self, edge: ReadEdge) -> None:
        """Summary maintenance for a just-registered reader edge.

        The new edge makes ``edge.mod`` feed ``edge.dest``: register the
        reverse index entry and grow the upstream summaries by whatever
        ``dest`` reaches that ``mod`` did not already.  When ``dest``'s
        own summary is invalid its reach is unknown, so ``mod``'s cone
        is invalidated instead (the recompute will see this edge).
        """
        m = edge.mod
        d = edge.dest
        if d is None:
            if m.fsum_valid and not m.fsum & UNIV:
                self._grow_upstream(m, UNIV)
                # A queued dirty dest upstream of m just gained UNIV; keep
                # the dirty-roots union a superset until reconciliation.
                self._dirty_roots |= UNIV
            return
        ie = d.in_edges
        if ie is None:
            d.in_edges = {edge}
        else:
            ie.add(edge)
        if d.fsum_valid:
            if m.fsum_valid:
                add = d.fsum & ~m.fsum
                if add:
                    self._grow_upstream(m, add)
                    # Every upstream dest's summary grew by a subset of
                    # ``add``: OR it in so _dirty_roots stays a superset
                    # of every queued dirty dest's summary mid-rewiring.
                    self._dirty_roots |= add
            else:
                # m invalid: everything upstream is invalid too
                # (invalid-closed-upstream), so the recompute covers this
                # edge -- but the growth it will reveal is invisible to
                # the dirty-roots union now.
                self._dirty_roots_exact = False
        else:
            # d's reach is unknown, so any growth through this edge is
            # unknowable until recomputation.
            self._dirty_roots_exact = False
            if m.fsum_valid:
                self._invalidate_upstream(m)

    def _note_edge_death(self, edge: ReadEdge) -> None:
        """Summary maintenance for an edge about to be discarded.

        Must run before the edge's ``mod``/``dest`` fields are cleared.
        Removing a ``mod -> dest`` flow can only shrink upstream
        summaries, so they are invalidated (lazily recomputed on next
        query).  Skipped when the edge provably contributed nothing:
        ``mod`` already invalid (upstream already invalid) or reaching
        nothing, or a valid ``dest`` reaching nothing -- which keeps
        initial-run splicing free of summary churn before any root
        exists.

        During a demand drain the invalidation is *deferred* to drain
        exit: relevance must be monotone non-shrinking within one drain.
        A re-execution can splice out the very edges that connected an
        as-yet-unpopped dirty entry to the demanded cone (the retry round
        will rebuild them); shrinking its verdict mid-drain would defer
        the entry past later relevant re-executions, and their readers
        would then consume values the entry was supposed to refresh
        first.  The retired DFS got this monotonicity for free from its
        never-retracted positive memo; the summaries get it by letting
        bits only grow until the drain is over.
        """
        d = edge.dest
        if d is not None:
            ie = d.in_edges
            if ie is not None:
                ie.discard(edge)
        m = edge.mod
        if m is not None and m.fsum_valid and m.fsum:
            if d is None or not d.fsum_valid or d.fsum:
                if self._drain_mask is not None:
                    self._deferred_deaths.append(m)
                else:
                    self._invalidate_upstream(m)

    def _grow_upstream(self, mod: Modifiable, add: int) -> None:
        """OR ``add`` into ``mod``'s summary and its valid upstream cone.

        Monotone: stops where the bits are already present (or at invalid
        nodes, whose summaries will be recomputed from scratch anyway and
        whose upstream is invalid too).  Because a demand root's bits only
        shrink through invalidation, growth never needs to revisit.
        """
        meter = self.meter
        stack = [(mod, add)]
        pop = stack.pop
        while stack:
            u, b = pop()
            if not u.fsum_valid:
                continue
            nb = b & ~u.fsum
            if not nb:
                continue
            u.fsum |= nb
            meter.feeds_updates += 1
            ie = u.in_edges
            if ie:
                for e in ie:
                    if not e.dead and e.mod is not None:
                        stack.append((e.mod, nb))

    def _invalidate_upstream(self, mod: Modifiable) -> None:
        """Invalidate ``mod``'s summary and everything feeding it.

        Stop-at-invalid keeps this amortized: a node is invalidated at
        most once per revalidation, and the invariant that invalid nodes
        have invalid upstream makes the early stop sound.
        """
        meter = self.meter
        stack = [mod]
        pop = stack.pop
        while stack:
            u = pop()
            if not u.fsum_valid:
                continue
            u.fsum_valid = False
            meter.feeds_updates += 1
            ie = u.in_edges
            if ie:
                for e in ie:
                    if not e.dead and e.mod is not None:
                        stack.append(e.mod)

    def _bits(self, mod: Modifiable) -> int:
        """Current summary bitset of ``mod``, recomputing if invalid."""
        if mod.fsum_valid:
            self.meter.feeds_hits += 1
            return mod.fsum
        self._recompute_region(mod)
        return mod.fsum

    def _recompute_region(self, start: Modifiable) -> None:
        """Revalidate the invalid region reachable downstream of ``start``.

        By invalid-closed-upstream, every path from ``start`` to another
        invalid node runs through invalid nodes only, so the region is
        discovered by following reader edges and stopping at valid nodes
        (the *frontier*, whose summaries are trusted as-is).  Each region
        node is seeded with its own root bit plus UNIV for ``dest=None``
        edges plus the frontier contributions, then an OR-fixpoint closes
        the region -- exact even on the cyclic stale structure that
        ``keyed_mod`` identity recycling can create.
        """
        region: List[Modifiable] = []
        seen = set()
        stack = [start]
        pop = stack.pop
        while stack:
            n = pop()
            i = id(n)
            if i in seen or n.fsum_valid:
                continue
            seen.add(i)
            region.append(n)
            for e in n.readers:
                if not e.dead:
                    d = e.dest
                    if d is not None and not d.fsum_valid and id(d) not in seen:
                        stack.append(d)
        for n in region:
            b = n.root_bit
            for e in n.readers:
                if e.dead:
                    continue
                d = e.dest
                if d is None:
                    b |= UNIV
                elif d.fsum_valid:
                    b |= d.fsum
            n.fsum = b
        changed = True
        while changed:
            changed = False
            # Discovery pushed downstream nodes later, so sweeping the
            # region in reverse moves bits a whole chain per pass instead
            # of one hop (deep chains would otherwise cost O(n^2)).
            for n in reversed(region):
                b = n.fsum
                for e in n.readers:
                    if e.dead:
                        continue
                    d = e.dest
                    if d is not None and not d.fsum_valid:
                        b |= d.fsum
                if b != n.fsum:
                    n.fsum = b
                    changed = True
        for n in region:
            n.fsum_valid = True
        self.meter.feeds_recomputes += len(region)

    def _register_root(self, t: Modifiable) -> None:
        """Make ``t`` a demand root: assign its bit and seed it upstream.

        The fresh bit is stamped into every *valid* summary upstream of
        ``t`` (stop-at-marked: the bit is new, so "already present" means
        "already visited").  Invalid nodes are skipped -- their upstream
        is invalid too, and recomputation derives the bit from
        ``t.root_bit`` directly.
        """
        bit = self._next_root_bit
        self._next_root_bit = bit << 1
        t.root_bit = bit
        meter = self.meter
        meter.feeds_roots += 1
        stack = [t]
        pop = stack.pop
        while stack:
            n = pop()
            if not n.fsum_valid or n.fsum & bit:
                continue
            n.fsum |= bit
            meter.feeds_updates += 1
            ie = n.in_edges
            if ie:
                for e in ie:
                    if not e.dead and e.mod is not None:
                        stack.append(e.mod)

    def _reconcile_dirty_roots(self) -> int:
        """Recompute ``_dirty_roots`` exactly from the live dirty queue.

        Runs at every drain exit (including budget/deadline/hazard exits):
        mid-drain rewiring keeps the incremental union a sound
        over-approximation, and this O(queue) scan restores exactness so
        the demand fast path and targeted suspect clearing can trust it.
        Returns the number of live dirty entries.
        """
        bits = 0
        ndirty = 0
        for _key, _seq, edge in self.queue:
            if edge.dead or not edge.dirty:
                continue
            ndirty += 1
            d = edge.dest
            bits |= UNIV if d is None else self._bits(d)
        self._dirty_roots = bits
        self._dirty_roots_exact = True
        return ndirty

    def _suspectish(self, mod: Modifiable) -> bool:
        """Whether ``mod`` may be stale (summary impl).

        The raw ``suspect`` flag is a sound over-approximation for
        unregistered modifiables, but a registered root's flag can be
        stale-False: a later edit's suspect-marking walk stops at
        still-flagged nodes, so a cleared root below them is not
        re-flagged.  ``_dirty_roots`` is authoritative for registered
        roots, so OR it in.
        """
        if mod.suspect:
            return True
        rb = mod.root_bit
        if not rb:
            return False
        if not self._dirty_roots_exact:
            # The union may be missing bits; do not trust a miss.
            return True
        return bool(self._dirty_roots & (rb | UNIV))

    def _dest_relevant(self, dest: Optional[Modifiable], feeds: dict) -> bool:
        """Summary-impl relevance: does ``dest`` feed a demanded target?

        O(1) amortized: a bitmask test against the drained targets' root
        bits (``_drain_mask``).  The overlay ``feeds`` dict holds the
        drain's *widened* positives (hazard unwinds, pre-scan widening);
        when non-empty, the legacy DFS runs over it so widening semantics
        are unchanged -- its verdict generations and round restarts
        operate on the overlay exactly as under ``feeds="dfs"``.
        """
        if dest is None:
            return True
        verdict = bool(self._bits(dest) & self._drain_mask)
        if not verdict and feeds:
            verdict = self._feeds(dest, feeds)
        if self.feeds_oracle:
            self._oracle_check(dest)
        return verdict

    def _reference_bits(self, start: Modifiable) -> int:
        """Exact summary recomputed from scratch (oracle only)."""
        b = start.root_bit
        seen = {id(start)}
        stack = [start]
        pop = stack.pop
        while stack:
            n = pop()
            for e in n.readers:
                if e.dead:
                    continue
                d = e.dest
                if d is None:
                    b |= UNIV
                elif id(d) not in seen:
                    seen.add(id(d))
                    b |= d.root_bit
                    stack.append(d)
        return b

    def _oracle_check(self, mod: Modifiable) -> None:
        """Assert ``mod``'s maintained summary matches the exact one.

        Mid-drain, edge-death invalidations are deferred for relevance
        monotonicity, so the maintained bits are allowed to be a superset
        of the exact reachability; at rest they must be equal.
        """
        got = self._bits(mod)
        ref = self._reference_bits(mod)
        if got != ref and (
            self._drain_mask is None or (got | ref) != got
        ):
            raise FeedsOracleError(
                f"maintained feeds summary diverged on {mod!r}: "
                f"maintained {got:#x}, exact {ref:#x} "
                f"(roots registered: {self.meter.feeds_roots})"
            )

    def _oracle_check_clean(self, t: Modifiable) -> None:
        """Assert the O(1) "provably clean" fast-path verdict for root ``t``:
        no live dirty queue entry's destination actually reaches it."""
        mask = t.root_bit | UNIV
        for _key, _seq, edge in self.queue:
            if edge.dead or not edge.dirty:
                continue
            d = edge.dest
            if d is None or self._reference_bits(d) & mask:
                raise FeedsOracleError(
                    f"demand fast path judged {t!r} clean, but dirty "
                    f"entry {edge!r} reaches it (dirty_roots "
                    f"{self._dirty_roots:#x}, root bit {t.root_bit:#x})"
                )

    def keyed_mod(self, key: Hashable, comp: Callable[[Modifiable], None]) -> Modifiable:
        """``mod`` with *keyed destination allocation* (AFL's "unsafe"
        low-level interface, paper Section 4.9).

        When a computation is re-executed, a plain ``mod`` allocates a fresh
        modifiable, so consumers holding the old one see an identity change
        even if the contents are equal.  ``keyed_mod`` recycles the
        modifiable previously allocated under ``key`` -- provided its old
        allocation site is dead or lies in the current reuse zone (i.e. is
        about to be discarded) -- so an equal re-write is a no-op and
        propagation cuts off.  This is what makes merge-based algorithms'
        output spines identity-stable (see ``repro.bench.handwritten``'s
        keyed msort).

        Unlike ``memo``, the computation always re-runs; only the
        *identity* is reused.  The caller must ensure keys are unique among
        simultaneously live allocations (e.g. include the element value and
        an instance identifier); when a live allocation outside the reuse
        zone already holds the key, a fresh modifiable is allocated instead,
        which is always sound.

        Like :meth:`mod`, an outermost ``keyed_mod`` is transactional: a
        raising ``comp`` truncates the partial trace (including this
        call's allocation stamp) back to the pre-call checkpoint.
        """
        self._check_usable()
        outermost = self._mod_depth == 0 and self._reexec_depth == 0
        checkpoint = self.now if outermost else None
        dest: Optional[Modifiable] = None
        entry = self.alloc_table.get(key)
        if entry is not None:
            old_mod, old_stamp, old_gen = entry
            # A generation mismatch means the recorded stamp died and was
            # recycled by the order's free-list for an unrelated position:
            # treat it exactly like a dead allocation site.
            if old_stamp.gen != old_gen or not old_stamp.live:
                dest = old_mod
            elif (
                self.reuse_limit is not None
                and self.now.key < old_stamp.key <= self.reuse_limit.key
            ):
                dest = old_mod  # doomed: lies in the current reuse zone
        recycled = dest is not None
        if dest is None:
            dest = Modifiable()
            self.meter.mods_created += 1
        if self.hook is not None:
            self.hook.on_mod_create(dest, False, recycled)
        stamp = self._advance()
        self.alloc_table[key] = (dest, stamp, stamp.gen)
        self._mod_depth += 1
        self._dest_stack.append(dest)
        try:
            comp(dest)
            if dest.value is UNWRITTEN:
                raise UnwrittenModError("keyed_mod body finished without writing")
        except BaseException:
            if outermost:
                self.truncate_after(checkpoint)
            raise
        finally:
            self._mod_depth -= 1
            self._dest_stack.pop()
        return dest

    # ------------------------------------------------------------------
    # Memoization

    def memo(self, key: Hashable, thunk: Callable[[], Any]) -> Any:
        """Memoized evaluation of ``thunk`` under ``key``.

        On a *hit* (a live entry for ``key`` whose interval lies inside the
        current reuse zone) the old sub-trace is spliced in and the stored
        result returned without recomputation.  Otherwise ``thunk`` runs and
        its interval and result are recorded.
        """
        self._check_usable()
        entries = self.memo_table.get(key)
        if entries is not None:
            hit: Optional[MemoEntry] = None
            limit = self.reuse_limit
            dead = 0
            if limit is not None:
                now_key = self.now.key
                limit_key = limit.key
                for entry in entries:
                    if entry.dead:
                        dead += 1
                    elif (
                        hit is None
                        and now_key < entry.start.key
                        and entry.end is not None
                        and entry.end.key <= limit_key
                    ):
                        hit = entry
            else:
                for entry in entries:
                    if entry.dead:
                        dead += 1
            if dead:
                # Lazy per-key pruning: dead entries leave the bucket here,
                # so they must also leave the dead-entry account that
                # drives whole-table compaction.
                live = [e for e in entries if not e.dead]
                self._dead_memo_entries -= dead
                if live:
                    self.memo_table[key] = live
                else:
                    del self.memo_table[key]
                if self.hook is None:
                    pool = self._memo_pool
                    cap = self.MEMO_POOL_CAP
                    for entry in entries:
                        if entry.dead and len(pool) < cap:
                            entry.key = None
                            entry.start = None
                            entry.end = None
                            pool.append(entry)
            if hit is not None:
                # Splice: discard the skipped old trace, jump past the hit.
                if self.hook is not None:
                    self.hook.on_memo_hit(hit)
                self._delete_range(self.now, hit.start)
                self.now = hit.end
                self.meter.memo_hits += 1
                if self.hook is not None:
                    self.hook.on_splice(hit)
                return hit.result
        self.meter.memo_misses += 1
        if self.hook is not None:
            self.hook.on_memo_miss(key)
        start = self.now = self._insert_after(self.now)
        pool = self._memo_pool
        if pool:
            entry = pool.pop()
            entry.key = key
            entry.result = None
            entry.start = start
            entry.end = None
            entry.dead = False
            self.memo_entries_reused += 1
        else:
            entry = MemoEntry(key, start)
        start.owner = entry
        self.meter.live_memo_entries += 1
        result = thunk()
        entry.end = self.now = self._insert_after(self.now)
        entry.result = result
        self.memo_table.setdefault(key, []).append(entry)
        return result

    # ------------------------------------------------------------------
    # Split primitives (stack-machine backend)
    #
    # ``mod``/``read``/``memo`` above run their body synchronously: the
    # engine calls back into the backend (``comp``/``reader``/``thunk``)
    # and stamps the interval end after the callback returns, so every
    # traced nesting level costs a live Python frame.  The stack-machine
    # backend (:mod:`repro.compile.stackmachine`) replaces that host
    # recursion with an explicit control stack, which requires the same
    # protocols split into begin/end/abort halves it can interleave with
    # its own dispatch.  Each half below mirrors its recursive original
    # line for line -- same stamps in the same order, same meter
    # increments, same hook emissions, same pooling, same demand-hazard
    # checks -- and the differential grid in
    # ``tests/test_backends_differential.py`` holds them to meter-exact
    # equality.  When editing ``mod``/``read``/``memo``, edit these too.

    def read_begin(
        self, mod: Modifiable, reader: Callable[[Any], None]
    ) -> Tuple[ReadEdge, Any]:
        """First half of :meth:`read`: register the edge, return its value.

        Performs everything :meth:`read` does up to (but excluding) the
        ``reader(value)`` callback: hazard checks, start stamp, edge
        allocation and registration, meters, hooks, and the demand-drain
        depth count.  The caller must execute the reader body itself and
        finish with :meth:`read_end` (success) or :meth:`read_abort`
        (exception unwinding).
        """
        if self._mod_depth == 0 and self._reexec_depth == 0:
            raise ReadOutsideModError("read outside the scope of any mod")
        value = mod.value
        if value is UNWRITTEN:
            raise UnwrittenModError("read of an unwritten modifiable")
        drain_feeds = self._drain_feeds
        if drain_feeds is not None:
            if self._drain_mask is not None:
                if self._suspectish(mod) and not self._dest_relevant(
                    mod, drain_feeds
                ):
                    raise _DemandStaleRead(mod)
            elif mod.suspect and not self._feeds(mod, drain_feeds):
                raise _DemandStaleRead(mod)
            if self._demand_reads.get(id(mod), 0) >= self.CYCLE_READ_DEPTH:
                raise _DemandStaleRead(mod)
        start = self.now = self._insert_after(self.now)
        dest_stack = self._dest_stack
        dest = dest_stack[-1] if dest_stack else None
        pool = self._edge_pool
        if pool:
            edge = pool.pop()
            edge.mod = mod
            edge.reader = reader
            edge.start = start
            edge.end = None
            edge.dest = dest
            edge.dirty = False
            edge.dead = False
            self.edges_reused += 1
        else:
            edge = ReadEdge(mod, reader, start, dest)
        start.owner = edge
        mod.readers.add(edge)
        if self._feeds_summary:
            self._note_new_edge(edge)
        meter = self.meter
        meter.reads_executed += 1
        meter.live_edges += 1
        if self.hook is not None:
            self.hook.on_read_start(edge)
        if drain_feeds is not None:
            reads = self._demand_reads
            rkey = id(mod)
            reads[rkey] = reads.get(rkey, 0) + 1
        return edge, value

    def read_end(self, edge: ReadEdge) -> None:
        """Second half of :meth:`read`: the reader body completed normally."""
        if self._drain_feeds is not None:
            reads = self._demand_reads
            rkey = id(edge.mod)
            depth = reads[rkey] - 1
            if depth:
                reads[rkey] = depth
            else:
                del reads[rkey]
        edge.end = self.now = self._insert_after(self.now)
        if self.hook is not None:
            self.hook.on_read_end(edge)

    def read_abort(self, edge: ReadEdge) -> None:
        """Unwind half of :meth:`read`: the reader body raised.

        Mirrors the recursive ``read``'s ``finally`` when the reader
        raises: only the demand-drain depth count is released -- no end
        stamp, no hook.  Trace surgery is owned by the enclosing
        transaction (outermost :meth:`mod` truncation or
        ``_unwind_reexec``), exactly as for the recursive backends.
        """
        if self._drain_feeds is not None:
            reads = self._demand_reads
            rkey = id(edge.mod)
            depth = reads.get(rkey, 0) - 1
            if depth > 0:
                reads[rkey] = depth
            elif depth == 0:
                del reads[rkey]

    def mod_begin(self) -> Tuple[Modifiable, Optional[Stamp]]:
        """First half of :meth:`mod`: allocate the destination.

        Returns ``(dest, checkpoint)``; ``checkpoint`` is non-None exactly
        when this is an *outermost* mod (no enclosing mod, not inside
        propagation), in which case the caller must pass it back to
        :meth:`mod_abort` so a failed body truncates the partial trace.
        """
        if self._poison is not None:
            self._check_usable()
        dest = Modifiable()
        self.meter.mods_created += 1
        if self.hook is not None:
            self.hook.on_mod_create(dest, False, False)
        checkpoint = (
            self.now
            if self._mod_depth == 0 and self._reexec_depth == 0
            else None
        )
        self._mod_depth += 1
        self._dest_stack.append(dest)
        return dest, checkpoint

    def mod_end(
        self, dest: Modifiable, checkpoint: Optional[Stamp]
    ) -> None:
        """Second half of :meth:`mod`: the body completed normally."""
        if dest.value is UNWRITTEN:
            # Same order as the recursive original: the outermost
            # transaction truncates (``except``) before the depth/dest
            # bookkeeping unwinds (``finally``).
            if checkpoint is not None:
                self.truncate_after(checkpoint)
            self._mod_depth -= 1
            self._dest_stack.pop()
            raise UnwrittenModError("mod body finished without writing")
        self._mod_depth -= 1
        self._dest_stack.pop()

    def mod_abort(
        self, dest: Modifiable, checkpoint: Optional[Stamp]
    ) -> None:
        """Unwind half of :meth:`mod`: the body raised."""
        if checkpoint is not None:
            self.truncate_after(checkpoint)
        self._mod_depth -= 1
        self._dest_stack.pop()

    def memo_probe(
        self, key: Hashable
    ) -> Tuple[bool, Any, Optional[MemoEntry]]:
        """First half of :meth:`memo`: look up ``key``, splice on a hit.

        Returns ``(True, result, None)`` on a hit (the old sub-trace is
        already spliced in) or ``(False, None, entry)`` on a miss, in
        which case the caller must run the thunk body and finish with
        :meth:`memo_commit`.  If the body raises, no cleanup call is
        needed: the entry's open interval is reclaimed by the enclosing
        transaction's truncation, as in the recursive original.
        """
        self._check_usable()
        entries = self.memo_table.get(key)
        if entries is not None:
            hit: Optional[MemoEntry] = None
            limit = self.reuse_limit
            dead = 0
            if limit is not None:
                now_key = self.now.key
                limit_key = limit.key
                for entry in entries:
                    if entry.dead:
                        dead += 1
                    elif (
                        hit is None
                        and now_key < entry.start.key
                        and entry.end is not None
                        and entry.end.key <= limit_key
                    ):
                        hit = entry
            else:
                for entry in entries:
                    if entry.dead:
                        dead += 1
            if dead:
                live = [e for e in entries if not e.dead]
                self._dead_memo_entries -= dead
                if live:
                    self.memo_table[key] = live
                else:
                    del self.memo_table[key]
                if self.hook is None:
                    pool = self._memo_pool
                    cap = self.MEMO_POOL_CAP
                    for entry in entries:
                        if entry.dead and len(pool) < cap:
                            entry.key = None
                            entry.start = None
                            entry.end = None
                            pool.append(entry)
            if hit is not None:
                if self.hook is not None:
                    self.hook.on_memo_hit(hit)
                self._delete_range(self.now, hit.start)
                self.now = hit.end
                self.meter.memo_hits += 1
                if self.hook is not None:
                    self.hook.on_splice(hit)
                return True, hit.result, None
        self.meter.memo_misses += 1
        if self.hook is not None:
            self.hook.on_memo_miss(key)
        start = self.now = self._insert_after(self.now)
        pool = self._memo_pool
        if pool:
            entry = pool.pop()
            entry.key = key
            entry.result = None
            entry.start = start
            entry.end = None
            entry.dead = False
            self.memo_entries_reused += 1
        else:
            entry = MemoEntry(key, start)
        start.owner = entry
        self.meter.live_memo_entries += 1
        return False, None, entry

    def memo_commit(self, entry: MemoEntry, result: Any) -> None:
        """Second half of :meth:`memo`: record the thunk's result."""
        entry.end = self.now = self._insert_after(self.now)
        entry.result = result
        self.memo_table.setdefault(entry.key, []).append(entry)

    # ------------------------------------------------------------------
    # Changes and propagation

    def change(self, mod: Modifiable, value: Any) -> int:
        """Change an input modifiable (between propagations).

        Returns the number of read edges the change dirtied (0 when the new
        value equals the old one and the edit cuts off immediately).  This
        is the uniform return convention of every edit entry point
        (``Session.edit`` and the ``ModList`` handles): stage the change,
        report the dirtied reads, and leave propagation to an explicit
        :meth:`propagate` call or an enclosing :meth:`batch`.

        Every effective edit is journaled until the next complete
        propagation, so :meth:`rollback` can restore the last-good input
        state after a failed propagation.
        """
        self._check_usable()
        if _values_equal(mod.value, value):
            if self.hook is not None:
                self.hook.on_change(mod, value, False)
            return 0
        if self._journal_enabled:
            self._edit_log.append((mod, mod.value))
        mod.value = value
        if self._batch_depth:
            self._batch_changes += 1
        if self.hook is not None:
            self.hook.on_change(mod, value, True)
        return self._dirty_readers(mod)

    def batch(self, *, budget: Optional[int] = None,
              deadline: Optional[float] = None) -> "Batch":
        """Open a batched-edit scope: many changes, one propagation pass.

        Usage::

            with engine.batch() as b:
                engine.change(m1, 5)
                engine.change(m2, 7)
            b.reexecuted  # reads re-executed by the single pass

        Inside the scope, edits only accumulate dirty reads; the outermost
        exit runs one :meth:`propagate`.  A read that observed several of
        the changed inputs therefore re-executes *once*, where separate
        change/propagate cycles would re-execute it once per edit -- this
        per-read deduplication is where batched propagation wins
        asymptotically on overlapping edits (see
        ``benchmarks/bench_batch_propagate.py``).

        Nested ``batch()`` scopes coalesce into the outermost one.  If the
        body raises, nothing is propagated (the dirty queue keeps the edits
        staged, so a later ``propagate`` still applies them).  ``budget``
        and ``deadline`` are forwarded to the closing :meth:`propagate`.

        On a lazy engine (``mode="lazy"``) the scope stages its edits
        without a closing propagation -- the drain is deferred to the next
        :meth:`demand` / :meth:`propagate`, where any budget/deadline
        applies.  ``b.reexecuted`` is then 0 by construction.
        """
        return Batch(self, budget=budget, deadline=deadline)

    def change_many(
        self,
        changes: Iterable[Tuple[Modifiable, Any]],
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Apply ``(mod, value)`` edits and propagate once; return the
        number of reads re-executed by the single coalesced pass."""
        with self.batch(budget=budget, deadline=deadline) as b:
            for mod, value in changes:
                self.change(mod, value)
        return b.reexecuted

    def propagate(
        self,
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Run change propagation to completion.

        Returns the number of read edges re-executed.  After propagation the
        outputs of the computation are up to date with all changes made via
        :meth:`change` / :meth:`impwrite`.

        ``budget`` caps the number of read re-executions and ``deadline``
        the wall-clock seconds this call may spend; when either limit is
        reached with real work still queued, the call stops *between*
        re-executions and raises :class:`PropagationBudgetExceeded`.  The
        trace stays consistent and the remaining dirty reads stay queued,
        so a later ``propagate`` resumes where this one stopped.  The
        limits guard long-lived instances against pathological edit
        sequences that would otherwise propagate for unbounded time.

        Re-execution is *transactional*: if a reader raises, the engine
        splices the edge's whole interval back out (the partially rebuilt
        new trace together with the not-yet-reused old trace), restores
        the cursor, re-queues the edge as dirty, and raises a
        :class:`ReexecutionError` (a :class:`RecursionReexecutionError`
        for stack overflows) wrapping the original exception.  The trace
        stays structurally consistent -- retry, :meth:`rollback`, or
        rebuild -- unless the abort cleanup itself fails, in which case
        the engine poisons itself (``consistent=False`` on the error) and
        refuses further work with :class:`EnginePoisonedError`.
        """
        self._check_usable()
        if self._batch_depth:
            raise PropagationError("propagate called inside an open batch()")
        if self.propagating:
            raise PropagationError("propagate is not reentrant")
        self.propagating = True
        hook = self.hook
        if hook is not None:
            hook.on_propagate_begin(len(self.queue))
        try:
            reexecuted = self._drain(budget, deadline, False, None)
        except BaseException:
            # Mid-drain rewiring can outgrow the incremental dirty-roots
            # union; restore exactness before handing control back with
            # work still queued.
            if self._feeds_summary:
                self._reconcile_dirty_roots()
            raise
        finally:
            self.propagating = False
        # A complete pass leaves the outputs consistent with all inputs:
        # this is the new last-good state, so the rollback journal resets
        # and (in lazy mode) every suspect bit clears.
        self._edit_log = []
        self._dirty_roots = 0
        self._dirty_roots_exact = True
        if self._suspect_mods:
            for d in self._suspect_mods:
                d.suspect = False
            self._suspect_mods.clear()
        if hook is not None:
            hook.on_propagate_end(reexecuted)
        if self._compaction_due():
            self.compact()
        return reexecuted

    def demand(
        self,
        mod: Union[Modifiable, Sequence[Modifiable]],
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Any:
        """Bring modifiable(s) up to date and return the value(s) (lazy mode).

        The demand-driven half of ``mode="lazy"``: re-executes, in
        timestamp order, exactly the dirty reads whose enclosing
        destination chain feeds the demanded target(s); everything else
        stays dirty (its cone suspect) for a later demand or
        :meth:`propagate`.  A modifiable whose suspect bit is clear is
        served with zero propagation work -- that is the
        many-edits-few-reads win.

        ``mod`` may be a single :class:`Modifiable` (returns its value) or
        a sequence of them (returns a list of values, in order).  A
        multi-target demand drains all targets in *one*
        reachability-filtered pass: the relevance cone is seeded with
        every target, so shared feeders re-execute once instead of once
        per target and one timestamp sweep serves the whole read batch.

        ``budget`` / ``deadline`` behave as in :meth:`propagate`: on
        overrun the call raises :class:`PropagationBudgetExceeded` between
        re-executions, with all remaining work still queued *and every
        suspect bit still set*, so an interrupted demand can never cause a
        later one to serve a stale value.

        Programs that performed in-run imperative writes (``:=``) degrade
        to a full :meth:`propagate`: an imperative write can reach
        modifiables outside its reader's destination cone, which the
        relevance filter cannot see before the reader runs.  This keeps
        demand sound for the full language; the pure fragment (every
        registered benchmark app) gets the real demand-driven walk.
        """
        self._check_usable()
        if not self.lazy:
            raise PropagationError(
                'demand requires an engine in lazy mode (Engine(mode="lazy"))'
            )
        if self._batch_depth:
            raise PropagationError("demand called inside an open batch()")
        if self.propagating:
            raise PropagationError("demand is not reentrant with propagation")
        single = isinstance(mod, Modifiable)
        targets: Tuple[Modifiable, ...] = (mod,) if single else tuple(mod)
        if not targets:
            raise PropagationError("demand of an empty target sequence")
        for t in targets:
            if not isinstance(t, Modifiable):
                raise TypeError(
                    f"demand target must be a Modifiable, got {type(t).__name__}"
                )
            if t.value is UNWRITTEN:
                raise UnwrittenModError("demand of an unwritten modifiable")
        meter = self.meter
        meter.demands += len(targets)
        if self._has_imperative:
            self.propagate(budget=budget, deadline=deadline)
            if single:
                return targets[0].value
            return [t.value for t in targets]
        hook = self.hook
        if self._feeds_summary:
            if not self._dirty_roots_exact:
                # Rewiring outside a drain (e.g. keyed_mod recycling in a
                # fresh run) can leave the union inexact; the fast path
                # below needs exactness.
                self._reconcile_dirty_roots()
            suspect = []
            dr = self._dirty_roots
            for t in targets:
                rb = t.root_bit
                if rb:
                    # Registered root: the maintained dirty-roots union is
                    # authoritative -- O(1), exact at rest -- where the raw
                    # flag can linger True (sibling cones) or go
                    # stale-False (cleared root below a still-flagged
                    # node stops a later marking walk early).
                    if dr & (rb | UNIV):
                        if not t.suspect:
                            t.suspect = True
                            self._suspect_mods.add(t)
                        suspect.append(t)
                    else:
                        if self.feeds_oracle:
                            self._oracle_check_clean(t)
                        if t.suspect:
                            t.suspect = False
                            self._suspect_mods.discard(t)
                elif t.suspect:
                    suspect.append(t)
        else:
            suspect = [t for t in targets if t.suspect]
        meter.demands_clean += len(targets) - len(suspect)
        if not suspect:
            if hook is not None:
                for t in targets:
                    hook.on_demand_begin(t, len(self.queue))
                    hook.on_demand_end(t, 0)
            if single:
                return targets[0].value
            return [t.value for t in targets]
        self.propagating = True
        if hook is not None:
            for t in targets:
                hook.on_demand_begin(t, len(self.queue))
        started = None if deadline is None else time.monotonic()
        if self._feeds_summary:
            # Relevance is the drained targets' root bits (| UNIV) tested
            # against maintained summaries; ``feeds`` starts empty and
            # only ever holds widened positives (hazards, pre-scans).
            fresh = [t for t in suspect if not t.root_bit]
            for t in fresh:
                self._register_root(t)
            if fresh:
                # Queued dirty dests may now carry the new bits.
                self._reconcile_dirty_roots()
            mask = UNIV
            for t in suspect:
                mask |= t.root_bit
            self._drain_mask = mask
            feeds: dict = {}
        else:
            # Every target seeds the relevance memo positively, so the
            # drain's _feeds checks treat "reaches any target" as relevant.
            feeds = {t: True for t in targets}
        try:
            reexecuted = self._drain(budget, deadline, True, feeds)
        except BaseException:
            # Budget/deadline/hazard exits leave work queued; restore the
            # exact dirty-roots union before handing back (the stash was
            # merged back by _drain's finally).
            if self._feeds_summary:
                self._reconcile_dirty_roots()
            raise
        finally:
            self.propagating = False
        if self._demand_degrade:
            # A cycle hazard fired (see _DemandStaleRead): relevance
            # filtering cannot finish this demand soundly, so fall back to
            # one full pass under whatever budget/deadline remains.
            self._demand_degrade = False
            left_b = None if budget is None else max(budget - reexecuted, 0)
            left_d = (
                None
                if deadline is None
                else max(deadline - (time.monotonic() - started), 0.0)
            )
            reexecuted += self.propagate(budget=left_b, deadline=left_d)
        # Suspicion cannot be cleared from the relevance verdicts: a mod
        # can feed the target *and* retain a second, deferred dirty
        # feeder.  The summary impl reconciles the dirty-roots union and
        # clears exactly what it proves clean (every drained target whose
        # root bit no pending work reaches; everything, when nothing is
        # dirty); raw flags elsewhere stay as a sound over-approximation
        # that later root-bit checks refine.  The dfs impl recomputes the
        # suspect set exactly from what is still queued, as before.
        if self._feeds_summary:
            ndirty = self._reconcile_dirty_roots()
            if ndirty == 0:
                if self._suspect_mods:
                    for d in self._suspect_mods:
                        d.suspect = False
                    self._suspect_mods.clear()
            else:
                dr = self._dirty_roots
                if not dr & UNIV:
                    for t in suspect:
                        rb = t.root_bit
                        if rb and not dr & rb and t.suspect:
                            t.suspect = False
                            self._suspect_mods.discard(t)
        else:
            self._refresh_suspects()
        if not self.queue:
            # Nothing dirty anywhere, so this demand was in fact a
            # complete pass: the new last-good state, and the rollback
            # journal resets exactly as after a full propagation.
            self._edit_log = []
        if hook is not None:
            for t in targets:
                hook.on_demand_end(t, reexecuted)
        if self._compaction_due():
            self.compact()
        if single:
            return targets[0].value
        return [t.value for t in targets]

    def _drain(
        self,
        budget: Optional[int],
        deadline: Optional[float],
        demanding: bool,
        feeds: Optional[dict],
    ) -> int:
        """The propagation loop shared by :meth:`propagate` and
        :meth:`demand`.

        Pops dirty edges in timestamp order and re-executes them
        transactionally.  With ``demanding`` set (a demand pass, the
        targets seeded positively in ``feeds``), entries whose destination
        chain does not currently feed a target are set aside
        instead of re-executed.  Because a re-execution can rewire the
        trace -- a branch flip creating a fresh read of a previously
        irrelevant (and stale) modifiable -- the pass runs in *rounds*:
        when the queue exhausts with re-executions having happened since
        the last round, the set-aside entries are pushed back and the
        cached negative reachability verdicts dropped, so every survivor
        is re-tested against the final trace (positive verdicts can only
        become conservative, so they are kept).  The fixpoint -- a round
        that re-executes nothing -- leaves only genuinely irrelevant
        entries deferred.  The caller owns ``self.propagating`` and the
        begin/end hook events.
        """
        hook = self.hook
        deadline_at = None if deadline is None else time.monotonic() + deadline
        meter = self.meter
        order = self.order
        queue = self.queue
        dest_stack = self._dest_stack
        reexecuted = 0
        prev_round = 0
        hazards = 0
        summary = self._drain_mask is not None
        stash: List[Tuple[int, int, ReadEdge]] = []
        if demanding:
            self._drain_feeds = feeds
            self._demand_reads = {}
        try:
            while True:
                if not queue:
                    if not demanding or not stash or reexecuted == prev_round:
                        break
                    # End of a round with re-executions behind it: they
                    # may have rewired the trace so that a set-aside
                    # edge now feeds the target.  Push the stash back,
                    # drop the stale negative verdicts, and re-test;
                    # stop at the fixpoint round that defers everything.
                    prev_round = reexecuted
                    self._restash(stash)
                    self._drain_gen += 1
                    continue
                # Re-executed readers insert stamps, which can relabel; a
                # pending epoch change invalidates every key snapshot in
                # the heap, so re-key before trusting the heap order.
                if order.epoch != self._queue_epoch:
                    self._rekey_queue()
                entry_key, entry_seq, edge = heapq.heappop(queue)
                if edge.dead or not edge.dirty:
                    meter.queue_drained += 1
                    if (
                        edge.dead
                        and hook is None
                        and len(self._edge_pool) < self.EDGE_POOL_CAP
                    ):
                        # A discarded edge leaves the queue for good here;
                        # recycle it (discard already dropped mod/reader).
                        edge.start = None
                        edge.end = None
                        self._edge_pool.append(edge)
                    continue
                if demanding and not (
                    self._dest_relevant(edge.dest, feeds)
                    if summary
                    else self._feeds(edge.dest, feeds)
                ):
                    # Dirty but not feeding the demanded output: set the
                    # entry aside, still dirty, still suspect upstream.
                    stash.append((entry_key, entry_seq, edge))
                    meter.demand_deferred += 1
                    continue
                if budget is not None and reexecuted >= budget:
                    heapq.heappush(queue, (entry_key, entry_seq, edge))
                    raise PropagationBudgetExceeded(
                        f"propagation budget of {budget} re-execution(s) "
                        f"exhausted with {len(queue) + len(stash)} queue "
                        f"entries left",
                        reexecuted=reexecuted,
                        pending=len(queue) + len(stash),
                    )
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    heapq.heappush(queue, (entry_key, entry_seq, edge))
                    raise PropagationBudgetExceeded(
                        f"propagation deadline of {deadline:g}s exceeded "
                        f"with {len(queue) + len(stash)} queue entries left",
                        reexecuted=reexecuted,
                        pending=len(queue) + len(stash),
                    )
                meter.queue_drained += 1
                assert edge.end is not None
                if demanding:
                    # Pre-scan the edge's old interval for suspect
                    # modifiables outside the relevance cone.  The reader
                    # consumed them last time, so it will very likely read
                    # them again; widening the cone up front lets their
                    # feeders (earlier timestamps) run first, so the
                    # re-execution sees fresh values instead of reading
                    # stale ones that must then be fixed up by an extra
                    # re-dirty round -- and instead of ever entering stale
                    # cyclic structure, which would trip the
                    # _DemandStaleRead backstop and throw the whole
                    # partial re-execution away.
                    widened = False
                    node = edge.start.next
                    interval_end = edge.end
                    while node is not None and node is not interval_end:
                        owner = node.owner
                        if (
                            type(owner) is ReadEdge
                            and not owner.dead
                            and owner.mod is not None
                            and feeds.get(owner.mod) is not True
                            and (
                                (
                                    self._suspectish(owner.mod)
                                    and not self._dest_relevant(
                                        owner.mod, feeds
                                    )
                                )
                                if summary
                                else (
                                    owner.mod.suspect
                                    and not self._feeds(owner.mod, feeds)
                                )
                            )
                        ):
                            feeds[owner.mod] = True
                            widened = True
                        node = node.next
                    if widened:
                        self._drain_gen += 1
                        if stash:
                            self._restash(stash)
                        heapq.heappush(queue, (entry_key, entry_seq, edge))
                        continue
                edge.dirty = False
                if hook is not None:
                    hook.on_reexec(edge)
                saved_now, saved_limit = self.now, self.reuse_limit
                self.now = edge.start
                self.reuse_limit = edge.end
                self._reexec_depth += 1
                dest_stack.append(edge.dest)
                try:
                    try:
                        edge.reader(edge.mod.value)
                    finally:
                        self._reexec_depth -= 1
                        dest_stack.pop()
                    # Discard whatever old trace was neither re-created
                    # nor spliced.  Inside the protected region: skipping
                    # this splice-out would silently corrupt the DDG, so a
                    # failure here must go through the same abort path.
                    self._delete_range(self.now, edge.end)
                except BaseException as exc:
                    if isinstance(exc, _DemandStaleRead):
                        # The reader is chasing a stale loop.  Widen the
                        # cone to the looping modifiable and to every
                        # suspect modifiable the not-yet-consumed rest of
                        # the old interval still names (the retry will
                        # read them again), unwind transactionally, and
                        # retry with the feeders scheduled first.  Each
                        # hazard grows the monotone positive set, so this
                        # terminates; if hazards keep firing anyway, give
                        # up on relevance filtering and finish as a full
                        # propagation.
                        meter.demand_hazards += 1
                        hazards += 1
                        feeds[exc.mod] = True
                        node = self.now.next
                        while node is not None and node is not edge.end:
                            owner = node.owner
                            if (
                                type(owner) is ReadEdge
                                and not owner.dead
                                and owner.mod is not None
                                and (
                                    self._suspectish(owner.mod)
                                    if summary
                                    else owner.mod.suspect
                                )
                            ):
                                feeds[owner.mod] = True
                            node = node.next
                        if not self._unwind_reexec(
                            edge, exc, saved_now, saved_limit,
                            keep_remainder=True,
                        ):
                            self._check_usable()  # poisoned: raises
                        if hazards > self.DEMAND_HAZARD_CAP:
                            self._demand_degrade = True
                            break
                        self._drain_gen += 1
                        self._restash(stash)
                        continue
                    wrapped = self._abort_reexec(
                        edge, exc, saved_now, saved_limit, reexecuted
                    )
                    if wrapped is None:
                        raise  # KeyboardInterrupt & co: cleaned up, re-raise
                    raise wrapped from exc
                self.now, self.reuse_limit = saved_now, saved_limit
                reexecuted += 1
                meter.edges_reexecuted += 1
        finally:
            if demanding:
                self._drain_feeds = None
                self._drain_mask = None
                self._demand_reads = {}
                if self._deferred_deaths:
                    # Apply the edge deaths withheld for drain-local
                    # monotonicity; summaries shrink back to exact before
                    # anything outside the drain trusts them.
                    for m in self._deferred_deaths:
                        if m.fsum_valid and m.fsum:
                            self._invalidate_upstream(m)
                    self._deferred_deaths.clear()
            if stash:
                self._restash(stash)
        return reexecuted

    def _restash(self, stash: List[Tuple[int, int, ReadEdge]]) -> None:
        """Push set-aside demand entries back onto the dirty queue.

        Keys are re-snapshotted (a re-execution in between may have
        relabelled stamps); original tiebreaks are kept so equal keys
        still pop in their dirtying order.
        """
        if self.order.epoch != self._queue_epoch:
            self._rekey_queue()
        queue = self.queue
        for _key, seq, edge in stash:
            heapq.heappush(queue, (edge.start.key, seq, edge))
        if len(queue) > self._queue_peak:
            self._queue_peak = len(queue)
        stash.clear()

    def _feeds(self, start: Optional[Modifiable], memo: dict) -> bool:
        """Whether ``start``'s value can flow into any demanded target
        through the current trace, following reader edges to their
        enclosing destinations.

        The demand targets themselves are seeded ``True`` in ``memo``, so
        "reaches a target" is simply "reaches a positive verdict"; one
        memo serves single- and multi-target demands alike.
        ``None`` (a read with no recorded destination) is conservatively
        treated as feeding everything.  ``memo`` caches verdicts for one
        demand pass; the search is bounded by the suspect region, because
        edit-time marking walked the same reader->destination relation.

        Positive verdicts are ``True`` and permanent (a re-execution can
        only make them conservative).  Negative verdicts are stored as
        the drain generation (``self._drain_gen``) they were computed in:
        bumping the generation -- after a round restart, a widening, or a
        hazard unwind rewires relevance -- invalidates every negative at
        once without sweeping the memo.
        """
        if start is None:
            return True
        gen = self._drain_gen
        cached = memo.get(start)
        if cached is not None:
            if cached is True:
                return True
            if cached == gen:
                return False
        # Iterative memoized DFS.  ``path`` holds the open frames; every
        # frame reaches the node under exploration, so one hit marks the
        # whole path True at once.
        meter = self.meter
        meter.feeds_dfs_visits += 1
        path: List[Tuple[Modifiable, Any]] = [(start, iter(start.readers))]
        on_path = {start}
        while path:
            node, readers = path[-1]
            advanced = False
            for edge in readers:
                if edge.dead:
                    continue
                dest = edge.dest
                if dest is None or memo.get(dest) is True:
                    for frame, _readers in path:
                        memo[frame] = True
                    return True
                cached = memo.get(dest)
                if (
                    (cached is None or (cached is not True and cached != gen))
                    and dest not in on_path
                ):
                    meter.feeds_dfs_visits += 1
                    path.append((dest, iter(dest.readers)))
                    on_path.add(dest)
                    advanced = True
                    break
            if not advanced:
                memo[node] = gen
                on_path.discard(node)
                path.pop()
        return False

    def _unwind_reexec(
        self,
        edge: ReadEdge,
        exc: BaseException,
        saved_now: Stamp,
        saved_limit: Optional[Stamp],
        keep_remainder: bool = False,
    ) -> bool:
        """Splice out one interrupted re-execution and restage it.

        The partial new trace goes, the cursor and reuse zone are
        restored, and the edge is re-queued dirty so the undone work
        stays staged.  By default the unreused old trace goes too (a
        *failed* reader may have corrupted anything it touched);
        ``keep_remainder`` preserves it for a stale-read hazard unwind --
        the reader itself was fine, only scheduled too early, so the
        retry can keep memo-splicing the untouched rest of its old
        sub-trace instead of rebuilding the whole cone from scratch.
        Returns True on success; on a cleanup failure the engine is
        poisoned and False returned.
        """
        try:
            if keep_remainder:
                # Everything from the interval start through the cursor is
                # partial new trace (with the reused splices it swallowed);
                # self.now.next starts the well-formed old remainder.
                self._delete_range(edge.start, self.now.next)
            else:
                self._delete_range(edge.start, edge.end)
            self.now, self.reuse_limit = saved_now, saved_limit
            if not edge.dead and not edge.dirty:
                edge.dirty = True
                self._enqueue(edge)
                if self._feeds_summary:
                    # Cleanup path: no recomputation here (it must not
                    # raise).  A conservative UNIV for an invalid summary
                    # is sound; the next drain exit reconciles exactly.
                    d = edge.dest
                    self._dirty_roots |= (
                        UNIV if d is None or not d.fsum_valid else d.fsum
                    )
            return True
        except BaseException as cleanup_exc:
            self.poison(
                f"abort cleanup after a failed re-execution raised "
                f"{cleanup_exc!r} (original reader error: {exc!r})"
            )
            return False

    def _abort_reexec(
        self,
        edge: ReadEdge,
        exc: BaseException,
        saved_now: Stamp,
        saved_limit: Optional[Stamp],
        reexecuted: int,
    ) -> Optional[ReexecutionError]:
        """Transactional abort of one failed re-execution.

        :meth:`_unwind_reexec` does the splice-out and restaging; this
        wrapper owns the abort accounting and constructs the typed
        :class:`ReexecutionError` to raise -- None when ``exc`` is not an
        :class:`Exception` (KeyboardInterrupt and friends): those are
        cleaned up after but re-raised unchanged.
        """
        self.meter.reexec_aborts += 1
        consistent = self._unwind_reexec(edge, exc, saved_now, saved_limit)
        if self.hook is not None:
            self.hook.on_reexec_abort(edge, exc, consistent)
        if not isinstance(exc, Exception):
            return None
        pending = len(self.queue)
        if isinstance(exc, RecursionError):
            return RecursionReexecutionError(
                f"re-execution of {edge!r} overflowed the interpreter "
                f"stack; the interp/compiled backends nest one Python "
                f"frame per traced cell, so deep inputs need the "
                f'recursion-free backend="stack", a recursion limit above '
                f"the current {self.recursion_limit} (set "
                f"REPRO_RECURSION_LIMIT), or a smaller input",
                edge=edge,
                original=exc,
                consistent=consistent,
                reexecuted=reexecuted,
                pending=pending,
            )
        verdict = (
            "the stale interval was spliced out and the edge re-queued"
            if consistent
            else "abort cleanup failed and the engine is now poisoned"
        )
        return ReexecutionError(
            f"re-execution of {edge!r} raised "
            f"{type(exc).__name__}: {exc}; {verdict}",
            edge=edge,
            original=exc,
            consistent=consistent,
            reexecuted=reexecuted,
            pending=pending,
        )

    def rollback(self) -> Tuple[int, int, int]:
        """Recover from a failed propagation by restoring the last-good
        state, then re-staging the edits.

        Uses the journal of input edits staged since the last complete
        propagation: each edited modifiable is restored to its last-good
        value (in reverse edit order) and a recovery propagation re-runs
        every affected read -- including the re-queued failing edge, now
        with its old input again -- bringing the outputs back to the state
        before the edits.  The edits are then re-applied, *staged but not
        propagated*, so the host can fix the environment and propagate
        again (or inspect/abandon the edits).

        Returns ``(undone, recovery_reexecuted, restaged)``: journal
        entries undone, reads re-executed by the recovery propagation, and
        edits re-staged (one per touched modifiable whose edited value
        differs from its last-good value).  If the recovery propagation
        itself fails, the last-good state is unreachable and the engine
        poisons itself before re-raising.
        """
        self._check_usable()
        if self.propagating:
            raise PropagationError("rollback called during propagation")
        if self._batch_depth:
            raise PropagationError("rollback called inside an open batch()")
        journal = self._edit_log
        self._edit_log = []
        # Redo plan: the current (edited) value of each touched modifiable,
        # in first-edit order, captured before the undo overwrites them.
        redo = []
        seen = set()
        for mod, _old in journal:
            if id(mod) not in seen:
                seen.add(id(mod))
                redo.append((mod, mod.value))
        self.meter.rollbacks += 1
        self._journal_enabled = False
        try:
            for mod, old in reversed(journal):
                self.change(mod, old)
            try:
                recovery_reexecuted = self.propagate()
            except SacError as exc:
                self.poison(f"rollback recovery propagation failed: {exc!r}")
                raise
        finally:
            self._journal_enabled = True
        restaged = 0
        for mod, new in redo:
            if not _values_equal(mod.value, new):
                self.change(mod, new)
                restaged += 1
        if self.hook is not None:
            self.hook.on_rollback(len(journal), recovery_reexecuted, restaged)
        return len(journal), recovery_reexecuted, restaged

    # ------------------------------------------------------------------
    # Trace compaction

    def _compaction_due(self) -> bool:
        """Whether dead table residue justifies a sweep.

        Amortized O(1) per discard: a sweep costs O(table size) and only
        runs once the dead population exceeds both a fixed floor and the
        live population, so total sweep work is proportional to total
        discard work.
        """
        dead = self._dead_memo_entries
        return dead > self.compact_threshold and dead > self.meter.live_memo_entries

    def compact(self) -> dict:
        """Sweep dead residue out of the memo and allocation tables.

        Trace *records* are already freed eagerly when their interval is
        spliced out (:meth:`_delete_range` retracts them and drops their
        closures/results), but the table buckets that index them are only
        pruned lazily on key lookup -- a long-lived instance whose memo keys
        never recur (value-dependent keys after an input edit) would grow
        its tables without bound.  Compaction removes dead memo entries,
        empty buckets, and allocation-table entries whose site was
        discarded.  Dropping a dead allocation entry is always sound; the
        only cost is that a *later* re-allocation under the same key gets a
        fresh modifiable instead of recycling the old identity.

        Runs automatically after a propagation once the dead population
        outgrows the live one (see :meth:`_compaction_due`); idempotent and
        cheap to call explicitly.  Returns ``{"memo": ..., "alloc": ...}``
        counts of removed entries.
        """
        self._check_usable()
        memo_removed = 0
        if self._dead_memo_entries:
            pool = self._memo_pool if self.hook is None else None
            cap = self.MEMO_POOL_CAP
            for key in list(self.memo_table):
                entries = self.memo_table[key]
                live = [e for e in entries if not e.dead]
                if len(live) == len(entries):
                    continue
                memo_removed += len(entries) - len(live)
                if pool is not None:
                    for entry in entries:
                        if entry.dead and len(pool) < cap:
                            entry.key = None
                            entry.start = None
                            entry.end = None
                            pool.append(entry)
                if live:
                    self.memo_table[key] = live
                else:
                    del self.memo_table[key]
            self._dead_memo_entries = 0
        alloc_removed = 0
        stale = [
            k
            for k, (_, stamp, gen) in self.alloc_table.items()
            if not stamp.live or stamp.gen != gen
        ]
        for key in stale:
            del self.alloc_table[key]
            alloc_removed += 1
        meter = self.meter
        meter.compactions += 1
        meter.memo_entries_compacted += memo_removed
        meter.alloc_entries_compacted += alloc_removed
        if self.hook is not None:
            self.hook.on_trace_compact(memo_removed, alloc_removed)
        return {"memo": memo_removed, "alloc": alloc_removed}

    def table_residency(self) -> dict:
        """Entry counts of the auxiliary tables, dead residue included.

        ``trace_size`` counts only the *live* trace; this reports what the
        tables actually hold, which is what compaction bounds.
        """
        return {
            "memo_entries": sum(len(v) for v in self.memo_table.values()),
            "memo_buckets": len(self.memo_table),
            "dead_memo_entries": self._dead_memo_entries,
            "alloc_entries": len(self.alloc_table),
        }

    def hot_stats(self) -> dict:
        """Hot-path data-structure statistics (profiling harness surface).

        Groups the order-maintenance, dirty-queue, and free-list counters
        that ``python -m repro profile`` reports next to the per-phase
        meter numbers.
        """
        meter = self.meter
        return {
            "order": self.order.stats(),
            "queue": {
                "size": len(self.queue),
                "peak": self._queue_peak,
                "pushes": meter.queue_pushes,
                "rekeys": meter.queue_rekeys,
                "drained": meter.queue_drained,
            },
            "pools": {
                "edges_reused": self.edges_reused,
                "edges_pooled": len(self._edge_pool),
                "memo_entries_reused": self.memo_entries_reused,
                "memo_entries_pooled": len(self._memo_pool),
            },
            "feeds": {
                "impl": self.feeds_impl if self.lazy else "n/a",
                "roots": meter.feeds_roots,
                "dirty_root_bits": bin(self._dirty_roots).count("1"),
                "hits": meter.feeds_hits,
                "updates": meter.feeds_updates,
                "recomputes": meter.feeds_recomputes,
                "demands": meter.demands,
                "demands_clean": meter.demands_clean,
                "deferred": meter.demand_deferred,
                "hazards": meter.demand_hazards,
            },
        }

    # ------------------------------------------------------------------
    # Trace deletion

    def _delete_range(self, a: Stamp, b: Optional[Stamp]) -> None:
        """Delete stamps strictly between ``a`` and ``b``, retracting owners.

        Owners are discarded in a first pass (discard never touches the
        order), then the whole chain is unlinked with one bulk
        :meth:`~repro.sac.order.Order.delete_range` splice.
        """
        node = a.next
        if node is None or node is b:
            return
        hook = self.hook
        if hook is None:
            # Inlined ReadEdge.discard / MemoEntry.discard bodies: this
            # walk retracts every record of a re-executed read's old
            # sub-trace, so the per-record method call is measurable.
            meter = self.meter
            edge_pool = self._edge_pool
            edge_cap = self.EDGE_POOL_CAP
            feeds_summary = self._feeds_summary
            while node is not None and node is not b:
                owner = node.owner
                if owner is not None:
                    if type(owner) is ReadEdge:
                        owner.dead = True
                        if feeds_summary:
                            self._note_edge_death(owner)
                        owner.mod.readers.discard(owner)
                        owner.mod = None
                        owner.reader = None
                        owner.dest = None
                        meter.live_edges -= 1
                        if not owner.dirty and len(edge_pool) < edge_cap:
                            owner.start = None
                            owner.end = None
                            edge_pool.append(owner)
                    else:
                        owner.dead = True
                        owner.result = None
                        meter.live_memo_entries -= 1
                        self._dead_memo_entries += 1
                    node.owner = None
                node = node.next
        else:
            while node is not None and node is not b:
                owner = node.owner
                if owner is not None:
                    owner.discard(self)
                    node.owner = None
                    hook.on_discard(owner)
                node = node.next
        self.order.delete_range(a, b)

    # ------------------------------------------------------------------
    # Convenience combinators (AFL-style library surface)

    def read2(
        self,
        m1: Modifiable,
        m2: Modifiable,
        reader: Callable[[Any, Any], None],
    ) -> None:
        """Read two modifiables and run ``reader`` on both values."""
        self.read(m1, lambda v1: self.read(m2, lambda v2: reader(v1, v2)))

    def read_list(
        self, mods: Sequence[Modifiable], reader: Callable[[list], None]
    ) -> None:
        """Read a sequence of modifiables, then run ``reader`` on the values."""

        def go(index: int, acc: list) -> None:
            if index == len(mods):
                reader(acc)
            else:
                self.read(mods[index], lambda v: go(index + 1, acc + [v]))

        go(0, [])

    def lift(self, func: Callable, *mods: Modifiable) -> Modifiable:
        """Apply a pure function to modifiable arguments, yielding a new one.

        ``lift(f, a, b)`` is ``mod(read a as x in read b as y in write f(x,y))``
        -- the coercion the paper inserts for stable functions applied to
        changeable arguments (Section 3.3).
        """

        def comp(dest: Modifiable) -> None:
            self.read_list(list(mods), lambda vals: self.write(dest, func(*vals)))

        return self.mod(comp)

    def trace_size(self) -> int:
        """Current live trace size (memory proxy; see :mod:`repro.sac.meter`)."""
        return self.meter.trace_size(self)


class Batch:
    """One open batched-edit scope (see :meth:`Engine.batch`).

    After the scope closes normally, :attr:`changed` holds the number of
    effective edits coalesced and :attr:`reexecuted` the reads re-executed
    by the single propagation pass.
    """

    __slots__ = ("engine", "budget", "deadline", "changed", "reexecuted")

    def __init__(
        self,
        engine: Engine,
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.budget = budget
        self.deadline = deadline
        self.changed = 0
        self.reexecuted = 0

    def __enter__(self) -> "Batch":
        engine = self.engine
        engine._check_usable()
        if engine._batch_depth == 0:
            engine._batch_changes = 0
            if engine.hook is not None:
                engine.hook.on_batch_begin()
        engine._batch_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        engine = self.engine
        engine._batch_depth -= 1
        if engine._batch_depth > 0 or exc_type is not None:
            # Inner scope, or an aborted body: leave the edits staged in
            # the dirty queue and let the outermost scope (or a later
            # explicit propagate) apply them.
            return False
        self.changed = engine._batch_changes
        engine.meter.batches += 1
        if engine.lazy:
            # A lazy engine has no closing propagation: the coalesced
            # edits stay staged (dirty + suspect) for the next demand /
            # get / propagate, which is where budget/deadline then apply.
            # The batch scope is pure edit-coalescing under laziness.
            self.reexecuted = 0
            if engine.hook is not None:
                engine.hook.on_batch_end(self.changed, 0)
            return False
        try:
            self.reexecuted = engine.propagate(
                budget=self.budget, deadline=self.deadline
            )
        except (PropagationBudgetExceeded, ReexecutionError) as prop_exc:
            # The closing propagation stopped early: record the partial
            # re-execution count before re-raising.  The staged edits (and
            # any re-queued failing edge) survive in the dirty queue, so a
            # later propagate resumes or retries them.
            self.reexecuted = prop_exc.reexecuted
            raise
        if engine.hook is not None:
            engine.hook.on_batch_end(self.changed, self.reexecuted)
        return False
