"""The change-propagation engine.

This module implements the core of self-adjusting computation (paper
Sections 3.5-3.6, following Acar et al., TOPLAS 2006/2009):

* ``mod`` / ``read`` / ``write`` build the dynamic dependence graph (trace)
  during the initial run;
* ``change`` modifies input modifiables between runs;
* ``propagate`` re-executes exactly the reads that observed changed values,
  in timestamp order, discarding stale trace and splicing in *memoized*
  sub-traces where possible.

The memoization discipline is AFL's (Acar et al. 2009): during re-execution
of a read edge with interval ``[s, e]``, the not-yet-discarded old trace
between the current time cursor and ``e`` is the *reuse zone*.  A memo hit
whose interval lies inside the zone is spliced in: the trace between the
cursor and the hit is discarded, the cursor jumps past the hit, and any
dirty reads inside the reused interval remain queued and are propagated
later, in timestamp order.

Imperative references (paper Figure 4's ``impwrite``) are supported for the
common initialize-then-read pattern: an imperative write makes *later* reads
dirty, but earlier reads keep the value they legitimately observed.  General
read-before-write aliasing would need the versioned store of Acar et al.
2008 and is out of scope (see DESIGN.md Section 6).
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.sac.exceptions import (
    EnginePoisonedError,
    PropagationBudgetExceeded,
    PropagationError,
    ReadOutsideModError,
    RecursionReexecutionError,
    ReexecutionError,
    SacError,
    UnwrittenModError,
)
from repro.sac.meter import Meter
from repro.sac.modifiable import UNWRITTEN, Modifiable
from repro.sac.order import Order, Stamp
from repro.sac.trace import MemoEntry, ReadEdge


def _values_equal(a: Any, b: Any) -> bool:
    """Conservative value equality used to suppress no-op writes.

    A write may be suppressed only when the new value is observationally
    identical to the old one, and Python's ``==`` is too coarse for that:
    ``True == 1 == 1.0`` and ``0.0 == -0.0`` conflate observably different
    values.  Equality here is therefore *type-sensitive*.  Two NaNs of the
    same type count as equal (a reader that observed NaN recomputes the
    same results from a fresh NaN, so cutting off is consistent).
    Modifiables compare by identity; tuples and constructor values compare
    structurally under the same rules.  Returning False for incomparable
    values is always sound (it only causes extra propagation).

    Hash-consed constructor values (see :mod:`repro.sac.intern`) make the
    common cases O(1): identical canonical instances hit the leading
    identity test, and two *distinct* canonical instances are unequal by
    construction (the intern key discriminates exactly the distinctions
    made here), so no structural walk is needed either way.  The walk
    itself is iterative -- an explicit pair stack instead of recursion -- so
    a cutoff check on a 10k-deep constructor chain cannot overflow the
    interpreter stack.
    """
    if a is b:
        return True
    stack = [(a, b)]
    pop = stack.pop
    while stack:
        a, b = pop()
        if a is b:
            continue
        ta = type(a)
        if ta is not type(b):
            return False
        if ta is float:
            if a == b:
                if a == 0.0 and math.copysign(1.0, a) != math.copysign(1.0, b):
                    return False
                continue
            if a != a and b != b:  # NaN == NaN for cutoff purposes
                continue
            return False
        if ta is tuple:
            if len(a) != len(b):
                return False
            stack.extend(zip(a, b))
            continue
        tag = getattr(a, "tag", None)
        if tag is not None and hasattr(a, "arg"):
            # Constructor values, duck-typed so the runtime does not import
            # the interpreter layer: same tag, argument equal under these
            # rules.
            if tag != b.tag:
                return False
            if getattr(a, "_hc", False) and getattr(b, "_hc", False):
                # Both canonical but not identical: unequal by construction.
                return False
            stack.append((a.arg, b.arg))
            continue
        try:
            if a == b:
                continue
        except Exception:
            return False
        return False
    return True


class Engine:
    """One self-adjusting computation: a trace plus a change queue.

    An Engine owns a timestamp order, a priority queue of dirty read edges,
    memo tables, and instrumentation counters.  All primitives are methods,
    so independent computations (e.g. a benchmark and its verifier) never
    interfere.
    """

    #: Self-adjusting programs nest reader closures deeply (one level per
    #: list cell); CPython 3.11+ keeps pure-Python frames on the heap, so a
    #: high recursion limit is safe.  Override with the
    #: ``REPRO_RECURSION_LIMIT`` environment variable (deeper inputs need
    #: more; a :class:`RecursionReexecutionError` names the variable when
    #: the limit is hit anyway).
    RECURSION_LIMIT = 600_000

    #: bounds on the trace-record free-lists (see ``_edge_pool`` /
    #: ``_memo_pool`` in ``__init__``).
    EDGE_POOL_CAP = 8192
    MEMO_POOL_CAP = 8192

    def __init__(self) -> None:
        import os
        import sys

        limit = self.RECURSION_LIMIT
        env_limit = os.environ.get("REPRO_RECURSION_LIMIT")
        if env_limit:
            limit = int(env_limit)
        self.recursion_limit = limit
        if sys.getrecursionlimit() < limit:
            sys.setrecursionlimit(limit)
        self.alloc_table: dict = {}
        self.order = Order()
        self.now: Stamp = self.order.base
        #: bound once: ``insert_after`` is the single hottest engine call.
        self._insert_after = self.order.insert_after
        #: propagation heap of ``(key, tiebreak, edge)`` entries.  Keys are
        #: snapshots of ``edge.start.key`` so heap sifts compare plain ints;
        #: when the order's epoch moves (a relabel changed some keys) the
        #: whole heap is re-keyed at once (see :meth:`_rekey_queue`).
        self.queue: List[Tuple[int, int, ReadEdge]] = []
        self._queue_epoch = self.order.epoch
        self._queue_seq = 0
        self._queue_peak = 0
        #: free-lists recycling discarded trace records (allocator churn is
        #: measurable during compaction-heavy propagation).  Recycling is
        #: disabled while an observability hook is attached: hooks name
        #: records by identity, which reuse would alias.
        self._edge_pool: List[ReadEdge] = []
        self._memo_pool: List[MemoEntry] = []
        self.edges_reused = 0
        self.memo_entries_reused = 0
        self.memo_table: dict = {}
        self.reuse_limit: Optional[Stamp] = None
        self.meter = Meter()
        self._mod_depth = 0
        self._reexec_depth = 0
        self.propagating = False
        #: open ``batch()`` scopes; while positive, edits accumulate in the
        #: dirty queue and propagation runs once at the outermost exit.
        self._batch_depth = 0
        self._batch_changes = 0
        #: dead memo entries still occupying table buckets; when this
        #: outgrows the live population, :meth:`compact` sweeps the tables.
        self._dead_memo_entries = 0
        #: poisoning reason, or None while the engine is healthy.  Set when
        #: failure cleanup could not restore a consistent trace; every
        #: public operation then raises :class:`EnginePoisonedError`.
        self._poison: Optional[str] = None
        #: journal of ``(mod, old_value)`` pairs for every effective input
        #: edit staged since the last *complete* propagation; consumed by
        #: :meth:`rollback` to restore the last-good state after a failed
        #: propagation.
        self._edit_log: List[Tuple[Modifiable, Any]] = []
        self._journal_enabled = True
        #: floor before automatic compaction is considered at all (small
        #: computations never pay a sweep).
        self.compact_threshold = 64
        #: Optional observability hook (see :mod:`repro.obs.events`).  When
        #: None -- the default -- every emission site costs one attribute
        #: check, keeping the hot path fast.
        self.hook: Optional[Any] = None

    def attach_hook(self, hook: Any) -> None:
        """Install an observability hook (a ``repro.obs.events.TraceHook``).

        The hook receives structured engine events (mod-create,
        read-start/end, write, memo-hit/miss, splice, discard,
        propagate-begin/end, ...).  Pass ``None`` to detach.  To install
        several hooks at once, wrap them in a
        :class:`repro.obs.events.FanoutHook`.
        """
        self.hook = hook
        if hook is not None:
            hook.on_attach(self)

    # ------------------------------------------------------------------
    # Failure model: poisoning and recovery (see DESIGN.md Section 7)

    @property
    def poisoned(self) -> bool:
        """Whether the engine has been poisoned (see :meth:`poison`)."""
        return self._poison is not None

    def poison(self, reason: str) -> None:
        """Mark the engine unusable: the trace can no longer be trusted.

        Called by the engine itself when failure cleanup cannot restore a
        consistent trace (and available to hosts that detect external
        corruption).  Afterwards every public operation raises
        :class:`EnginePoisonedError`; the only way forward is a rebuild on
        a fresh engine (``Session.propagate(on_error="rebuild")``).
        """
        if self._poison is None:
            self._poison = reason
            if self.hook is not None:
                try:
                    self.hook.on_poison(reason)
                except Exception:  # the hook must not mask the poisoning
                    pass

    def _check_usable(self) -> None:
        if self._poison is not None:
            raise EnginePoisonedError(
                f"engine is poisoned and refuses further work: {self._poison}",
                reason=self._poison,
            )

    def truncate_after(self, checkpoint: Stamp) -> bool:
        """Delete all trace after ``checkpoint`` and restore the cursor.

        The recovery primitive behind transactional initial runs: take
        ``checkpoint = engine.now`` before running new computation; if the
        run raises, ``truncate_after(checkpoint)`` retracts everything the
        partial run recorded, leaving the engine exactly as it was.
        Returns True when the cleanup succeeded; on an internal failure the
        engine poisons itself and returns False (never raises, so callers
        can re-raise the run's original exception).
        """
        try:
            self._delete_range(checkpoint, None)
            self.now = checkpoint
            self.meter.run_aborts += 1
            return True
        except BaseException as exc:  # cleanup itself failed: poison
            self.poison(
                f"trace truncation after a failed run raised {exc!r}"
            )
            return False

    # ------------------------------------------------------------------
    # Dirty queue

    def _enqueue(self, edge: ReadEdge) -> None:
        """Push a (just-dirtied) edge onto the propagation heap.

        Heap entries snapshot the start stamp's packed key.  Snapshots
        taken at different order epochs are not mutually comparable, so a
        pending epoch change re-keys the existing entries *before* the
        push -- afterwards every entry in the heap agrees with the current
        epoch again.
        """
        if self.order.epoch != self._queue_epoch:
            self._rekey_queue()
        seq = self._queue_seq + 1
        self._queue_seq = seq
        self.meter.queue_pushes += 1
        queue = self.queue
        heapq.heappush(queue, (edge.start.key, seq, edge))
        if len(queue) > self._queue_peak:
            self._queue_peak = len(queue)

    def _rekey_queue(self) -> None:
        """Rebuild every heap entry's key snapshot after a relabel.

        Dead entries are kept (their stale keys still form a total order,
        and dropping them here would skew the drain accounting); they are
        skipped and recycled when popped, as usual.
        """
        queue = self.queue
        for i, (_key, seq, edge) in enumerate(queue):
            queue[i] = (edge.start.key, seq, edge)
        heapq.heapify(queue)
        self._queue_epoch = self.order.epoch
        self.meter.queue_rekeys += 1

    # ------------------------------------------------------------------
    # Trace construction primitives

    def _advance(self) -> Stamp:
        stamp = self._insert_after(self.now)
        self.now = stamp
        return stamp

    def make_input(self, value: Any) -> Modifiable:
        """Create an input modifiable holding ``value``.

        Inputs are created outside the traced computation; change them with
        :meth:`change` and then call :meth:`propagate`.
        """
        self._check_usable()
        self.meter.mods_created += 1
        mod = Modifiable(value)
        if self.hook is not None:
            self.hook.on_mod_create(mod, True, False)
        return mod

    def mod(self, comp: Callable[[Modifiable], None]) -> Modifiable:
        """Run changeable computation ``comp`` into a fresh modifiable.

        ``comp`` receives the destination and must finish with a
        :meth:`write` to it (possibly inside nested reads).

        An *outermost* ``mod`` (no enclosing mod and not inside change
        propagation) is transactional: if ``comp`` raises, the partial
        trace it recorded is truncated back to the pre-call checkpoint
        before the exception propagates, so a failed initial run leaves
        the engine exactly as it was.  Failures inside propagation are
        handled by :meth:`propagate`'s transactional re-execution instead.
        """
        if self._poison is not None:
            self._check_usable()
        dest = Modifiable()
        self.meter.mods_created += 1
        if self.hook is not None:
            self.hook.on_mod_create(dest, False, False)
        if self._mod_depth == 0 and self._reexec_depth == 0:
            checkpoint = self.now
            self._mod_depth += 1
            try:
                comp(dest)
                if dest.value is UNWRITTEN:
                    raise UnwrittenModError("mod body finished without writing")
            except BaseException:
                self.truncate_after(checkpoint)
                raise
            finally:
                self._mod_depth -= 1
        else:
            # Nested / propagation-time mods are the hot case: no
            # transaction checkpoint (propagate() owns recovery there).
            self._mod_depth += 1
            try:
                comp(dest)
                if dest.value is UNWRITTEN:
                    raise UnwrittenModError("mod body finished without writing")
            finally:
                self._mod_depth -= 1
        return dest

    def read(self, mod: Modifiable, reader: Callable[[Any], None]) -> None:
        """Record a dependency on ``mod`` and run ``reader`` on its value.

        ``reader`` is changeable code: it will be re-executed (with the new
        value) whenever ``mod`` changes.
        """
        if self._mod_depth == 0 and self._reexec_depth == 0:
            raise ReadOutsideModError("read outside the scope of any mod")
        value = mod.value
        if value is UNWRITTEN:
            raise UnwrittenModError("read of an unwritten modifiable")
        # Hottest engine primitive: _advance() is inlined and the meter is
        # fetched once (two stamps + two counters per read add up).
        insert_after = self._insert_after
        start = self.now = insert_after(self.now)
        pool = self._edge_pool
        if pool:
            edge = pool.pop()
            edge.mod = mod
            edge.reader = reader
            edge.start = start
            edge.end = None
            edge.dirty = False
            edge.dead = False
            self.edges_reused += 1
        else:
            edge = ReadEdge(mod, reader, start)
        start.owner = edge
        mod.readers.add(edge)
        meter = self.meter
        meter.reads_executed += 1
        meter.live_edges += 1
        hook = self.hook
        if hook is not None:
            hook.on_read_start(edge)
        reader(value)
        edge.end = self.now = insert_after(self.now)
        if hook is not None:
            hook.on_read_end(edge)

    def write(self, dest: Modifiable, value: Any) -> None:
        """Write ``value`` into destination ``dest``.

        During re-execution, a write of an equal value is a no-op, which is
        what stops change propagation from cascading further than needed.
        """
        self.meter.writes += 1
        if dest.value is not UNWRITTEN and _values_equal(dest.value, value):
            if self.hook is not None:
                self.hook.on_write(dest, value, False)
            return
        dest.value = value
        self.meter.changed_writes += 1
        if self.hook is not None:
            self.hook.on_write(dest, value, True)
        if dest.readers:
            self._dirty_readers(dest)

    def impwrite(self, dest: Modifiable, value: Any) -> None:
        """Imperative update (translation of ``:=``, paper Figure 4).

        Inside a run, later reads (start stamp after the current time)
        become dirty while earlier reads keep the value they legitimately
        observed.  Outside any run it is an input change: all readers
        become dirty.
        """
        self._check_usable()
        self.meter.writes += 1
        if dest.value is not UNWRITTEN and _values_equal(dest.value, value):
            if self.hook is not None:
                self.hook.on_impwrite(dest, value, False, 0)
            return
        inside_run = self._mod_depth > 0 or self._reexec_depth > 0
        if (
            self._journal_enabled
            and not inside_run
            and dest.value is not UNWRITTEN
        ):
            # An imperative write outside any run is an input edit; journal
            # it so rollback can restore the last-good state.
            self._edit_log.append((dest, dest.value))
        dest.value = value
        self.meter.changed_writes += 1
        now_key = self.now.key
        dirtied = 0
        for edge in list(dest.readers):
            if edge.dead or edge.dirty:
                continue
            if not inside_run or edge.start.key > now_key:
                edge.dirty = True
                self._enqueue(edge)
                dirtied += 1
        if self.hook is not None:
            self.hook.on_impwrite(dest, value, True, dirtied)

    def _dirty_readers(self, mod: Modifiable) -> int:
        dirtied = 0
        # Dirtying never mutates the reader set, so no defensive copy.
        for edge in mod.readers:
            if not edge.dead and not edge.dirty:
                edge.dirty = True
                self._enqueue(edge)
                dirtied += 1
        return dirtied

    def keyed_mod(self, key: Hashable, comp: Callable[[Modifiable], None]) -> Modifiable:
        """``mod`` with *keyed destination allocation* (AFL's "unsafe"
        low-level interface, paper Section 4.9).

        When a computation is re-executed, a plain ``mod`` allocates a fresh
        modifiable, so consumers holding the old one see an identity change
        even if the contents are equal.  ``keyed_mod`` recycles the
        modifiable previously allocated under ``key`` -- provided its old
        allocation site is dead or lies in the current reuse zone (i.e. is
        about to be discarded) -- so an equal re-write is a no-op and
        propagation cuts off.  This is what makes merge-based algorithms'
        output spines identity-stable (see ``repro.bench.handwritten``'s
        keyed msort).

        Unlike ``memo``, the computation always re-runs; only the
        *identity* is reused.  The caller must ensure keys are unique among
        simultaneously live allocations (e.g. include the element value and
        an instance identifier); when a live allocation outside the reuse
        zone already holds the key, a fresh modifiable is allocated instead,
        which is always sound.

        Like :meth:`mod`, an outermost ``keyed_mod`` is transactional: a
        raising ``comp`` truncates the partial trace (including this
        call's allocation stamp) back to the pre-call checkpoint.
        """
        self._check_usable()
        outermost = self._mod_depth == 0 and self._reexec_depth == 0
        checkpoint = self.now if outermost else None
        dest: Optional[Modifiable] = None
        entry = self.alloc_table.get(key)
        if entry is not None:
            old_mod, old_stamp, old_gen = entry
            # A generation mismatch means the recorded stamp died and was
            # recycled by the order's free-list for an unrelated position:
            # treat it exactly like a dead allocation site.
            if old_stamp.gen != old_gen or not old_stamp.live:
                dest = old_mod
            elif (
                self.reuse_limit is not None
                and self.now.key < old_stamp.key <= self.reuse_limit.key
            ):
                dest = old_mod  # doomed: lies in the current reuse zone
        recycled = dest is not None
        if dest is None:
            dest = Modifiable()
            self.meter.mods_created += 1
        if self.hook is not None:
            self.hook.on_mod_create(dest, False, recycled)
        stamp = self._advance()
        self.alloc_table[key] = (dest, stamp, stamp.gen)
        self._mod_depth += 1
        try:
            comp(dest)
            if dest.value is UNWRITTEN:
                raise UnwrittenModError("keyed_mod body finished without writing")
        except BaseException:
            if outermost:
                self.truncate_after(checkpoint)
            raise
        finally:
            self._mod_depth -= 1
        return dest

    # ------------------------------------------------------------------
    # Memoization

    def memo(self, key: Hashable, thunk: Callable[[], Any]) -> Any:
        """Memoized evaluation of ``thunk`` under ``key``.

        On a *hit* (a live entry for ``key`` whose interval lies inside the
        current reuse zone) the old sub-trace is spliced in and the stored
        result returned without recomputation.  Otherwise ``thunk`` runs and
        its interval and result are recorded.
        """
        self._check_usable()
        entries = self.memo_table.get(key)
        if entries is not None:
            hit: Optional[MemoEntry] = None
            limit = self.reuse_limit
            dead = 0
            if limit is not None:
                now_key = self.now.key
                limit_key = limit.key
                for entry in entries:
                    if entry.dead:
                        dead += 1
                    elif (
                        hit is None
                        and now_key < entry.start.key
                        and entry.end is not None
                        and entry.end.key <= limit_key
                    ):
                        hit = entry
            else:
                for entry in entries:
                    if entry.dead:
                        dead += 1
            if dead:
                # Lazy per-key pruning: dead entries leave the bucket here,
                # so they must also leave the dead-entry account that
                # drives whole-table compaction.
                live = [e for e in entries if not e.dead]
                self._dead_memo_entries -= dead
                if live:
                    self.memo_table[key] = live
                else:
                    del self.memo_table[key]
                if self.hook is None:
                    pool = self._memo_pool
                    cap = self.MEMO_POOL_CAP
                    for entry in entries:
                        if entry.dead and len(pool) < cap:
                            entry.key = None
                            entry.start = None
                            entry.end = None
                            pool.append(entry)
            if hit is not None:
                # Splice: discard the skipped old trace, jump past the hit.
                if self.hook is not None:
                    self.hook.on_memo_hit(hit)
                self._delete_range(self.now, hit.start)
                self.now = hit.end
                self.meter.memo_hits += 1
                if self.hook is not None:
                    self.hook.on_splice(hit)
                return hit.result
        self.meter.memo_misses += 1
        if self.hook is not None:
            self.hook.on_memo_miss(key)
        start = self.now = self._insert_after(self.now)
        pool = self._memo_pool
        if pool:
            entry = pool.pop()
            entry.key = key
            entry.result = None
            entry.start = start
            entry.end = None
            entry.dead = False
            self.memo_entries_reused += 1
        else:
            entry = MemoEntry(key, start)
        start.owner = entry
        self.meter.live_memo_entries += 1
        result = thunk()
        entry.end = self.now = self._insert_after(self.now)
        entry.result = result
        self.memo_table.setdefault(key, []).append(entry)
        return result

    # ------------------------------------------------------------------
    # Changes and propagation

    def change(self, mod: Modifiable, value: Any) -> int:
        """Change an input modifiable (between propagations).

        Returns the number of read edges the change dirtied (0 when the new
        value equals the old one and the edit cuts off immediately).  This
        is the uniform return convention of every edit entry point
        (``Session.edit`` and the ``ModList`` handles): stage the change,
        report the dirtied reads, and leave propagation to an explicit
        :meth:`propagate` call or an enclosing :meth:`batch`.

        Every effective edit is journaled until the next complete
        propagation, so :meth:`rollback` can restore the last-good input
        state after a failed propagation.
        """
        self._check_usable()
        if _values_equal(mod.value, value):
            if self.hook is not None:
                self.hook.on_change(mod, value, False)
            return 0
        if self._journal_enabled:
            self._edit_log.append((mod, mod.value))
        mod.value = value
        if self._batch_depth:
            self._batch_changes += 1
        if self.hook is not None:
            self.hook.on_change(mod, value, True)
        return self._dirty_readers(mod)

    def batch(self, *, budget: Optional[int] = None,
              deadline: Optional[float] = None) -> "Batch":
        """Open a batched-edit scope: many changes, one propagation pass.

        Usage::

            with engine.batch() as b:
                engine.change(m1, 5)
                engine.change(m2, 7)
            b.reexecuted  # reads re-executed by the single pass

        Inside the scope, edits only accumulate dirty reads; the outermost
        exit runs one :meth:`propagate`.  A read that observed several of
        the changed inputs therefore re-executes *once*, where separate
        change/propagate cycles would re-execute it once per edit -- this
        per-read deduplication is where batched propagation wins
        asymptotically on overlapping edits (see
        ``benchmarks/bench_batch_propagate.py``).

        Nested ``batch()`` scopes coalesce into the outermost one.  If the
        body raises, nothing is propagated (the dirty queue keeps the edits
        staged, so a later ``propagate`` still applies them).  ``budget``
        and ``deadline`` are forwarded to the closing :meth:`propagate`.
        """
        return Batch(self, budget=budget, deadline=deadline)

    def change_many(
        self,
        changes: Iterable[Tuple[Modifiable, Any]],
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Apply ``(mod, value)`` edits and propagate once; return the
        number of reads re-executed by the single coalesced pass."""
        with self.batch(budget=budget, deadline=deadline) as b:
            for mod, value in changes:
                self.change(mod, value)
        return b.reexecuted

    def propagate(
        self,
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Run change propagation to completion.

        Returns the number of read edges re-executed.  After propagation the
        outputs of the computation are up to date with all changes made via
        :meth:`change` / :meth:`impwrite`.

        ``budget`` caps the number of read re-executions and ``deadline``
        the wall-clock seconds this call may spend; when either limit is
        reached with real work still queued, the call stops *between*
        re-executions and raises :class:`PropagationBudgetExceeded`.  The
        trace stays consistent and the remaining dirty reads stay queued,
        so a later ``propagate`` resumes where this one stopped.  The
        limits guard long-lived instances against pathological edit
        sequences that would otherwise propagate for unbounded time.

        Re-execution is *transactional*: if a reader raises, the engine
        splices the edge's whole interval back out (the partially rebuilt
        new trace together with the not-yet-reused old trace), restores
        the cursor, re-queues the edge as dirty, and raises a
        :class:`ReexecutionError` (a :class:`RecursionReexecutionError`
        for stack overflows) wrapping the original exception.  The trace
        stays structurally consistent -- retry, :meth:`rollback`, or
        rebuild -- unless the abort cleanup itself fails, in which case
        the engine poisons itself (``consistent=False`` on the error) and
        refuses further work with :class:`EnginePoisonedError`.
        """
        self._check_usable()
        if self._batch_depth:
            raise PropagationError("propagate called inside an open batch()")
        if self.propagating:
            raise PropagationError("propagate is not reentrant")
        self.propagating = True
        hook = self.hook
        if hook is not None:
            hook.on_propagate_begin(len(self.queue))
        deadline_at = None if deadline is None else time.monotonic() + deadline
        meter = self.meter
        order = self.order
        queue = self.queue
        reexecuted = 0
        try:
            while queue:
                # Re-executed readers insert stamps, which can relabel; a
                # pending epoch change invalidates every key snapshot in
                # the heap, so re-key before trusting the heap order.
                if order.epoch != self._queue_epoch:
                    self._rekey_queue()
                entry_key, entry_seq, edge = heapq.heappop(queue)
                if edge.dead or not edge.dirty:
                    meter.queue_drained += 1
                    if (
                        edge.dead
                        and self.hook is None
                        and len(self._edge_pool) < self.EDGE_POOL_CAP
                    ):
                        # A discarded edge leaves the queue for good here;
                        # recycle it (discard already dropped mod/reader).
                        edge.start = None
                        edge.end = None
                        self._edge_pool.append(edge)
                    continue
                if budget is not None and reexecuted >= budget:
                    heapq.heappush(queue, (entry_key, entry_seq, edge))
                    raise PropagationBudgetExceeded(
                        f"propagation budget of {budget} re-execution(s) "
                        f"exhausted with {len(queue)} queue entries left",
                        reexecuted=reexecuted,
                        pending=len(queue),
                    )
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    heapq.heappush(queue, (entry_key, entry_seq, edge))
                    raise PropagationBudgetExceeded(
                        f"propagation deadline of {deadline:g}s exceeded "
                        f"with {len(queue)} queue entries left",
                        reexecuted=reexecuted,
                        pending=len(queue),
                    )
                meter.queue_drained += 1
                edge.dirty = False
                assert edge.end is not None
                if hook is not None:
                    hook.on_reexec(edge)
                saved_now, saved_limit = self.now, self.reuse_limit
                self.now = edge.start
                self.reuse_limit = edge.end
                self._reexec_depth += 1
                try:
                    try:
                        edge.reader(edge.mod.value)
                    finally:
                        self._reexec_depth -= 1
                    # Discard whatever old trace was neither re-created
                    # nor spliced.  Inside the protected region: skipping
                    # this splice-out would silently corrupt the DDG, so a
                    # failure here must go through the same abort path.
                    self._delete_range(self.now, edge.end)
                except BaseException as exc:
                    wrapped = self._abort_reexec(
                        edge, exc, saved_now, saved_limit, reexecuted
                    )
                    if wrapped is None:
                        raise  # KeyboardInterrupt & co: cleaned up, re-raise
                    raise wrapped from exc
                self.now, self.reuse_limit = saved_now, saved_limit
                reexecuted += 1
                meter.edges_reexecuted += 1
        finally:
            self.propagating = False
        # A complete pass leaves the outputs consistent with all inputs:
        # this is the new last-good state, so the rollback journal resets.
        self._edit_log = []
        if hook is not None:
            hook.on_propagate_end(reexecuted)
        if self._compaction_due():
            self.compact()
        return reexecuted

    def _abort_reexec(
        self,
        edge: ReadEdge,
        exc: BaseException,
        saved_now: Stamp,
        saved_limit: Optional[Stamp],
        reexecuted: int,
    ) -> Optional[ReexecutionError]:
        """Transactional abort of one failed re-execution.

        Splices the edge's whole interval out (partial new trace and
        unreused old trace alike), restores the cursor and reuse zone, and
        re-queues the edge as dirty so the failed work stays staged.  If
        the cleanup itself fails the engine is poisoned instead.

        Returns the typed :class:`ReexecutionError` to raise, or None when
        ``exc`` is not an :class:`Exception` (KeyboardInterrupt and
        friends): those are cleaned up after but re-raised unchanged.
        """
        self.meter.reexec_aborts += 1
        consistent = True
        try:
            self._delete_range(edge.start, edge.end)
            self.now, self.reuse_limit = saved_now, saved_limit
            if not edge.dead and not edge.dirty:
                edge.dirty = True
                self._enqueue(edge)
        except BaseException as cleanup_exc:
            consistent = False
            self.poison(
                f"abort cleanup after a failed re-execution raised "
                f"{cleanup_exc!r} (original reader error: {exc!r})"
            )
        if self.hook is not None:
            self.hook.on_reexec_abort(edge, exc, consistent)
        if not isinstance(exc, Exception):
            return None
        pending = len(self.queue)
        if isinstance(exc, RecursionError):
            return RecursionReexecutionError(
                f"re-execution of {edge!r} overflowed the interpreter "
                f"stack; self-adjusting readers nest one Python frame per "
                f"traced cell, so deep inputs need a recursion limit above "
                f"the current {self.recursion_limit} (set "
                f"REPRO_RECURSION_LIMIT) or a smaller input",
                edge=edge,
                original=exc,
                consistent=consistent,
                reexecuted=reexecuted,
                pending=pending,
            )
        verdict = (
            "the stale interval was spliced out and the edge re-queued"
            if consistent
            else "abort cleanup failed and the engine is now poisoned"
        )
        return ReexecutionError(
            f"re-execution of {edge!r} raised "
            f"{type(exc).__name__}: {exc}; {verdict}",
            edge=edge,
            original=exc,
            consistent=consistent,
            reexecuted=reexecuted,
            pending=pending,
        )

    def rollback(self) -> Tuple[int, int, int]:
        """Recover from a failed propagation by restoring the last-good
        state, then re-staging the edits.

        Uses the journal of input edits staged since the last complete
        propagation: each edited modifiable is restored to its last-good
        value (in reverse edit order) and a recovery propagation re-runs
        every affected read -- including the re-queued failing edge, now
        with its old input again -- bringing the outputs back to the state
        before the edits.  The edits are then re-applied, *staged but not
        propagated*, so the host can fix the environment and propagate
        again (or inspect/abandon the edits).

        Returns ``(undone, recovery_reexecuted, restaged)``: journal
        entries undone, reads re-executed by the recovery propagation, and
        edits re-staged (one per touched modifiable whose edited value
        differs from its last-good value).  If the recovery propagation
        itself fails, the last-good state is unreachable and the engine
        poisons itself before re-raising.
        """
        self._check_usable()
        if self.propagating:
            raise PropagationError("rollback called during propagation")
        if self._batch_depth:
            raise PropagationError("rollback called inside an open batch()")
        journal = self._edit_log
        self._edit_log = []
        # Redo plan: the current (edited) value of each touched modifiable,
        # in first-edit order, captured before the undo overwrites them.
        redo = []
        seen = set()
        for mod, _old in journal:
            if id(mod) not in seen:
                seen.add(id(mod))
                redo.append((mod, mod.value))
        self.meter.rollbacks += 1
        self._journal_enabled = False
        try:
            for mod, old in reversed(journal):
                self.change(mod, old)
            try:
                recovery_reexecuted = self.propagate()
            except SacError as exc:
                self.poison(f"rollback recovery propagation failed: {exc!r}")
                raise
        finally:
            self._journal_enabled = True
        restaged = 0
        for mod, new in redo:
            if not _values_equal(mod.value, new):
                self.change(mod, new)
                restaged += 1
        if self.hook is not None:
            self.hook.on_rollback(len(journal), recovery_reexecuted, restaged)
        return len(journal), recovery_reexecuted, restaged

    # ------------------------------------------------------------------
    # Trace compaction

    def _compaction_due(self) -> bool:
        """Whether dead table residue justifies a sweep.

        Amortized O(1) per discard: a sweep costs O(table size) and only
        runs once the dead population exceeds both a fixed floor and the
        live population, so total sweep work is proportional to total
        discard work.
        """
        dead = self._dead_memo_entries
        return dead > self.compact_threshold and dead > self.meter.live_memo_entries

    def compact(self) -> dict:
        """Sweep dead residue out of the memo and allocation tables.

        Trace *records* are already freed eagerly when their interval is
        spliced out (:meth:`_delete_range` retracts them and drops their
        closures/results), but the table buckets that index them are only
        pruned lazily on key lookup -- a long-lived instance whose memo keys
        never recur (value-dependent keys after an input edit) would grow
        its tables without bound.  Compaction removes dead memo entries,
        empty buckets, and allocation-table entries whose site was
        discarded.  Dropping a dead allocation entry is always sound; the
        only cost is that a *later* re-allocation under the same key gets a
        fresh modifiable instead of recycling the old identity.

        Runs automatically after a propagation once the dead population
        outgrows the live one (see :meth:`_compaction_due`); idempotent and
        cheap to call explicitly.  Returns ``{"memo": ..., "alloc": ...}``
        counts of removed entries.
        """
        self._check_usable()
        memo_removed = 0
        if self._dead_memo_entries:
            pool = self._memo_pool if self.hook is None else None
            cap = self.MEMO_POOL_CAP
            for key in list(self.memo_table):
                entries = self.memo_table[key]
                live = [e for e in entries if not e.dead]
                if len(live) == len(entries):
                    continue
                memo_removed += len(entries) - len(live)
                if pool is not None:
                    for entry in entries:
                        if entry.dead and len(pool) < cap:
                            entry.key = None
                            entry.start = None
                            entry.end = None
                            pool.append(entry)
                if live:
                    self.memo_table[key] = live
                else:
                    del self.memo_table[key]
            self._dead_memo_entries = 0
        alloc_removed = 0
        stale = [
            k
            for k, (_, stamp, gen) in self.alloc_table.items()
            if not stamp.live or stamp.gen != gen
        ]
        for key in stale:
            del self.alloc_table[key]
            alloc_removed += 1
        meter = self.meter
        meter.compactions += 1
        meter.memo_entries_compacted += memo_removed
        meter.alloc_entries_compacted += alloc_removed
        if self.hook is not None:
            self.hook.on_trace_compact(memo_removed, alloc_removed)
        return {"memo": memo_removed, "alloc": alloc_removed}

    def table_residency(self) -> dict:
        """Entry counts of the auxiliary tables, dead residue included.

        ``trace_size`` counts only the *live* trace; this reports what the
        tables actually hold, which is what compaction bounds.
        """
        return {
            "memo_entries": sum(len(v) for v in self.memo_table.values()),
            "memo_buckets": len(self.memo_table),
            "dead_memo_entries": self._dead_memo_entries,
            "alloc_entries": len(self.alloc_table),
        }

    def hot_stats(self) -> dict:
        """Hot-path data-structure statistics (profiling harness surface).

        Groups the order-maintenance, dirty-queue, and free-list counters
        that ``python -m repro profile`` reports next to the per-phase
        meter numbers.
        """
        meter = self.meter
        return {
            "order": self.order.stats(),
            "queue": {
                "size": len(self.queue),
                "peak": self._queue_peak,
                "pushes": meter.queue_pushes,
                "rekeys": meter.queue_rekeys,
                "drained": meter.queue_drained,
            },
            "pools": {
                "edges_reused": self.edges_reused,
                "edges_pooled": len(self._edge_pool),
                "memo_entries_reused": self.memo_entries_reused,
                "memo_entries_pooled": len(self._memo_pool),
            },
        }

    # ------------------------------------------------------------------
    # Trace deletion

    def _delete_range(self, a: Stamp, b: Optional[Stamp]) -> None:
        """Delete stamps strictly between ``a`` and ``b``, retracting owners.

        Owners are discarded in a first pass (discard never touches the
        order), then the whole chain is unlinked with one bulk
        :meth:`~repro.sac.order.Order.delete_range` splice.
        """
        node = a.next
        if node is None or node is b:
            return
        hook = self.hook
        if hook is None:
            # Inlined ReadEdge.discard / MemoEntry.discard bodies: this
            # walk retracts every record of a re-executed read's old
            # sub-trace, so the per-record method call is measurable.
            meter = self.meter
            edge_pool = self._edge_pool
            edge_cap = self.EDGE_POOL_CAP
            while node is not None and node is not b:
                owner = node.owner
                if owner is not None:
                    if type(owner) is ReadEdge:
                        owner.dead = True
                        owner.mod.readers.discard(owner)
                        owner.mod = None
                        owner.reader = None
                        meter.live_edges -= 1
                        if not owner.dirty and len(edge_pool) < edge_cap:
                            owner.start = None
                            owner.end = None
                            edge_pool.append(owner)
                    else:
                        owner.dead = True
                        owner.result = None
                        meter.live_memo_entries -= 1
                        self._dead_memo_entries += 1
                    node.owner = None
                node = node.next
        else:
            while node is not None and node is not b:
                owner = node.owner
                if owner is not None:
                    owner.discard(self)
                    node.owner = None
                    hook.on_discard(owner)
                node = node.next
        self.order.delete_range(a, b)

    # ------------------------------------------------------------------
    # Convenience combinators (AFL-style library surface)

    def read2(
        self,
        m1: Modifiable,
        m2: Modifiable,
        reader: Callable[[Any, Any], None],
    ) -> None:
        """Read two modifiables and run ``reader`` on both values."""
        self.read(m1, lambda v1: self.read(m2, lambda v2: reader(v1, v2)))

    def read_list(
        self, mods: Sequence[Modifiable], reader: Callable[[list], None]
    ) -> None:
        """Read a sequence of modifiables, then run ``reader`` on the values."""

        def go(index: int, acc: list) -> None:
            if index == len(mods):
                reader(acc)
            else:
                self.read(mods[index], lambda v: go(index + 1, acc + [v]))

        go(0, [])

    def lift(self, func: Callable, *mods: Modifiable) -> Modifiable:
        """Apply a pure function to modifiable arguments, yielding a new one.

        ``lift(f, a, b)`` is ``mod(read a as x in read b as y in write f(x,y))``
        -- the coercion the paper inserts for stable functions applied to
        changeable arguments (Section 3.3).
        """

        def comp(dest: Modifiable) -> None:
            self.read_list(list(mods), lambda vals: self.write(dest, func(*vals)))

        return self.mod(comp)

    def trace_size(self) -> int:
        """Current live trace size (memory proxy; see :mod:`repro.sac.meter`)."""
        return self.meter.trace_size(self)


class Batch:
    """One open batched-edit scope (see :meth:`Engine.batch`).

    After the scope closes normally, :attr:`changed` holds the number of
    effective edits coalesced and :attr:`reexecuted` the reads re-executed
    by the single propagation pass.
    """

    __slots__ = ("engine", "budget", "deadline", "changed", "reexecuted")

    def __init__(
        self,
        engine: Engine,
        *,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.budget = budget
        self.deadline = deadline
        self.changed = 0
        self.reexecuted = 0

    def __enter__(self) -> "Batch":
        engine = self.engine
        engine._check_usable()
        if engine._batch_depth == 0:
            engine._batch_changes = 0
            if engine.hook is not None:
                engine.hook.on_batch_begin()
        engine._batch_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        engine = self.engine
        engine._batch_depth -= 1
        if engine._batch_depth > 0 or exc_type is not None:
            # Inner scope, or an aborted body: leave the edits staged in
            # the dirty queue and let the outermost scope (or a later
            # explicit propagate) apply them.
            return False
        self.changed = engine._batch_changes
        engine.meter.batches += 1
        try:
            self.reexecuted = engine.propagate(
                budget=self.budget, deadline=self.deadline
            )
        except (PropagationBudgetExceeded, ReexecutionError) as prop_exc:
            # The closing propagation stopped early: record the partial
            # re-execution count before re-raising.  The staged edits (and
            # any re-queued failing edge) survive in the dirty queue, so a
            # later propagate resumes or retries them.
            self.reexecuted = prop_exc.reexecuted
            raise
        if engine.hook is not None:
            engine.hook.on_batch_end(self.changed, self.reexecuted)
        return False
