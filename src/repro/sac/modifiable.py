"""Modifiable references.

A *modifiable* (paper Section 2.2) is a write-once-per-epoch reference cell
holding changeable data.  The initial run writes it once (inside ``mod``);
between runs, input modifiables may be *changed*; change propagation then
re-executes exactly the reads that observed stale values.
"""

from __future__ import annotations

from typing import Any, Set


class _Unwritten:
    """Sentinel for a modifiable that has not been written yet."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<unwritten>"


UNWRITTEN = _Unwritten()


class Modifiable:
    """A modifiable reference.

    Attributes:
        value: current contents (or :data:`UNWRITTEN`).
        readers: set of live :class:`repro.sac.trace.ReadEdge` objects that
            observed this modifiable.
        suspect: lazy-mode dirty bit.  Under ``Engine(mode="lazy")`` an
            edit marks every modifiable whose value *may* now be stale --
            the edited one's readers' destinations, transitively -- and
            :meth:`repro.sac.engine.Engine.demand` clears the bit once the
            demanded cone is clean again.  A modifiable with a clear bit
            can be served without any propagation work.  Eager engines
            never set it.
        fsum: reverse-reachability summary (lazy ``feeds="summary"`` mode
            only): an int bitset of the demand roots this modifiable's
            value can flow into through live reader edges.  Bit 0 is the
            conservative "feeds everything" bit set when a ``dest=None``
            edge is reachable; each registered demand root owns one higher
            bit.  Maintained incrementally as edges appear and die; only
            meaningful while ``fsum_valid`` is True.
        fsum_valid: whether ``fsum`` is current.  Invalidation propagates
            *upstream* (toward inputs) with stop-at-invalid, so the engine
            keeps the invariant that everything feeding an invalid node is
            itself invalid; revalidation recomputes whole invalid regions
            on first query.
        root_bit: the single bit owned by this modifiable once it has been
            registered as a demand root (0 = never demanded).  Because the
            bit is unique, ``other.fsum & root_bit`` decides "does *other*
            feed this root" in O(1).
        in_edges: lazily allocated reverse index — the set of live
            :class:`~repro.sac.trace.ReadEdge` objects whose ``dest`` is
            this modifiable (i.e. the edges whose owners feed it).  ``None``
            until first use; eager engines never allocate it.
    """

    __slots__ = ("value", "readers", "suspect", "fsum", "fsum_valid", "root_bit", "in_edges")

    def __init__(self, value: Any = UNWRITTEN) -> None:
        self.value = value
        self.readers: Set[Any] = set()
        self.suspect = False
        self.fsum = 0
        self.fsum_valid = True
        self.root_bit = 0
        self.in_edges = None

    @property
    def written(self) -> bool:
        return self.value is not UNWRITTEN

    def peek(self) -> Any:
        """Return the current value without recording a dependency.

        Use this only from *outside* the self-adjusting computation (e.g. to
        inspect outputs); reads inside the computation must go through
        :meth:`repro.sac.engine.Engine.read` so they are traced.
        """
        if self.value is UNWRITTEN:
            raise ValueError("modifiable has not been written")
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mod({self.value!r})"
