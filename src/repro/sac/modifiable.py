"""Modifiable references.

A *modifiable* (paper Section 2.2) is a write-once-per-epoch reference cell
holding changeable data.  The initial run writes it once (inside ``mod``);
between runs, input modifiables may be *changed*; change propagation then
re-executes exactly the reads that observed stale values.
"""

from __future__ import annotations

from typing import Any, Set


class _Unwritten:
    """Sentinel for a modifiable that has not been written yet."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<unwritten>"


UNWRITTEN = _Unwritten()


class Modifiable:
    """A modifiable reference.

    Attributes:
        value: current contents (or :data:`UNWRITTEN`).
        readers: set of live :class:`repro.sac.trace.ReadEdge` objects that
            observed this modifiable.
        suspect: lazy-mode dirty bit.  Under ``Engine(mode="lazy")`` an
            edit marks every modifiable whose value *may* now be stale --
            the edited one's readers' destinations, transitively -- and
            :meth:`repro.sac.engine.Engine.demand` clears the bit once the
            demanded cone is clean again.  A modifiable with a clear bit
            can be served without any propagation work.  Eager engines
            never set it.
    """

    __slots__ = ("value", "readers", "suspect")

    def __init__(self, value: Any = UNWRITTEN) -> None:
        self.value = value
        self.readers: Set[Any] = set()
        self.suspect = False

    @property
    def written(self) -> bool:
        return self.value is not UNWRITTEN

    def peek(self) -> Any:
        """Return the current value without recording a dependency.

        Use this only from *outside* the self-adjusting computation (e.g. to
        inspect outputs); reads inside the computation must go through
        :meth:`repro.sac.engine.Engine.read` so they are traced.
        """
        if self.value is UNWRITTEN:
            raise ValueError("modifiable has not been written")
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mod({self.value!r})"
