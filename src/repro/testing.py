"""Deprecated home of the verification framework; see :mod:`repro.api`.

The random-change verification (paper Section 4.3) and the from-scratch
consistency oracle now live in :mod:`repro.api`, reimplemented on top of
:class:`repro.api.Session`.  This module remains as a shim: the result
and error types are re-exported unchanged, and the driver functions
delegate after emitting a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.api import (  # noqa: F401  (re-exports)
    OracleResult,
    VerificationError,
    VerifyResult,
    values_close,
)

__all__ = [
    "OracleResult",
    "VerificationError",
    "VerifyResult",
    "oracle_app",
    "values_close",
    "verify_app",
]


def verify_app(*args, **kwargs):
    """Deprecated: use :func:`repro.api.verify_app`."""
    warnings.warn(
        "repro.testing.verify_app is deprecated; use repro.api.verify_app",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import verify_app as _verify_app

    return _verify_app(*args, **kwargs)


def oracle_app(*args, **kwargs):
    """Deprecated: use :func:`repro.api.oracle_app`."""
    warnings.warn(
        "repro.testing.oracle_app is deprecated; use repro.api.oracle_app",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import oracle_app as _oracle_app

    return _oracle_app(*args, **kwargs)
