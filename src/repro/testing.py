"""The random-change correctness framework (paper Section 4.3).

"We have developed a testing framework, which makes a massive number of
randomly generated changes to the input data, and checks that the
executable responds correctly to each such change by comparing its output
with that of a verifier (reference implementation)."

:func:`verify_app` does exactly this for one benchmark application: one
complete self-adjusting run, then ``changes`` random incremental changes,
re-verifying the output against the pure-Python reference after each
change propagation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.apps.base import App
from repro.sac.engine import Engine


class VerificationError(AssertionError):
    """The self-adjusting output diverged from the reference."""


def values_close(a: Any, b: Any, rel: float = 1e-9) -> bool:
    """Structural comparison with float tolerance."""
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(float(a), float(b), rel_tol=rel, abs_tol=1e-12)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(values_close(x, y, rel) for x, y in zip(a, b))
    return a == b


@dataclass
class VerifyResult:
    name: str
    n: int
    changes: int
    reexecuted_total: int

    def __str__(self) -> str:
        return (
            f"{self.name}: n={self.n}, {self.changes} changes verified, "
            f"{self.reexecuted_total} reads re-executed"
        )


def verify_app(
    app: App,
    n: int,
    changes: int,
    seed: int = 0,
    *,
    memoize: bool = True,
    optimize_flag: bool = True,
    coarse: bool = False,
    check_conventional: bool = True,
) -> VerifyResult:
    """Run the Section 4.3 verification protocol for one application."""
    rng = random.Random(seed)
    program = app.compiled(
        memoize=memoize, optimize_flag=optimize_flag, coarse=coarse
    )
    data = app.make_data(n, rng)

    if check_conventional:
        conv = program.conventional_instance()
        conv_out = app.readback(conv.apply(app.make_conv_input(data)))
        expected = app.reference(data)
        if not values_close(conv_out, expected):
            raise VerificationError(
                f"{app.name}: conventional output diverges from reference\n"
                f"  got:      {conv_out!r}\n  expected: {expected!r}"
            )

    engine = Engine()
    instance = program.self_adjusting_instance(engine)
    input_value, handle = app.make_sa_input(engine, data)
    output = instance.apply(input_value)

    got = app.readback(output)
    expected = app.reference(data)
    if not values_close(got, expected):
        raise VerificationError(
            f"{app.name}: initial self-adjusting output diverges\n"
            f"  got:      {got!r}\n  expected: {expected!r}"
        )

    reexecuted = 0
    for step in range(changes):
        app.apply_change(handle, rng, step)
        reexecuted += engine.propagate()
        got = app.readback(output)
        expected = app.reference(app.handle_data(handle))
        if not values_close(got, expected):
            raise VerificationError(
                f"{app.name}: output diverges after change {step}\n"
                f"  got:      {got!r}\n  expected: {expected!r}"
            )
    return VerifyResult(app.name, n, changes, reexecuted)
