"""The random-change correctness framework (paper Section 4.3).

"We have developed a testing framework, which makes a massive number of
randomly generated changes to the input data, and checks that the
executable responds correctly to each such change by comparing its output
with that of a verifier (reference implementation)."

:func:`verify_app` does exactly this for one benchmark application: one
complete self-adjusting run, then ``changes`` random incremental changes,
re-verifying the output against the pure-Python reference after each
change propagation.

:func:`oracle_app` is the stronger *from-scratch-consistency oracle* (the
property the consistency theorems of self-adjusting computation actually
state): after every propagation, the incrementally updated output must
equal the output of a **fresh self-adjusting run** of the same compiled
program on the current input -- not just the reference implementation.
This catches propagation bugs that happen to produce reference-correct
values through a stale trace, and it can re-check the engine's trace
invariants (:mod:`repro.obs.invariants`) after every propagation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.apps.base import App
from repro.sac.engine import Engine


class VerificationError(AssertionError):
    """The self-adjusting output diverged from the reference."""


def values_close(a: Any, b: Any, rel: float = 1e-9) -> bool:
    """Structural comparison with float tolerance."""
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(float(a), float(b), rel_tol=rel, abs_tol=1e-12)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(values_close(x, y, rel) for x, y in zip(a, b))
    return a == b


@dataclass
class VerifyResult:
    name: str
    n: int
    changes: int
    reexecuted_total: int

    def __str__(self) -> str:
        return (
            f"{self.name}: n={self.n}, {self.changes} changes verified, "
            f"{self.reexecuted_total} reads re-executed"
        )


def verify_app(
    app: App,
    n: int,
    changes: int,
    seed: int = 0,
    *,
    memoize: bool = True,
    optimize_flag: bool = True,
    coarse: bool = False,
    check_conventional: bool = True,
    backend: Optional[str] = None,
) -> VerifyResult:
    """Run the Section 4.3 verification protocol for one application.

    ``backend`` selects the self-adjusting execution backend (``"interp"``
    or ``"compiled"``; ``None`` defers to ``REPRO_BACKEND``/default).
    """
    rng = random.Random(seed)
    program = app.compiled(
        memoize=memoize, optimize_flag=optimize_flag, coarse=coarse
    )
    data = app.make_data(n, rng)

    if check_conventional:
        conv = program.conventional_instance()
        conv_out = app.readback(conv.apply(app.make_conv_input(data)))
        expected = app.reference(data)
        if not values_close(conv_out, expected):
            raise VerificationError(
                f"{app.name}: conventional output diverges from reference\n"
                f"  got:      {conv_out!r}\n  expected: {expected!r}"
            )

    engine = Engine()
    instance = program.self_adjusting_instance(engine, backend=backend)
    input_value, handle = app.make_sa_input(engine, data)
    output = instance.apply(input_value)

    got = app.readback(output)
    expected = app.reference(data)
    if not values_close(got, expected):
        raise VerificationError(
            f"{app.name}: initial self-adjusting output diverges\n"
            f"  got:      {got!r}\n  expected: {expected!r}"
        )

    reexecuted = 0
    for step in range(changes):
        app.apply_change(handle, rng, step)
        reexecuted += engine.propagate()
        got = app.readback(output)
        expected = app.reference(app.handle_data(handle))
        if not values_close(got, expected):
            raise VerificationError(
                f"{app.name}: output diverges after change {step}\n"
                f"  got:      {got!r}\n  expected: {expected!r}"
            )
    return VerifyResult(app.name, n, changes, reexecuted)


@dataclass
class OracleResult:
    """Outcome of one :func:`oracle_app` run."""

    name: str
    n: int
    changes: int
    reexecuted_total: int
    invariant_checks: int

    def __str__(self) -> str:
        text = (
            f"{self.name}: n={self.n}, {self.changes} changes consistent "
            f"with from-scratch reruns, {self.reexecuted_total} reads re-executed"
        )
        if self.invariant_checks:
            text += f", {self.invariant_checks} invariant checks"
        return text


def oracle_app(
    app: App,
    n: int,
    changes: int,
    seed: int = 0,
    *,
    memoize: bool = True,
    optimize_flag: bool = True,
    coarse: bool = False,
    check_invariants: bool = True,
    check_reference: bool = True,
    backend: Optional[str] = None,
) -> OracleResult:
    """From-scratch-consistency oracle for one application.

    Runs the compiled program self-adjustingly, applies ``changes`` random
    input changes, and after each propagation asserts that the propagated
    output equals the output of a *from-scratch rerun* (a fresh engine and
    instance applied to the current input data).  With ``check_invariants``
    (default), an :class:`repro.obs.invariants.InvariantChecker` rides
    along, validating splice containment and queue ordering during every
    propagation and the structural trace invariants after it.
    """
    rng = random.Random(seed)
    program = app.compiled(
        memoize=memoize, optimize_flag=optimize_flag, coarse=coarse
    )
    data = app.make_data(n, rng)

    engine = Engine()
    checker = None
    if check_invariants:
        from repro.obs.invariants import InvariantChecker

        checker = InvariantChecker()
        engine.attach_hook(checker)
    instance = program.self_adjusting_instance(engine, backend=backend)
    input_value, handle = app.make_sa_input(engine, data)
    output = instance.apply(input_value)

    if check_reference:
        got = app.readback(output)
        expected = app.reference(data)
        if not values_close(got, expected):
            raise VerificationError(
                f"{app.name}: initial self-adjusting output diverges\n"
                f"  got:      {got!r}\n  expected: {expected!r}"
            )

    reexecuted = 0
    for step in range(changes):
        app.apply_change(handle, rng, step)
        reexecuted += engine.propagate()
        got = app.readback(output)

        # The oracle: a fresh self-adjusting run over the current data.
        current = app.handle_data(handle)
        scratch_engine = Engine()
        scratch = program.self_adjusting_instance(scratch_engine, backend=backend)
        scratch_input, _ = app.make_sa_input(scratch_engine, current)
        scratch_out = app.readback(scratch.apply(scratch_input))

        if not values_close(got, scratch_out):
            raise VerificationError(
                f"{app.name}: propagated output diverges from a "
                f"from-scratch rerun after change {step} (seed {seed})\n"
                f"  propagated:   {got!r}\n  from scratch: {scratch_out!r}"
            )
        if check_reference:
            expected = app.reference(current)
            if not values_close(got, expected):
                raise VerificationError(
                    f"{app.name}: output diverges from reference after "
                    f"change {step} (seed {seed})\n"
                    f"  got:      {got!r}\n  expected: {expected!r}"
                )
    return OracleResult(
        app.name,
        n,
        changes,
        reexecuted,
        checker.total_checks() if checker is not None else 0,
    )
