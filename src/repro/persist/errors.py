"""Typed failures of the durability subsystem.

The distinctions matter operationally: a :class:`SnapshotCorruptError`
(torn write, flipped bit, truncated section) and a
:class:`SnapshotMismatchError` (snapshot of a *different* program /
backend / mode / interpreter) are both recoverable by degrading to a cold
rebuild, while a :class:`SnapshotStateError` is a caller bug (snapshotting
mid-propagation) and a :class:`CodecError` means the object graph held
something the codec cannot round-trip.  The server's recovery ladder
catches :class:`PersistError` -- the common base -- and never lets any of
them poison the pool.
"""

from __future__ import annotations

__all__ = [
    "PersistError",
    "CodecError",
    "SnapshotStateError",
    "SnapshotFormatError",
    "SnapshotCorruptError",
    "SnapshotMismatchError",
    "JournalError",
    "JournalCorruptError",
]


class PersistError(Exception):
    """Base class for all durability failures."""


class CodecError(PersistError):
    """The object graph contains a value the codec cannot serialize or
    rebuild (with a breadcrumb path to the offending object)."""


class SnapshotStateError(PersistError):
    """Snapshot requested from a non-quiescent engine (mid-propagation,
    inside a batch/mod scope, or poisoned)."""


class SnapshotFormatError(PersistError):
    """Not a snapshot file at all (bad magic), or an unknown format
    version."""


class SnapshotCorruptError(PersistError):
    """A snapshot failed an integrity check: truncated file, section CRC
    mismatch, undecodable object table, or post-restore digest mismatch."""


class SnapshotMismatchError(PersistError):
    """A structurally valid snapshot whose content address does not match
    what the restorer is running: different compiled program, backend,
    mode, or an incompatible Python (``marshal`` bytecode is
    version-specific)."""


class JournalError(PersistError):
    """Base class for edit-journal failures."""


class JournalCorruptError(JournalError):
    """A journal record failed its CRC somewhere *before* the tail.  (A
    torn final record is the normal signature of a crash and is silently
    dropped; corruption earlier in the file is reported.)"""
