"""Durability for self-adjusting sessions (DESIGN.md Section 10).

Three layers, separable and composable:

* :mod:`repro.persist.codec` -- iterative flat-table serialization of a
  live engine's object graph (trace, order, memo table, cells, closures);
* :mod:`repro.persist.snapshot` -- versioned, CRC'd, content-addressed
  snapshot files plus ``save_session``/``load_session``;
* :mod:`repro.persist.journal` -- the fsync'd write-ahead edit journal
  whose replay over a restored snapshot makes acknowledged edits survive
  ``SIGKILL``.

The server's checkpointing (``SessionPool(checkpoint_dir=...)``) and the
``python -m repro snapshot`` CLI are thin drivers over these.
"""

from repro.persist.errors import (
    CodecError,
    JournalCorruptError,
    JournalError,
    PersistError,
    SnapshotCorruptError,
    SnapshotFormatError,
    SnapshotMismatchError,
    SnapshotStateError,
)
from repro.persist.journal import EditJournal, replay_journal
from repro.persist.snapshot import (
    FORMAT_VERSION,
    input_digest,
    inspect_snapshot,
    load_session,
    program_key,
    read_header,
    read_snapshot,
    save_session,
    write_snapshot,
)

__all__ = [
    "PersistError",
    "CodecError",
    "SnapshotStateError",
    "SnapshotFormatError",
    "SnapshotCorruptError",
    "SnapshotMismatchError",
    "JournalError",
    "JournalCorruptError",
    "EditJournal",
    "replay_journal",
    "save_session",
    "load_session",
    "inspect_snapshot",
    "program_key",
    "input_digest",
    "read_header",
    "read_snapshot",
    "write_snapshot",
    "FORMAT_VERSION",
]
