"""Write-ahead edit journal: fsync'd, CRC'd, replayable.

One JSON record per line, each carrying its own CRC32::

    {"seq": 17, "edits": [["cell:3", 2.5], ["cell:9", 0.0]]}\\t<crc32 hex>\\n

An edit is *durable* -- and may be acknowledged to a client -- once
:meth:`EditJournal.append` returns: the record is written, flushed, and
(by default) fsync'd first.  Recovery loads the last snapshot and replays
the journal suffix; because records carry absolute cell values (not
deltas), replaying records the snapshot already absorbed is a harmless
no-op (the engine's equality cutoff drops them), so the
checkpoint-then-truncate sequence needs no cross-file atomicity.

A torn final record is the normal signature of a crash mid-append and is
silently dropped.  A CRC failure *before* the tail is real corruption:
replay stops there and reports it (:class:`JournalCorruptError` carries
the records recovered so far), letting the caller keep the prefix or
degrade to a cold rebuild.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Iterator, List, Optional, Tuple

from repro.persist.errors import JournalCorruptError, JournalError

__all__ = ["EditJournal", "replay_journal"]


class EditJournal:
    """Appender for one document's write-ahead journal."""

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self.seq = 0
        self.appended = 0
        self._f = open(path, "ab")
        if self._f.tell():
            # Resuming an existing journal: continue the sequence.
            try:
                for seq, _edits in replay_journal(path):
                    self.seq = max(self.seq, seq)
            except JournalCorruptError as exc:
                self.seq = max((s for s, _e in exc.records), default=0)

    def append(self, edits: List[Tuple[str, Any]]) -> int:
        """Durably record one edit batch; returns its sequence number.

        ``edits`` is a list of ``(handle, value)`` pairs with
        JSON-representable values -- the same constraint the server
        protocol already imposes on cell values.
        """
        if self._f is None:
            raise JournalError("journal is closed")
        self.seq += 1
        try:
            body = json.dumps(
                {"seq": self.seq, "edits": [[h, v] for h, v in edits]},
                separators=(",", ":"),
            )
        except (TypeError, ValueError) as exc:
            self.seq -= 1
            raise JournalError(
                f"journal requires JSON-representable edit values: {exc}"
            ) from exc
        record = f"{body}\t{zlib.crc32(body.encode()):08x}\n"
        self._f.write(record.encode())
        self._f.flush()
        if self.fsync:
            os.fsync(self._f.fileno())
        self.appended += 1
        return self.seq

    def reset(self) -> None:
        """Truncate to empty (after a successful snapshot absorbed it)."""
        if self._f is None:
            raise JournalError("journal is closed")
        self._f.truncate(0)
        self._f.seek(0)
        self._f.flush()
        if self.fsync:
            os.fsync(self._f.fileno())
        self.seq = 0

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def __enter__(self) -> "EditJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def replay_journal(path: str) -> List[Tuple[int, List[Tuple[str, Any]]]]:
    """Parse a journal into ``[(seq, [(handle, value), ...]), ...]``.

    Missing file -> empty.  Torn final record -> dropped silently.  CRC or
    parse failure before the tail -> :class:`JournalCorruptError` with the
    clean prefix attached as ``exc.records``.
    """
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except FileNotFoundError:
        return []
    records: List[Tuple[int, List[Tuple[str, Any]]]] = []
    lines = blob.split(b"\n")
    # A well-formed file ends with a newline, so the final split element is
    # empty; anything after the last newline is a torn tail.
    torn_tail = lines.pop() != b""
    for i, line in enumerate(lines):
        if not line:
            continue
        parsed = _parse_record(line)
        if parsed is None:
            if i == len(lines) - 1:
                break  # torn last full line (crash mid-write, pre-newline data)
            exc = JournalCorruptError(
                f"journal record {i + 1} of {len(lines)} failed its CRC/parse "
                f"check in {path!r}"
            )
            exc.records = records
            raise exc
        records.append(parsed)
    del torn_tail  # (tail bytes after the last newline are ignored by design)
    return records


def _parse_record(line: bytes) -> Optional[Tuple[int, List[Tuple[str, Any]]]]:
    tab = line.rfind(b"\t")
    if tab < 0:
        return None
    body, crc_hex = line[:tab], line[tab + 1 :]
    try:
        if zlib.crc32(body) != int(crc_hex, 16):
            return None
        obj = json.loads(body)
        return int(obj["seq"]), [(str(h), v) for h, v in obj["edits"]]
    except (ValueError, KeyError, TypeError):
        return None
