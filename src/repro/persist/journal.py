"""Write-ahead edit journal: fsync'd, CRC'd, replayable.

One JSON record per line, each carrying its own CRC32::

    {"seq": 17, "edits": [["cell:3", 2.5], ["cell:9", 0.0]]}\\t<crc32 hex>\\n

An edit is *durable* -- and may be acknowledged to a client -- once
:meth:`EditJournal.append` returns: the record is written, flushed, and
(by default) fsync'd first.  Recovery loads the last snapshot and replays
the journal suffix; because records carry absolute cell values (not
deltas), replaying records the snapshot already absorbed is a harmless
no-op (the engine's equality cutoff drops them), so the
checkpoint-then-truncate sequence needs no cross-file atomicity.

A torn final record is the normal signature of a crash mid-append and is
dropped (with a log line when it parses as a complete line, since that
can also be corruption of an acknowledged record).  A CRC failure
*before* the tail is real corruption: replay stops there and reports it
(:class:`JournalCorruptError` carries the records recovered so far),
letting the caller keep the prefix or degrade to a cold rebuild.

Resuming an existing journal first truncates it back to the end of its
last clean record: appending after torn crash bytes would otherwise
merge the new record into one CRC-failing line, turning a recoverable
tail into what replay must treat as mid-file corruption -- silently
losing every record written after the resume.
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from typing import Any, List, Optional, Tuple

from repro.persist.errors import JournalCorruptError, JournalError

__all__ = ["EditJournal", "replay_journal"]

log = logging.getLogger("repro.persist.journal")


class EditJournal:
    """Appender for one document's write-ahead journal."""

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self.seq = 0
        self.appended = 0
        self._f = open(path, "ab")
        size = os.fstat(self._f.fileno()).st_size
        if size:
            # Resuming an existing journal: continue the sequence, and
            # cut the file back to the last clean record boundary so the
            # next append starts a fresh line (see the module docstring).
            with open(path, "rb") as existing:
                records, keep, _bad = _scan(existing.read())
            self.seq = max((s for s, _e in records), default=0)
            if keep != size:
                log.warning(
                    "journal %r: resuming past a torn/corrupt tail; "
                    "truncating %d byte(s) back to the last clean record "
                    "boundary (%d record(s) kept)",
                    path,
                    size - keep,
                    len(records),
                )
                self._f.truncate(keep)
                if self.fsync:
                    os.fsync(self._f.fileno())

    def encode(self, edits: List[Tuple[str, Any]]) -> bytes:
        """Serialize one edit batch to a complete journal record.

        Splitting :meth:`append` into encode + :meth:`commit` lets a
        caller validate serializability *before* mutating its own state:
        encode raises :class:`JournalError` on a non-JSON value with
        nothing written and no sequence number consumed.  The record is
        built for the *next* sequence number -- commit (or discard) it
        before encoding another.
        """
        if self._f is None:
            raise JournalError("journal is closed")
        try:
            body = json.dumps(
                {"seq": self.seq + 1, "edits": [[h, v] for h, v in edits]},
                separators=(",", ":"),
            )
        except (TypeError, ValueError) as exc:
            raise JournalError(
                f"journal requires JSON-representable edit values: {exc}"
            ) from exc
        return f"{body}\t{zlib.crc32(body.encode()):08x}\n".encode()

    def commit(self, record: bytes) -> int:
        """Durably write a record from :meth:`encode`; returns its seq.

        On an I/O failure any torn bytes of this record are truncated
        away (best effort) so the next append still starts on a clean
        record boundary, and the sequence number is not consumed.
        """
        if self._f is None:
            raise JournalError("journal is closed")
        start = os.fstat(self._f.fileno()).st_size
        try:
            self._f.write(record)
            self._f.flush()
            if self.fsync:
                os.fsync(self._f.fileno())
        except OSError:
            try:
                self._f.truncate(start)
            except OSError:
                pass  # the write failure is the primary error
            raise
        self.seq += 1
        self.appended += 1
        return self.seq

    def append(self, edits: List[Tuple[str, Any]]) -> int:
        """Durably record one edit batch; returns its sequence number.

        ``edits`` is a list of ``(handle, value)`` pairs with
        JSON-representable values -- the same constraint the server
        protocol already imposes on cell values.
        """
        return self.commit(self.encode(edits))

    def reset(self) -> None:
        """Truncate to empty (after a successful snapshot absorbed it)."""
        if self._f is None:
            raise JournalError("journal is closed")
        self._f.truncate(0)
        self._f.seek(0)
        self._f.flush()
        if self.fsync:
            os.fsync(self._f.fileno())
        self.seq = 0

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def __enter__(self) -> "EditJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def replay_journal(path: str) -> List[Tuple[int, List[Tuple[str, Any]]]]:
    """Parse a journal into ``[(seq, [(handle, value), ...]), ...]``.

    Missing file -> empty.  A torn tail (trailing bytes with no
    newline) -> dropped silently.  A complete final line that fails its
    CRC is also dropped -- a torn multi-page write can persist the
    trailing newline without the middle -- but logged, because it may
    instead be corruption of an acknowledged record.  CRC or parse
    failure *before* the tail -> :class:`JournalCorruptError` with the
    clean prefix attached as ``exc.records``.
    """
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except FileNotFoundError:
        return []
    records, _keep, bad = _scan(blob)
    if bad is not None:
        line_no, at_tail = bad
        if not at_tail:
            exc = JournalCorruptError(
                f"journal record at line {line_no} failed its CRC/parse "
                f"check in {path!r}"
            )
            exc.records = records
            raise exc
        log.warning(
            "journal %r: final record (line %d) failed its CRC check and "
            "was dropped; this is the torn-tail crash signature, but it "
            "may be corruption of an acknowledged record",
            path,
            line_no,
        )
    return records


def _scan(
    blob: bytes,
) -> Tuple[
    List[Tuple[int, List[Tuple[str, Any]]]], int, Optional[Tuple[int, bool]]
]:
    """Walk a journal's bytes; return ``(records, keep, bad)``.

    ``records`` is the parsed clean prefix; ``keep`` is the byte offset
    just past its last record -- the clean boundary a resuming appender
    must truncate back to; ``bad`` is ``None`` for a clean file or
    ``(line_no, at_tail)`` for the first complete line failing its
    CRC/parse check (``at_tail``: no later newline exists, i.e. it is
    the file's final complete line).
    """
    records: List[Tuple[int, List[Tuple[str, Any]]]] = []
    pos = keep = line_no = 0
    bad: Optional[Tuple[int, bool]] = None
    while pos < len(blob):
        nl = blob.find(b"\n", pos)
        if nl < 0:
            break  # torn tail: trailing bytes without a newline
        line = blob[pos:nl]
        line_no += 1
        if line:
            parsed = _parse_record(line)
            if parsed is None:
                bad = (line_no, blob.find(b"\n", nl + 1) < 0)
                break
            records.append(parsed)
        keep = pos = nl + 1
    return records, keep, bad


def _parse_record(line: bytes) -> Optional[Tuple[int, List[Tuple[str, Any]]]]:
    tab = line.rfind(b"\t")
    if tab < 0:
        return None
    body, crc_hex = line[:tab], line[tab + 1 :]
    try:
        if zlib.crc32(body) != int(crc_hex, 16):
            return None
        obj = json.loads(body)
        return int(obj["seq"]), [(str(h), v) for h, v in obj["edits"]]
    except (ValueError, KeyError, TypeError):
        return None
