"""Versioned, content-addressed snapshot files.

Layout (all after a fixed magic line)::

    #repro-snapshot 1\\n
    {json header}\\n          <- format/python versions, content address,
                                 section table (name, length, CRC32), meta
    <section bytes...>        <- concatenated, in section-table order

The single ``objects`` section is the :mod:`marshal`-serialized flat
object table produced by :mod:`repro.persist.codec`.  Every section
carries a CRC32; a torn tail, flipped bit, or truncated header fails
closed with :class:`SnapshotCorruptError` before any object is rebuilt.

The **content address** keys a snapshot to what produced it: the SHA-256
of the compiled (translated) SXML text and compiler options, the backend,
the propagation mode, and a digest of the marshalled input values.  A
restorer recomputes the program key from its own compilation and refuses
mismatches (:class:`SnapshotMismatchError`) -- restoring a raytracer trace
into an msort session, or an eager trace into a lazy engine, is detected
before decode.  The input digest is re-derived from the *decoded* graph as
an end-to-end integrity check behind the CRCs.

Snapshots are written atomically (temp file + fsync + rename) so a crash
mid-checkpoint leaves the previous snapshot intact.  They are a trusted
format: CRCs detect corruption, not tampering (``marshal`` is not designed
to reject adversarial bytecode) -- keep checkpoint directories as private
as the process state they mirror.
"""

from __future__ import annotations

import hashlib
import json
import marshal
import os
import sys
import time
import zlib
from typing import Any, Dict, Optional, Tuple

from repro.persist.codec import CODEC_VERSION, decode_graph, encode_graph
from repro.persist.errors import (
    SnapshotCorruptError,
    SnapshotFormatError,
    SnapshotMismatchError,
)
from repro.sac.modifiable import Modifiable

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "program_key",
    "input_digest",
    "write_snapshot",
    "read_snapshot",
    "read_header",
    "save_session",
    "load_session",
    "inspect_snapshot",
]

FORMAT_VERSION = 2
MAGIC = b"#repro-snapshot 1\n"

_PYTHON = "%d.%d" % sys.version_info[:2]


# ----------------------------------------------------------------------
# Content address


def program_key(program: Any, backend: str, mode: str) -> str:
    """SHA-256 content address of (compiled SXML, options, backend, mode)."""
    h = hashlib.sha256()
    h.update(program.dump_translated().encode())
    h.update(b"\x00")
    h.update(repr(program.options).encode())
    h.update(b"\x00")
    h.update(backend.encode())
    h.update(b"\x00")
    h.update(mode.encode())
    return h.hexdigest()


def input_digest(value: Any) -> str:
    """Deterministic digest of a runtime input value.

    Iterative (no recursion: inputs can be spine-deep lists) and
    sharing-aware: revisited objects hash as backreferences, so the digest
    of a decoded graph matches the original's iff the decoded topology
    does.  Computed at save over the session input and recomputed after
    decode as the end-to-end check behind the per-section CRCs.
    """
    from repro.interp.values import ConValue, RefCell

    h = hashlib.sha256()
    upd = h.update
    seen: Dict[int, int] = {}
    stack = [value]
    while stack:
        v = stack.pop()
        if v is None:
            upd(b"N")
            continue
        t = type(v)
        if t is bool or t is int or t is float or t is str:
            upd(repr(v).encode())
            upd(b";")
            continue
        if t is bytes:
            upd(b"B")
            upd(v)
            continue
        vid = id(v)
        idx = seen.get(vid)
        if idx is not None:
            upd(b"@%d" % idx)
            continue
        seen[vid] = len(seen)
        if t is tuple or t is list:
            upd(b"T%d;" % len(v))
            stack.extend(reversed(v))
        elif t is Modifiable:
            if v.written:
                upd(b"M")
                stack.append(v.value)
            else:
                upd(b"MU")
        elif t is ConValue:
            upd(b"C")
            upd(v.tag.encode())
            upd(b";")
            stack.append(v.arg)
        elif t is RefCell:
            upd(b"R")
            stack.append(v.value)
        elif t is dict:
            upd(b"D%d;" % len(v))
            for k, x in reversed(list(v.items())):
                stack.append(x)
                stack.append(k)
        else:
            upd(b"?")
            upd(type(v).__qualname__.encode())
            upd(b";")
    return h.hexdigest()


# ----------------------------------------------------------------------
# File I/O


def write_snapshot(path: str, header: dict, sections: Dict[str, bytes]) -> None:
    """Atomically write a snapshot file (temp + fsync + rename)."""
    table = []
    for name, data in sections.items():
        table.append({"name": name, "len": len(data), "crc": zlib.crc32(data)})
    header = dict(header)
    header["sections"] = table
    header_line = json.dumps(header, separators=(",", ":")).encode() + b"\n"
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as f:
        f.write(MAGIC)
        f.write(header_line)
        for _name, data in sections.items():
            f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


def _fsync_dir(dirname: str) -> None:
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _parse_header(blob: bytes) -> Tuple[dict, int]:
    if not blob.startswith(MAGIC):
        raise SnapshotFormatError("not a repro snapshot (bad magic)")
    end = blob.find(b"\n", len(MAGIC))
    if end < 0:
        raise SnapshotCorruptError("truncated snapshot: no header line")
    try:
        header = json.loads(blob[len(MAGIC) : end])
    except ValueError as exc:
        raise SnapshotCorruptError(f"corrupt snapshot header: {exc}") from exc
    if header.get("format") != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot format {header.get('format')!r}"
        )
    return header, end + 1


def read_header(path: str) -> dict:
    """Parse and validate only the header (cheap inspection)."""
    with open(path, "rb") as f:
        blob = f.read(1 << 20)
    header, _offset = _parse_header(blob)
    return header


def read_snapshot(path: str) -> Tuple[dict, Dict[str, bytes]]:
    """Read and CRC-verify a snapshot; returns (header, sections)."""
    with open(path, "rb") as f:
        blob = f.read()
    header, offset = _parse_header(blob)
    sections: Dict[str, bytes] = {}
    for entry in header.get("sections", []):
        name, length, crc = entry["name"], entry["len"], entry["crc"]
        data = blob[offset : offset + length]
        if len(data) != length:
            raise SnapshotCorruptError(
                f"truncated snapshot: section {name!r} is {len(data)} of "
                f"{length} bytes"
            )
        if zlib.crc32(data) != crc:
            raise SnapshotCorruptError(f"section {name!r} failed its CRC check")
        sections[name] = data
        offset += length
    return header, sections


# ----------------------------------------------------------------------
# Session-level save / load


def save_session(session: Any, path: str) -> dict:
    """Snapshot a quiescent :class:`repro.api.Session` to ``path``.

    Returns the written header.  The session itself is untouched (same
    engine, same trace); staged-but-unpropagated lazy state round-trips.
    """
    engine = session.engine
    engine.snapshot_precondition()
    root = {
        "engine": engine,
        "instance": session.instance,
        "input_handle": session.input_handle,
        "input_value": session.input_value,
        "output": session.output,
        "handles": session._handles,
        "handle_seq": session._handle_seq,
        "propagations": session.propagations,
        "demands": session.demands,
        "rebuilds": session.rebuilds,
    }
    doc = encode_graph(root)
    objects = marshal.dumps(doc)
    header = {
        "format": FORMAT_VERSION,
        "codec": CODEC_VERSION,
        "python": _PYTHON,
        "created": time.time(),
        "content": {
            "program_key": program_key(session.program, session.backend, session.mode),
            "backend": session.backend,
            "mode": session.mode,
            "app": session.app.name if session.app is not None else None,
            "input_digest": input_digest(session.input_value),
        },
        "meta": {
            "stamps": engine.order.n_live,
            "live_edges": engine.meter.live_edges,
            "live_memo_entries": engine.meter.live_memo_entries,
            "queued": len(engine.queue),
            "objects": len(doc["kinds"]),
        },
    }
    write_snapshot(path, header, {"objects": objects})
    return header


def load_session(
    path: str,
    app: Any = None,
    *,
    backend: Optional[str] = None,
    hook: Any = None,
    verify_digest: bool = True,
) -> Any:
    """Restore a :class:`repro.api.Session` from ``path``.

    ``app`` may be an app name, an :class:`repro.apps.base.App`, LML
    source, or a compiled program; when omitted, the app named in the
    snapshot header is looked up in the registry.  The restorer
    *recompiles* the program and checks the snapshot's content address
    against its own -- a snapshot of different code, backend, mode, or
    Python never decodes.
    """
    from repro.api import Session

    header, sections = read_snapshot(path)
    content = header["content"]
    if header.get("python") != _PYTHON:
        raise SnapshotMismatchError(
            f"snapshot was written by Python {header.get('python')}, "
            f"this is {_PYTHON} (marshal bytecode is version-specific)"
        )
    if header.get("codec") != CODEC_VERSION:
        raise SnapshotMismatchError(
            f"snapshot codec {header.get('codec')!r} != {CODEC_VERSION}"
        )
    if app is None:
        app = content.get("app")
        if app is None:
            raise SnapshotMismatchError(
                "snapshot names no registered app; pass app=/program explicitly"
            )
    session = Session(
        app,
        backend=backend if backend is not None else content["backend"],
        mode=content["mode"],
        hook=hook,
    )
    expected = program_key(session.program, session.backend, session.mode)
    if expected != content["program_key"]:
        raise SnapshotMismatchError(
            "content address mismatch: snapshot "
            f"{content['program_key'][:12]}.. vs live {expected[:12]}.. "
            "(different program, options, backend, or mode)"
        )
    try:
        doc = marshal.loads(sections["objects"])
    except (ValueError, EOFError, TypeError, KeyError) as exc:
        raise SnapshotCorruptError(f"object table failed to unmarshal: {exc}") from exc
    root = decode_graph(doc)
    if verify_digest:
        digest = input_digest(root["input_value"])
        if digest != content["input_digest"]:
            raise SnapshotCorruptError(
                "restored input digest does not match the snapshot's "
                "content address"
            )
    engine = root["engine"]
    session.engine = engine
    session.mode = engine.mode
    session.instance = root["instance"]
    session.input_handle = root["input_handle"]
    session.input_value = root["input_value"]
    session.output = root["output"]
    session._handles = root["handles"]
    session._handle_names = {id(mod): name for name, mod in root["handles"].items()}
    session._handle_seq = root["handle_seq"]
    session.propagations = root["propagations"]
    session.demands = root["demands"]
    session.rebuilds = root["rebuilds"]
    if hook is not None:
        engine.attach_hook(hook)
    return session


def inspect_snapshot(path: str) -> dict:
    """Header, content address, and sizes -- without decoding objects."""
    header = read_header(path)
    return {
        "path": path,
        "bytes": os.path.getsize(path),
        "format": header.get("format"),
        "codec": header.get("codec"),
        "python": header.get("python"),
        "created": header.get("created"),
        "content": header.get("content", {}),
        "meta": header.get("meta", {}),
        "sections": header.get("sections", []),
    }
