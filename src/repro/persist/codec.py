"""Flat object-graph codec for engine state.

``pickle`` cannot serialize a live DDG: the trace's reader callbacks are
nested function objects (closures staged by the backends), and the order
maintenance chain is a linked list tens of thousands of stamps deep, so
recursive serializers overflow even when the individual objects are
picklable.  This codec therefore flattens the graph into an integer-indexed
object table -- every compound object is one row (parallel ``kinds`` /
``payloads`` arrays) whose payload fields are *slots*: non-negative ints
index the table, negative ints a deduplicated literal pool.
Encoding and decoding are fully iterative (worklists, never Python
recursion), so trace depth is bounded only by memory.

The table itself contains nothing but scalars, lists, tuples and code
objects, which makes :mod:`marshal` -- CPython's own bytecode serializer --
a suitable wire format: it is iterative, fast, handles ``code`` objects
natively, and performs no attribute lookups or constructor calls on load
(untrusted-input hardening is the CRC/content-address layer's job, see
:mod:`repro.persist.snapshot`).  The cost is that snapshots are
CPython-minor-version-specific; the snapshot header records the version and
mismatches degrade to a cold rebuild.

Function objects are serialized as ``(code, module, defaults, closure
cells)``; their ``__globals__`` are rebound by importing ``__module__`` at
decode time.  This round-trips every closure the backends create, because
all of them are defined in importable ``repro.*`` modules (none are built
with ``exec``).  Hash-consed constructor values are rebuilt through the
intern table (:meth:`repro.sac.intern.InternTable.rehydrate`), preserving
the canonical-identity invariant that makes equality cutoffs and memo keys
identity-fast.  The order chain is restored under its *original* labels
(stamp keys are serialized verbatim and the bucket partition recovered
from them), so future relabel cascades -- which depend on label density --
cost exactly what they would have in the never-persisted engine, and the
propagation heap is rebuilt in pop order against those keys.
"""

from __future__ import annotations

import contextlib
import os
import functools
import gc
import importlib
import sys
import types
from typing import Any, Dict, List, Optional, Tuple

from repro.persist.errors import CodecError
from repro.sac.engine import Engine
from repro.sac.intern import INTERN
from repro.sac.modifiable import UNWRITTEN, Modifiable
from repro.sac.order import (
    LOCAL_BITS,
    LOCAL_MAX,
    Bucket,
    Order,
    Stamp,
)
from repro.sac.trace import MemoEntry, ReadEdge
from repro.interp.values import ConValue, RefCell, _MISSING

__all__ = ["encode_graph", "decode_graph", "CODEC_VERSION"]

#: Bumped whenever the table layout changes incompatibly.
CODEC_VERSION = 2

_INLINE_TYPES = (bool, int, float, str, bytes)

#: Kinds decoded as mutable shells in pass 1 and filled in pass 3.
_MUTABLE_KINDS = frozenset(
    [
        "list",
        "set",
        "dict",
        "obj",
        "mod",
        "ref",
        "cell",
        "stamp",
        "edge",
        "memo",
        "ord",
        "eng",
    ]
)


def _singletons() -> List[Tuple[Any, str, str]]:
    from repro.api import _UNSET  # deferred: api imports persist lazily too

    return [
        (UNWRITTEN, "repro.sac.modifiable", "UNWRITTEN"),
        (_MISSING, "repro.interp.values", "_MISSING"),
        (_UNSET, "repro.api", "_UNSET"),
    ]


@functools.lru_cache(maxsize=None)
def _import_module(module: str) -> Any:
    try:
        return importlib.import_module(module)
    except Exception as exc:
        raise CodecError(f"cannot import module {module!r}: {exc}") from exc


@contextlib.contextmanager
def _gc_paused():
    """Suspend the cyclic collector during a graph walk.

    Both codec passes allocate hundreds of thousands of objects that all
    survive; letting the generational collector trigger mid-walk adds
    full-heap scans for zero reclaimed garbage.
    """
    enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()


@functools.lru_cache(maxsize=None)
def _lookup_qualname(module: str, qualname: str) -> Any:
    target: Any = _import_module(module)
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError as exc:
            raise CodecError(f"{module}.{qualname} no longer exists") from exc
    return target


# ----------------------------------------------------------------------
# Encoding


class _Encoder:
    def __init__(self) -> None:
        self.objects: List[Any] = []
        self.ids: Dict[int, int] = {}
        self.pin: List[Any] = []  # keeps ids unique while we encode
        self.work: List[Tuple[int, Any]] = []
        self.code_ids: Dict[int, int] = {}
        self.singleton_ids = {id(obj): (mod, name) for obj, mod, name in _singletons()}
        self.literals: List[Any] = []
        self.lit_ids: Dict[Any, int] = {}

    # -- table management ----------------------------------------------

    def ref(self, v: Any) -> int:
        """Encode one value slot as a single int.

        Non-negative: object-table index.  Negative: ``-(i + 1)`` into
        the deduplicated literal pool (scalars repeat heavily -- shared
        floats, generation counters, flag booleans -- so pooling them
        shrinks the marshal blob and makes every slot a small int).
        """
        t = type(v)
        if v is None or t in _INLINE_TYPES:
            # Keyed by type too: 1 != 1.0 != True here.  Floats key on
            # their hex form so -0.0 and 0.0 stay distinct.
            key = (t.__name__, v.hex() if t is float else v)
            idx = self.lit_ids.get(key)
            if idx is None:
                idx = len(self.literals)
                self.literals.append(v)
                self.lit_ids[key] = idx
            return -idx - 1
        vid = id(v)
        idx = self.ids.get(vid)
        if idx is None:
            idx = len(self.objects)
            self.objects.append(None)
            self.ids[vid] = idx
            self.pin.append(v)
            self.work.append((idx, v))
        return idx

    def _code_ref(self, code: types.CodeType) -> int:
        idx = self.code_ids.get(id(code))
        if idx is None:
            idx = len(self.objects)
            self.objects.append(("code", code))
            self.code_ids[id(code)] = idx
            self.pin.append(code)
        return idx

    def encode(self, root: Any) -> dict:
        root_slot = self.ref(root)
        while self.work:
            idx, v = self.work.pop()
            self.objects[idx] = self._build(v)
        # Parallel arrays of tuple payloads instead of one list of
        # (kind, payload) list-rows: tuples of scalars are untracked by
        # the cyclic GC, which makes ``marshal.loads`` on a big snapshot
        # ~7x faster (no collector passes over 100k+ fresh lists) and
        # the blob ~15% smaller.
        kinds: List[str] = []
        payloads: List[Any] = []
        for kind, payload in self.objects:
            kinds.append(kind)
            payloads.append(payload)
        return {
            "codec": CODEC_VERSION,
            "kinds": kinds,
            "payloads": payloads,
            "literals": self.literals,
            "root": root_slot,
        }

    # -- per-kind builders ----------------------------------------------

    def _build(self, v: Any) -> Tuple[str, Any]:
        glob = self.singleton_ids.get(id(v))
        if glob is not None:
            return ("glob", glob)
        t = type(v)
        if t is tuple:
            return ("tup", tuple(self.ref(x) for x in v))
        if t is list:
            return ("list", tuple(self.ref(x) for x in v))
        if t is dict:
            return (
                "dict",
                tuple((self.ref(k), self.ref(x)) for k, x in v.items()),
            )
        if t is set:
            return ("set", tuple(self.ref(x) for x in v))
        if t is frozenset:
            return ("fset", tuple(self.ref(x) for x in v))
        if t is Modifiable:
            # fsum is an arbitrary-width int bitset; marshal handles big
            # ints natively, so the summary state rides along as scalars
            # (in_edges is rebuilt structurally at decode).
            return (
                "mod",
                (
                    self.ref(v.value),
                    tuple(self.ref(e) for e in v.readers),
                    bool(v.suspect),
                    v.fsum,
                    bool(v.fsum_valid),
                    v.root_bit,
                ),
            )
        if t is ConValue:
            return ("con", (v.tag, self.ref(v.arg), bool(v._hc)))
        if t is RefCell:
            return ("ref", (self.ref(v.value),))
        if t is Stamp:
            if not v.live:
                raise CodecError(
                    "dead stamp reached outside the engine's trace sections"
                )
            return ("stamp", (v.gen, self.ref(v.owner)))
        if t is ReadEdge:
            return self._build_edge(v)
        if t is MemoEntry:
            return self._build_memo(v)
        if t is types.FunctionType:
            return self._build_function(v)
        if t is types.MethodType:
            return self._build_method(v)
        if t is types.BuiltinFunctionType or t is types.BuiltinMethodType:
            owner = getattr(v, "__self__", None)
            if isinstance(owner, types.ModuleType):
                return ("glob", (owner.__name__, v.__name__))
            raise CodecError(f"cannot serialize builtin method {v!r}")
        if t is functools.partial:
            return (
                "part",
                (
                    self.ref(v.func),
                    tuple(self.ref(a) for a in v.args),
                    tuple(
                        (k, self.ref(x))
                        for k, x in (v.keywords or {}).items()
                    ),
                ),
            )
        if isinstance(v, type):
            return ("glob", (v.__module__, v.__qualname__))
        if t is types.ModuleType:
            return ("modu", v.__name__)
        if t is types.CellType:
            try:
                contents = v.cell_contents
            except ValueError:
                return ("cell", (False, self.ref(None)))
            return ("cell", (True, self.ref(contents)))
        if t is Engine:
            return self._build_engine(v)
        if t is Order or t is Bucket:
            raise CodecError(f"{t.__name__} reached outside its owning engine")
        return self._build_object(v)

    def _build_edge(self, e: ReadEdge) -> Tuple[str, Any]:
        if e.dead:
            # A discarded edge's interval stamps are dead (outside the
            # chain); the restored engine only needs the flags, and queue
            # rebuild resurrects a keyed tombstone for heap ordering.
            none = self.ref(None)
            return ("edge", (none, none, none, none, none, bool(e.dirty), True))
        return (
            "edge",
            (
                self.ref(e.mod),
                self.ref(e.reader),
                self.ref(e.start),
                self.ref(e.end),
                self.ref(e.dest),
                bool(e.dirty),
                False,
            ),
        )

    def _build_memo(self, m: MemoEntry) -> Tuple[str, Any]:
        if m.dead:
            none = self.ref(None)
            return ("memo", (self.ref(m.key), none, none, none, True))
        return (
            "memo",
            (
                self.ref(m.key),
                self.ref(m.result),
                self.ref(m.start),
                self.ref(m.end),
                False,
            ),
        )

    def _build_function(self, v: types.FunctionType) -> Tuple[str, Any]:
        module = v.__module__ or "builtins"
        qualname = v.__qualname__
        if "<locals>" not in qualname and "<lambda>" not in qualname:
            mod_obj = sys.modules.get(module)
            target: Any = mod_obj
            for part in qualname.split("."):
                target = getattr(target, part, None)
                if target is None:
                    break
            if target is v:
                # Module-level function (or method reached through its
                # class): restore by name, no bytecode needed.
                return ("glob", (module, qualname))
        defaults = (
            None
            if v.__defaults__ is None
            else tuple(self.ref(x) for x in v.__defaults__)
        )
        kwdefaults = (
            None
            if v.__kwdefaults__ is None
            else tuple((k, self.ref(x)) for k, x in v.__kwdefaults__.items())
        )
        closure = (
            ()
            if v.__closure__ is None
            else tuple(self.ref(c) for c in v.__closure__)
        )
        fdict = (
            tuple((k, self.ref(x)) for k, x in v.__dict__.items())
            if v.__dict__
            else ()
        )
        return (
            "func",
            (
                self._code_ref(v.__code__),
                module,
                v.__name__,
                qualname,
                defaults,
                kwdefaults,
                closure,
                fdict,
            ),
        )

    def _build_method(self, v: types.MethodType) -> Tuple[str, Any]:
        owner = v.__self__
        name = v.__func__.__name__
        if getattr(type(owner), name, None) is not v.__func__:
            raise CodecError(
                f"bound method {v!r} is not reachable as "
                f"{type(owner).__name__}.{name}"
            )
        return ("meth", (self.ref(owner), name))

    def _build_object(self, v: Any) -> Tuple[str, Any]:
        cls = type(v)
        module, qualname = cls.__module__, cls.__qualname__
        if "<locals>" in qualname:
            raise CodecError(f"cannot serialize instance of local class {cls!r}")
        if _lookup_qualname(module, qualname) is not cls:
            raise CodecError(f"class {module}.{qualname} does not resolve to {cls!r}")
        state: Dict[str, Any] = {}
        if hasattr(v, "__dict__"):
            state.update(v.__dict__)
        for klass in cls.__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot in ("__dict__", "__weakref__"):
                    continue
                try:
                    state[slot] = getattr(v, slot)
                except AttributeError:
                    pass
        return (
            "obj",
            (
                module,
                qualname,
                tuple((k, self.ref(x)) for k, x in state.items()),
            ),
        )

    # -- the engine ------------------------------------------------------

    def _build_engine(self, e: Engine) -> Tuple[str, Any]:
        e.snapshot_precondition()
        stamps = []  # base first, chain order
        keys = []
        for s in e.order:
            stamps.append(self.ref(s))
            keys.append(s.key)
        order_idx = len(self.objects)
        self.objects.append(
            (
                "ord",
                (
                    tuple(stamps),
                    tuple(keys),
                    e.order.epoch,
                    e.order.n_relabels,
                    e.order.stamps_allocated,
                    e.order.stamps_reused,
                ),
            )
        )
        self.ids[id(e.order)] = order_idx
        self.pin.append(e.order)
        alloc = []
        for key, (mod, stamp, gen) in e.alloc_table.items():
            stale = not stamp.live or stamp.gen != gen
            alloc.append(
                (
                    self.ref(key),
                    self.ref(mod),
                    self.ref(None) if stale else self.ref(stamp),
                    gen,
                )
            )
        return (
            "eng",
            {
                "mode": e.mode,
                "recursion_limit": e.recursion_limit,
                "order": order_idx,
                "now": self.ref(e.now),
                "queue": tuple(self.ref(edge) for edge in e.queue_pop_order()),
                "alloc": tuple(alloc),
                "memo": self.ref(e.memo_table),
                "meter": self.ref(e.meter),
                "suspects": self.ref(e._suspect_mods),
                "edit_log": self.ref(e._edit_log),
                "scalars": {
                    "_queue_peak": e._queue_peak,
                    "edges_reused": e.edges_reused,
                    "memo_entries_reused": e.memo_entries_reused,
                    "_drain_gen": e._drain_gen,
                    "_has_imperative": e._has_imperative,
                    "_dead_memo_entries": e._dead_memo_entries,
                    "compact_threshold": e.compact_threshold,
                    "_journal_enabled": e._journal_enabled,
                    "feeds_impl": e.feeds_impl,
                    "_feeds_summary": e._feeds_summary,
                    "_next_root_bit": e._next_root_bit,
                    "_dirty_roots": e._dirty_roots,
                    "_dirty_roots_exact": e._dirty_roots_exact,
                },
            },
        )


def encode_graph(root: Any) -> dict:
    """Flatten ``root``'s object graph into a marshal-able table."""
    with _gc_paused():
        return _Encoder().encode(root)


# ----------------------------------------------------------------------
# Decoding


_IMMUTABLE_KINDS = frozenset(["tup", "fset", "con", "func", "meth", "part"])

#: Fill order: trace records and containers first, then the order chain
#: (assigns fresh stamp keys), then the engine (reads those keys to
#: rebuild its propagation heap).
_FILL_ORDER = (
    "stamp",
    "edge",
    "memo",
    "mod",
    "ref",
    "cell",
    "list",
    "set",
    "dict",
    "obj",
    "ord",
    "eng",
)


class _Decoder:
    def __init__(self, doc: dict) -> None:
        if doc.get("codec") != CODEC_VERSION:
            raise CodecError(f"unsupported codec version {doc.get('codec')!r}")
        self.kinds: List[str] = doc["kinds"]
        self.payloads: List[Any] = doc["payloads"]
        self.literals: List[Any] = doc["literals"]
        self.root_slot = doc["root"]
        if len(self.kinds) != len(self.payloads):
            raise CodecError("kind/payload arrays disagree in length")
        n = len(self.kinds)
        self.out: List[Any] = [None] * n
        self.built = [False] * n

    def decode(self) -> Any:
        self._make_shells()
        self._build_immutables()
        self._fill_shells()
        return self.resolve(self.root_slot)

    # -- slot resolution -------------------------------------------------

    def resolve(self, slot: int) -> Any:
        if slot < 0:
            return self.literals[-1 - slot]
        if not self.built[slot]:
            raise CodecError(f"dangling reference to unbuilt object #{slot}")
        return self.out[slot]

    # -- pass 1: shells ---------------------------------------------------

    #: kind -> zero-arg shell factory (the "obj" kind, whose class comes
    #: from its payload, is handled separately).
    _SHELL_FACTORIES = {
        "list": list,
        "set": set,
        "dict": dict,
        "cell": types.CellType,
        "mod": functools.partial(object.__new__, Modifiable),
        "ref": functools.partial(object.__new__, RefCell),
        "stamp": functools.partial(object.__new__, Stamp),
        "edge": functools.partial(object.__new__, ReadEdge),
        "memo": functools.partial(object.__new__, MemoEntry),
        "ord": functools.partial(object.__new__, Order),
        "eng": functools.partial(object.__new__, Engine),
    }

    def _make_shells(self) -> None:
        out = self.out
        built = self.built
        factories = self._SHELL_FACTORIES
        new = object.__new__
        payloads = self.payloads
        for i, kind in enumerate(self.kinds):
            factory = factories.get(kind)
            if factory is not None:
                out[i] = factory()
                built[i] = True
            elif kind == "obj":
                payload = payloads[i]
                out[i] = new(_lookup_qualname(payload[0], payload[1]))
                built[i] = True

    # -- pass 2: immutables ----------------------------------------------

    def _imm_deps(self, i: int):
        kind = self.kinds[i]
        payload = self.payloads[i]
        slots: List[Any] = []
        if kind in ("tup", "fset"):
            slots = payload
        elif kind == "con":
            slots = [payload[1]]
        elif kind == "func":
            _code, _m, _n, _q, defaults, kwdefaults, closure, fdict = payload
            slots = list(closure)
            if defaults:
                slots.extend(defaults)
            if kwdefaults:
                slots.extend(s for _k, s in kwdefaults)
            slots.extend(s for _k, s in fdict)
        elif kind == "meth":
            slots = [payload[0]]
        elif kind == "part":
            slots = [payload[0], *payload[1], *[s for _k, s in payload[2]]]
        for slot in slots:
            if slot >= 0 and not self.built[slot]:
                yield slot

    def _build_immutables(self) -> None:
        built = self.built
        out = self.out
        for i, kind in enumerate(self.kinds):
            if built[i]:
                continue
            if kind in ("glob", "modu", "code"):
                out[i] = self._construct(i)
                built[i] = True
        # Fast path: the encoder's worklist hands children higher table
        # indexes than the parent that first references them, so one
        # reverse sweep builds nearly everything; only entries whose deps
        # were first referenced elsewhere (shared structure) fall through
        # to the cycle-checking DFS below.  Tuples and cons cells -- the
        # bulk of a trace's immutables -- are built inline.
        kinds = self.kinds
        payloads = self.payloads
        lits = self.literals
        rehydrate = INTERN.rehydrate
        for i in range(len(kinds) - 1, -1, -1):
            if built[i]:
                continue
            kind = kinds[i]
            payload = payloads[i]
            if kind == "tup":
                for s in payload:
                    if s >= 0 and not built[s]:
                        break
                else:
                    out[i] = tuple(
                        out[s] if s >= 0 else lits[-1 - s] for s in payload
                    )
                    built[i] = True
                continue
            if kind == "con":
                s = payload[1]
                if s < 0 or built[s]:
                    out[i] = rehydrate(
                        ConValue,
                        payload[0],
                        out[s] if s >= 0 else lits[-1 - s],
                        payload[2],
                    )
                    built[i] = True
                continue
            if next(self._imm_deps(i), None) is None:
                out[i] = self._construct(i)
                built[i] = True
        expanding: Dict[int, bool] = {}
        for start in range(len(kinds)):
            if self.built[start]:
                continue
            stack = [start]
            while stack:
                i = stack[-1]
                if self.built[i]:
                    stack.pop()
                    continue
                if expanding.get(i):
                    # Deps were pushed on the first visit; all built now.
                    for j in self._imm_deps(i):
                        raise CodecError(
                            f"cycle through immutable objects at #{i} -> #{j}"
                        )
                    self.out[i] = self._construct(i)
                    self.built[i] = True
                    stack.pop()
                    continue
                expanding[i] = True
                for j in self._imm_deps(i):
                    if expanding.get(j) and not self.built[j]:
                        raise CodecError(f"cycle through immutable objects at #{j}")
                    stack.append(j)

    def _construct(self, i: int) -> Any:
        kind = self.kinds[i]
        payload = self.payloads[i]
        if kind == "tup":
            return tuple(self.resolve(s) for s in payload)
        if kind == "fset":
            return frozenset(self.resolve(s) for s in payload)
        if kind == "con":
            tag, arg_slot, canonical = payload
            return INTERN.rehydrate(ConValue, tag, self.resolve(arg_slot), canonical)
        if kind == "glob":
            return _lookup_qualname(payload[0], payload[1])
        if kind == "modu":
            try:
                return importlib.import_module(payload)
            except Exception as exc:
                raise CodecError(f"cannot import module {payload!r}: {exc}") from exc
        if kind == "code":
            return payload
        if kind == "func":
            code_idx, module, name, qualname, defaults, kwdefaults, closure, fdict = (
                payload
            )
            code = self.out[code_idx]
            try:
                globals_dict = importlib.import_module(module).__dict__
            except Exception as exc:
                raise CodecError(
                    f"cannot rebind function {qualname!r}: module {module!r} "
                    f"failed to import ({exc})"
                ) from exc
            fn = types.FunctionType(
                code,
                globals_dict,
                name,
                None if defaults is None else tuple(self.resolve(s) for s in defaults),
                tuple(self.resolve(s) for s in closure) or None,
            )
            fn.__qualname__ = qualname
            if kwdefaults is not None:
                fn.__kwdefaults__ = {k: self.resolve(s) for k, s in kwdefaults}
            for k, s in fdict:
                fn.__dict__[k] = self.resolve(s)
            return fn
        if kind == "meth":
            owner = self.resolve(payload[0])
            return types.MethodType(getattr(type(owner), payload[1]), owner)
        if kind == "part":
            func = self.resolve(payload[0])
            args = [self.resolve(s) for s in payload[1]]
            kwargs = {k: self.resolve(s) for k, s in payload[2]}
            return functools.partial(func, *args, **kwargs)
        raise CodecError(f"unknown immutable kind {kind!r}")

    # -- pass 3: fills -----------------------------------------------------

    def _fill_shells(self) -> None:
        """Pass 3, one tight loop per kind in :data:`_FILL_ORDER`.

        By now every table entry is built, so slots resolve with a plain
        index: ``out[s]`` for references, ``lits[-1 - s]`` for pooled
        literals.  The per-kind loops (instead of a per-object dispatch
        chain) are what make decoding tens of thousands of trace records
        cheaper than re-executing the reads that created them.
        """
        by_kind: Dict[str, List[int]] = {}
        for i, kind in enumerate(self.kinds):
            if kind in _MUTABLE_KINDS:
                by_kind.setdefault(kind, []).append(i)
        payloads = self.payloads
        out = self.out
        lits = self.literals
        for kind in _FILL_ORDER:
            idxs = by_kind.get(kind)
            if not idxs:
                continue
            if kind == "stamp":
                for i in idxs:
                    payload = payloads[i]
                    obj = out[i]
                    obj.gen = payload[0]
                    s = payload[1]
                    obj.owner = out[s] if s >= 0 else lits[-1 - s]
            elif kind == "edge":
                for i in idxs:
                    p = payloads[i]
                    obj = out[i]
                    s = p[0]
                    obj.mod = out[s] if s >= 0 else lits[-1 - s]
                    s = p[1]
                    obj.reader = out[s] if s >= 0 else lits[-1 - s]
                    s = p[2]
                    obj.start = out[s] if s >= 0 else lits[-1 - s]
                    s = p[3]
                    obj.end = out[s] if s >= 0 else lits[-1 - s]
                    s = p[4]
                    obj.dest = out[s] if s >= 0 else lits[-1 - s]
                    obj.dirty = p[5]
                    obj.dead = p[6]
            elif kind == "memo":
                for i in idxs:
                    p = payloads[i]
                    obj = out[i]
                    s = p[0]
                    obj.key = out[s] if s >= 0 else lits[-1 - s]
                    s = p[1]
                    obj.result = out[s] if s >= 0 else lits[-1 - s]
                    s = p[2]
                    obj.start = out[s] if s >= 0 else lits[-1 - s]
                    s = p[3]
                    obj.end = out[s] if s >= 0 else lits[-1 - s]
                    obj.dead = p[4]
            elif kind == "mod":
                for i in idxs:
                    p = payloads[i]
                    obj = out[i]
                    s = p[0]
                    obj.value = out[s] if s >= 0 else lits[-1 - s]
                    obj.readers = {
                        out[s] if s >= 0 else lits[-1 - s] for s in p[1]
                    }
                    obj.suspect = p[2]
                    obj.fsum = p[3]
                    obj.fsum_valid = p[4]
                    obj.root_bit = p[5]
                    obj.in_edges = None
            elif kind == "ref":
                for i in idxs:
                    s = payloads[i][0]
                    out[i].value = out[s] if s >= 0 else lits[-1 - s]
            elif kind == "cell":
                for i in idxs:
                    p = payloads[i]
                    if p[0]:
                        s = p[1]
                        out[i].cell_contents = (
                            out[s] if s >= 0 else lits[-1 - s]
                        )
            elif kind == "list":
                for i in idxs:
                    out[i].extend(
                        out[s] if s >= 0 else lits[-1 - s]
                        for s in payloads[i]
                    )
            elif kind == "set":
                for i in idxs:
                    out[i].update(
                        out[s] if s >= 0 else lits[-1 - s]
                        for s in payloads[i]
                    )
            elif kind == "dict":
                for i in idxs:
                    obj = out[i]
                    for ks, vs in payloads[i]:
                        obj[out[ks] if ks >= 0 else lits[-1 - ks]] = (
                            out[vs] if vs >= 0 else lits[-1 - vs]
                        )
            elif kind == "obj":
                for i in idxs:
                    obj = out[i]
                    for name, s in payloads[i][2]:
                        setattr(
                            obj, name, out[s] if s >= 0 else lits[-1 - s]
                        )
            elif kind == "ord":
                for i in idxs:
                    self._fill_order(out[i], payloads[i])
            elif kind == "eng":
                for i in idxs:
                    self._fill_engine(out[i], payloads[i])

    def _fill_order(self, order: Order, payload: Any) -> None:
        """Relink the serialized stamp chain under its *original* labels.

        Each stamp's packed key (``bucket.label << LOCAL_BITS | local``) is
        serialized verbatim, so the bucket partition is recovered by
        grouping consecutive stamps that share ``key >> LOCAL_BITS``.
        Restoring the exact labels -- not just the relative order -- matters
        for meter parity: future relabel cascades (and hence ``queue_rekeys``
        / ``order.epoch`` churn) depend on label *density*, so a restored
        engine must start from the same partition the live engine had.
        """
        stamp_slots, keys, epoch, n_relabels, allocated, reused = payload
        stamps = [self.resolve(s) for s in stamp_slots]
        if not stamps:
            raise CodecError("order chain must contain at least the base stamp")
        if len(keys) != len(stamps):
            raise CodecError("order key list does not match the stamp chain")
        local_mask = LOCAL_MAX - 1
        base = stamps[0]
        bucket = Bucket(keys[0] >> LOCAL_BITS)
        base.bucket = bucket
        base.local = keys[0] & local_mask
        base.key = keys[0]
        base.prev = None
        base.live = True
        bucket.first = base
        bucket.count = 1
        n_buckets = 1
        prev = base
        for s, key in zip(stamps[1:], keys[1:]):
            label = key >> LOCAL_BITS
            if label != bucket.label:
                if label < bucket.label:
                    raise CodecError("order bucket labels must increase")
                nxt_bucket = Bucket(label)
                nxt_bucket.prev = bucket
                bucket.next = nxt_bucket
                bucket = nxt_bucket
                n_buckets += 1
            s.bucket = bucket
            s.local = key & local_mask
            s.key = key
            s.live = True
            s.prev = prev
            prev.next = s
            if bucket.first is None:
                bucket.first = s
            bucket.count += 1
            prev = s
        prev.next = None
        order.base = base
        order._base_bucket = base.bucket
        order._first_bucket = base.bucket
        order._last_bucket = bucket
        order._last = prev
        order.n_live = len(stamps)
        order.n_buckets = n_buckets
        order.n_relabels = n_relabels
        order.epoch = epoch
        order._pool = []
        order.stamps_allocated = allocated
        order.stamps_reused = reused

    def _fill_engine(self, e: Engine, payload: dict) -> None:
        order: Order = self.resolve(payload["order"])
        mode = payload["mode"]
        e.mode = mode
        e.lazy = mode == "lazy"
        e.recursion_limit = payload["recursion_limit"]
        if sys.getrecursionlimit() < e.recursion_limit:
            sys.setrecursionlimit(e.recursion_limit)
        e.order = order
        e.now = self.resolve(payload["now"])
        e._insert_after = order.insert_after
        alloc: Dict[Any, Tuple[Modifiable, Stamp, int]] = {}
        for key_slot, mod_slot, stamp_slot, gen in payload["alloc"]:
            stamp = self.resolve(stamp_slot)
            if stamp is None:
                stamp = _dead_stamp(0, gen)
            alloc[self.resolve(key_slot)] = (self.resolve(mod_slot), stamp, gen)
        e.alloc_table = alloc
        for name, value in payload["scalars"].items():
            setattr(e, name, value)
        e.install_queue([self.resolve(s) for s in payload["queue"]])
        e.memo_table = self.resolve(payload["memo"])
        e.meter = self.resolve(payload["meter"])
        e._suspect_mods = self.resolve(payload["suspects"])
        e._edit_log = self.resolve(payload["edit_log"])
        # Quiescent-state defaults: pools empty, no hook, no propagation
        # in flight.  (Reuse counters were restored verbatim above; empty
        # pools only mean the first few discards allocate fresh records.)
        e._edge_pool = []
        e._memo_pool = []
        e.reuse_limit = None
        e._mod_depth = 0
        e._reexec_depth = 0
        e._dest_stack = []
        e._drain_feeds = None
        e._demand_reads = {}
        e._demand_degrade = False
        e.propagating = False
        e._batch_depth = 0
        e._batch_changes = 0
        e._poison = None
        e.hook = None
        e._drain_mask = None
        e._deferred_deaths = []
        # Debug-only flag: never persisted, always re-derived from the
        # restoring process's environment (like Engine.__init__).
        e.feeds_oracle = os.environ.get(
            "REPRO_FEEDS_ORACLE", ""
        ).strip().lower() in ("1", "true", "yes", "on")
        if e._feeds_summary:
            # The reverse index is pure structure: every live reader edge
            # with a destination is a feeder of that destination.  The
            # serialized fsum/fsum_valid/root_bit fields are meter-exact
            # state; in_edges is rebuilt rather than serialized because
            # the edge set is already in the snapshot and a second
            # per-edge reference table would only bloat the blob.
            for stamp in e.order:
                owner = stamp.owner
                if (
                    type(owner) is ReadEdge
                    and not owner.dead
                    and owner.start is stamp
                ):
                    d = owner.dest
                    if d is not None:
                        ie = d.in_edges
                        if ie is None:
                            d.in_edges = {owner}
                        else:
                            ie.add(owner)


def _dead_stamp(key: int, gen: int) -> Stamp:
    """A keyed tombstone: enough stamp for heap re-keying and staleness
    checks, deliberately outside any order chain."""
    s = object.__new__(Stamp)
    s.key = key
    s.local = 0
    s.bucket = None
    s.prev = None
    s.next = None
    s.live = False
    s.gen = gen
    s.owner = None
    return s


def decode_graph(doc: dict) -> Any:
    """Rebuild the object graph flattened by :func:`encode_graph`."""
    with _gc_paused():
        return _Decoder(doc).decode()
