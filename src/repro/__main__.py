"""Command-line interface: compile and inspect LML programs.

Usage::

    python -m repro compile program.lml            # type-check + translate
    python -m repro compile program.lml --dump     # print the target code
    python -m repro compile program.lml --dump-conventional
    python -m repro compile program.lml --no-optimize --dump
    python -m repro compile program.lml --counts   # mod/read/write/memo
    python -m repro verify <app> [-n N] [--changes K]   # Section 4.3 check
    python -m repro apps                           # list benchmark apps

The ``verify`` subcommand runs the paper's random-change correctness
protocol against one of the bundled benchmark applications.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.pipeline import compile_program
    from repro.lang.errors import LmlError

    try:
        with open(args.file) as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        program = compile_program(
            source,
            memoize=not args.no_memoize,
            optimize_flag=not args.no_optimize,
            coarse=args.coarse,
            main=args.main,
        )
    except LmlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"compiled OK (main: {args.main})")
    if args.counts or not (args.dump or args.dump_conventional):
        counts = program.primitive_counts()
        print(
            "self-adjusting primitives: "
            + ", ".join(f"{k}={v}" for k, v in counts.items())
        )
    if args.dump_conventional:
        print("\n--- conventional SXML ---")
        print(program.dump_conventional())
    if args.dump:
        print("\n--- translated self-adjusting SXML ---")
        print(program.dump_translated())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.apps import REGISTRY
    from repro.testing import VerificationError, verify_app

    if args.app not in REGISTRY:
        print(f"error: unknown app {args.app!r}; see `python -m repro apps`",
              file=sys.stderr)
        return 1
    try:
        result = verify_app(
            REGISTRY[args.app], n=args.n, changes=args.changes, seed=args.seed
        )
    except VerificationError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {result}")
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import REGISTRY

    for name in sorted(REGISTRY):
        print(name)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile an LML source file")
    p_compile.add_argument("file")
    p_compile.add_argument("--main", default="main", help="entry binding")
    p_compile.add_argument("--dump", action="store_true",
                           help="print the translated self-adjusting code")
    p_compile.add_argument("--dump-conventional", action="store_true",
                           help="print the pre-translation SXML")
    p_compile.add_argument("--counts", action="store_true",
                           help="print mod/read/write/memo counts")
    p_compile.add_argument("--no-optimize", action="store_true",
                           help="disable the Section 3.4 rewrite rules")
    p_compile.add_argument("--no-memoize", action="store_true",
                           help="disable memoized applications")
    p_compile.add_argument("--coarse", action="store_true",
                           help="CPS-emulation mode (extra indirections)")
    p_compile.set_defaults(fn=_cmd_compile)

    p_verify = sub.add_parser(
        "verify", help="run the Section 4.3 random-change verification"
    )
    p_verify.add_argument("app")
    p_verify.add_argument("-n", type=int, default=32, help="input size")
    p_verify.add_argument("--changes", type=int, default=10)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.set_defaults(fn=_cmd_verify)

    p_apps = sub.add_parser("apps", help="list the bundled benchmark apps")
    p_apps.set_defaults(fn=_cmd_apps)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
