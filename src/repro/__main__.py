"""Command-line interface: compile and inspect LML programs.

Usage::

    python -m repro compile program.lml            # type-check + translate
    python -m repro compile program.lml --dump     # print the target code
    python -m repro compile program.lml --dump-conventional
    python -m repro compile program.lml --no-optimize --dump
    python -m repro compile program.lml --counts   # mod/read/write/memo
    python -m repro verify <app> [-n N] [--changes K] [--mode lazy]
    python -m repro trace <app> [-n N] [--changes K] [--out DIR]
    python -m repro chaos <app> [-n N] [--site S] [--mode M]  # fault inject
    python -m repro profile <app> [-n N] [--changes K]  # engine hot-path profile
    python -m repro snapshot save <app> <file> [-n N] [--changes K]
    python -m repro snapshot load <file> [--check]
    python -m repro snapshot inspect <file>
    python -m repro apps                           # list benchmark apps

The ``verify`` subcommand runs the paper's random-change correctness
protocol against one of the bundled benchmark applications.

``verify`` and ``trace`` accept ``--backend {interp,compiled,stack}`` to select
the self-adjusting execution backend: the tree-walking interpreter or the
closure-compilation backend (README "Backends").  The default comes from
the ``REPRO_BACKEND`` environment variable (``interp`` if unset).

The ``trace`` subcommand runs an application under full observability:
it records the structured engine event stream, validates the trace
invariants during and after every change propagation, and dumps dynamic-
dependence-graph snapshots (JSON + Graphviz DOT) plus the event log.

The ``chaos`` subcommand exercises the failure model (DESIGN.md
Section 7): it plants deterministic exceptions at trace sites during
change propagation, recovers via ``Session.propagate(on_error=...)``,
and checks the recovered output against a from-scratch oracle.

The ``profile`` subcommand runs an app end to end and reports per-phase
wall time and meter deltas, the engine's order-maintenance / dirty-queue /
free-list statistics, the intern table profile, and (by default) the top
propagation call sites by internal time.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.backends import BACKENDS


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.pipeline import compile_program
    from repro.lang.errors import LmlError

    try:
        with open(args.file) as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        program = compile_program(
            source,
            memoize=not args.no_memoize,
            optimize_flag=not args.no_optimize,
            coarse=args.coarse,
            main=args.main,
        )
    except LmlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"compiled OK (main: {args.main})")
    if args.counts or not (args.dump or args.dump_conventional):
        counts = program.primitive_counts()
        print(
            "self-adjusting primitives: "
            + ", ".join(f"{k}={v}" for k, v in counts.items())
        )
    if args.dump_conventional:
        print("\n--- conventional SXML ---")
        print(program.dump_conventional())
    if args.dump:
        print("\n--- translated self-adjusting SXML ---")
        print(program.dump_translated())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.api import VerificationError, verify_app
    from repro.apps import REGISTRY

    if args.app not in REGISTRY:
        print(f"error: unknown app {args.app!r}; see `python -m repro apps`",
              file=sys.stderr)
        return 1
    try:
        result = verify_app(
            REGISTRY[args.app],
            n=args.n,
            changes=args.changes,
            seed=args.seed,
            backend=args.backend,
            batch=args.batch,
            mode=args.mode,
        )
    except (ValueError, VerificationError) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {result}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import random

    from repro.apps import REGISTRY
    from repro.obs import (
        EventLog,
        FanoutHook,
        InvariantChecker,
        InvariantViolation,
        check_trace,
    )
    from repro.api import Session, VerificationError, values_close

    if args.app not in REGISTRY:
        print(f"error: unknown app {args.app!r}; see `python -m repro apps`",
              file=sys.stderr)
        return 1
    app = REGISTRY[args.app]
    rng = random.Random(args.seed)
    data = app.make_data(args.n, rng)

    log = EventLog(maxlen=args.max_events, values=args.values)
    hooks = [log]
    checker = None
    if not args.no_check:
        checker = InvariantChecker()
        hooks.append(checker)

    session = Session(app, backend=args.backend, hook=FanoutHook(hooks))
    engine = session.engine
    output = session.run(data=data)
    try:
        if checker is not None:
            check_trace(engine)
        for step in range(args.changes):
            app.apply_change(session.input_handle, rng, step)
            session.propagate()
        got = app.readback(output)
        expected = app.reference(app.handle_data(session.input_handle))
        if not values_close(got, expected):
            raise VerificationError(
                f"output diverges from reference\n"
                f"  got:      {got!r}\n  expected: {expected!r}"
            )
    except (InvariantViolation, VerificationError) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        # Dump what we have: the broken trace is the debugging artifact.
        _write_trace_dumps(args, engine, log)
        return 1

    paths = _write_trace_dumps(args, engine, log)
    counts = log.counts()
    print(f"{app.name}: n={args.n}, {args.changes} change(s) propagated")
    print("events: " + ", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    meter = engine.meter.snapshot()
    print("meter:  " + ", ".join(f"{k}={v}" for k, v in sorted(meter.items())))
    if checker is not None:
        print(f"invariants: OK ({checker.total_checks()} checks; "
              f"{checker.last_report or check_trace(engine)})")
    for path in paths:
        print(f"wrote {path}")
    return 0


def _write_trace_dumps(args, engine, log) -> list:
    """Write the DDG JSON/DOT snapshots and the event log; return paths."""
    import os

    from repro.obs import ddg_dot, ddg_json

    os.makedirs(args.out, exist_ok=True)
    base = os.path.join(args.out, args.app)
    paths = []
    if args.format in ("json", "both"):
        path = base + ".ddg.json"
        with open(path, "w") as fh:
            fh.write(ddg_json(engine, values=args.values) + "\n")
        paths.append(path)
    if args.format in ("dot", "both"):
        path = base + ".ddg.dot"
        with open(path, "w") as fh:
            fh.write(ddg_dot(engine, values=args.values, title=args.app) + "\n")
        paths.append(path)
    if args.events:
        path = base + ".events.jsonl"
        with open(path, "w") as fh:
            fh.write(log.to_jsonl() + "\n")
        paths.append(path)
    return paths


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.apps import REGISTRY
    from repro.obs.faults import SITES, ChaosError, chaos_app
    from repro.obs.invariants import InvariantViolation

    if args.app not in REGISTRY:
        print(f"error: unknown app {args.app!r}; see `python -m repro apps`",
              file=sys.stderr)
        return 1
    sites = tuple(args.site) if args.site else ("read", "mod", "write", "memo-hit")
    for site in sites:
        if site not in SITES:
            print(f"error: unknown site {site!r}; expected one of "
                  f"{sorted(SITES)}", file=sys.stderr)
            return 1
    modes = tuple(args.mode) if args.mode else ("rollback", "rebuild")
    try:
        result = chaos_app(
            REGISTRY[args.app],
            args.n,
            backend=args.backend,
            sites=sites,
            modes=modes,
            changes=args.changes,
            seed=args.seed,
            propagation=args.propagation,
        )
    except (ChaosError, InvariantViolation) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {result}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.apps import REGISTRY
    from repro.obs.profile import profile_app

    if args.app not in REGISTRY:
        print(f"error: unknown app {args.app!r}; see `python -m repro apps`",
              file=sys.stderr)
        return 1
    report = profile_app(
        args.app,
        n=args.n,
        changes=args.changes,
        seed=args.seed,
        backend=args.backend,
        top=args.top,
        callsites=not args.no_callsites,
        events=args.events,
        mode=args.mode,
    )
    print(report.format())
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    import json as _json
    import random

    from repro.api import Session
    from repro.apps import REGISTRY
    from repro.persist import PersistError, inspect_snapshot

    try:
        if args.action == "inspect":
            print(_json.dumps(inspect_snapshot(args.file), indent=2))
            return 0
        if args.action == "save":
            if args.app not in REGISTRY:
                print(
                    f"error: unknown app {args.app!r}; see "
                    f"`python -m repro apps`",
                    file=sys.stderr,
                )
                return 1
            app = REGISTRY[args.app]
            rng = random.Random(args.seed)
            session = Session(app, backend=args.backend, mode=args.mode)
            session.run(data=app.make_data(args.n, rng))
            for step in range(args.changes):
                app.apply_change(session.input_handle, rng, step)
                if args.mode == "lazy":
                    session.demand()
                else:
                    session.propagate()
            header = session.snapshot(args.file)
            meta = header["meta"]
            print(
                f"saved {args.app} [{session.backend}/{session.mode}] "
                f"n={args.n} changes={args.changes} -> {args.file}: "
                f"{meta['objects']} objects, {meta['stamps']} stamps, "
                f"{meta['live_edges']} edges, key "
                f"{header['content']['program_key'][:12]}.."
            )
            return 0
        # load
        session = Session.restore(
            args.file, args.app, backend=args.backend
        )
        name = session.app.name if session.app is not None else "<source>"
        print(
            f"restored {name} [{session.backend}/{session.mode}] "
            f"from {args.file}: trace={session.trace_size()}, "
            f"queued={len(session.engine.queue)}"
        )
        if args.check:
            from repro.api import values_close

            app = session.app
            if session.engine.queue:
                if session.mode == "lazy":
                    session.demand()
                else:
                    session.propagate()
            got = app.readback(session.output)
            expected = app.reference(app.handle_data(session.input_handle))
            if not values_close(got, expected):
                print(
                    f"CHECK FAILED: restored output {got!r} != "
                    f"reference {expected!r}",
                    file=sys.stderr,
                )
                return 1
            print("check OK: restored output matches the reference")
        return 0
    except BrokenPipeError:
        raise  # handled by main(): downstream pager closed the pipe
    except (PersistError, OSError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import REGISTRY

    for name in sorted(REGISTRY):
        print(name)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import SessionPool, serve

    async def run() -> int:
        pool = SessionPool(
            mode=args.mode,
            backend=args.backend,
            slice_budget=args.slice_budget,
            on_error=args.on_error,
            max_sessions=args.max_sessions,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            journal_fsync=not args.no_journal_fsync,
            max_edits_per_round=args.max_edits_per_round,
            max_bytes_per_round=args.max_bytes_per_round,
        )
        if args.unix:
            server = await serve(
                pool, path=args.unix, max_frame=args.max_frame
            )
            where = args.unix
        else:
            server = await serve(
                pool, host=args.host, port=args.port,
                max_frame=args.max_frame,
            )
            sock = server.sockets[0].getsockname()
            where = f"{sock[0]}:{sock[1]}"
        print(
            f"serving session pool on {where} "
            f"(mode={args.mode}, slice_budget={args.slice_budget}, "
            f"on_error={args.on_error}"
            + (
                f", checkpoint_dir={args.checkpoint_dir}"
                if args.checkpoint_dir
                else ""
            )
            + ")",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            server.close()
            await server.wait_closed()
            await pool.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile an LML source file")
    p_compile.add_argument("file")
    p_compile.add_argument("--main", default="main", help="entry binding")
    p_compile.add_argument("--dump", action="store_true",
                           help="print the translated self-adjusting code")
    p_compile.add_argument("--dump-conventional", action="store_true",
                           help="print the pre-translation SXML")
    p_compile.add_argument("--counts", action="store_true",
                           help="print mod/read/write/memo counts")
    p_compile.add_argument("--no-optimize", action="store_true",
                           help="disable the Section 3.4 rewrite rules")
    p_compile.add_argument("--no-memoize", action="store_true",
                           help="disable memoized applications")
    p_compile.add_argument("--coarse", action="store_true",
                           help="CPS-emulation mode (extra indirections)")
    p_compile.set_defaults(fn=_cmd_compile)

    p_verify = sub.add_parser(
        "verify", help="run the Section 4.3 random-change verification"
    )
    p_verify.add_argument("app")
    p_verify.add_argument("-n", type=int, default=32, help="input size")
    p_verify.add_argument("--changes", type=int, default=10)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="self-adjusting execution backend: the tree-walking "
             "interpreter or the closure-compilation backend "
             "(default: $REPRO_BACKEND, else interp)",
    )
    p_verify.add_argument(
        "--batch", type=int, default=1,
        help="coalesce this many changes per propagation pass (default 1)",
    )
    p_verify.add_argument(
        "--mode", choices=["eager", "lazy"], default="eager",
        help="propagation discipline: eager drains the whole dirty queue "
             "per change; lazy demands the output instead, re-executing "
             "only the dirty work that feeds it (default eager)",
    )
    p_verify.set_defaults(fn=_cmd_verify)

    p_trace = sub.add_parser(
        "trace",
        help="run an app under full observability: event log, invariant "
             "checks, DDG dumps",
    )
    p_trace.add_argument("app")
    p_trace.add_argument("-n", type=int, default=16, help="input size")
    p_trace.add_argument("--changes", type=int, default=1,
                         help="random changes to propagate (default 1)")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default=".",
                         help="directory for the dump files (default .)")
    p_trace.add_argument("--format", choices=["json", "dot", "both"],
                         default="both", help="DDG snapshot format(s)")
    p_trace.add_argument("--events", action="store_true",
                         help="also dump the event log as JSONL")
    p_trace.add_argument("--values", action="store_true",
                         help="include value reprs in events and DDG nodes")
    p_trace.add_argument("--max-events", type=int, default=1_000_000,
                         help="event log capacity (oldest dropped first)")
    p_trace.add_argument("--no-check", action="store_true",
                         help="disable the trace invariant checker")
    p_trace.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="self-adjusting execution backend (default: $REPRO_BACKEND, "
             "else interp); both emit identical traces and events",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_chaos = sub.add_parser(
        "chaos",
        help="inject deterministic faults during propagation and verify "
             "recovery against a from-scratch oracle",
    )
    p_chaos.add_argument("app")
    p_chaos.add_argument("-n", type=int, default=16, help="input size")
    p_chaos.add_argument("--changes", type=int, default=3,
                         help="input changes per scenario (default 3)")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--site", action="append", default=None,
        help="trace site(s) to inject at (repeatable; default: "
             "read, mod, write, memo-hit)",
    )
    p_chaos.add_argument(
        "--mode", action="append", choices=["rollback", "rebuild"],
        default=None,
        help="recovery mode(s) to exercise (repeatable; default both)",
    )
    p_chaos.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="self-adjusting execution backend (default: $REPRO_BACKEND, "
             "else interp)",
    )
    p_chaos.add_argument(
        "--propagation", choices=["eager", "lazy"], default="eager",
        help="run the sweep on eager propagations or on lazy demand "
             "walks (default eager)",
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_profile = sub.add_parser(
        "profile",
        help="per-phase engine profile: wall time, meter deltas, order/"
             "queue/pool statistics, top propagation call sites",
    )
    p_profile.add_argument("app")
    p_profile.add_argument("-n", type=int, default=64, help="input size")
    p_profile.add_argument("--changes", type=int, default=8,
                           help="random changes to propagate (default 8)")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--top", type=int, default=10,
                           help="call sites to list (default 10)")
    p_profile.add_argument("--no-callsites", action="store_true",
                           help="skip cProfile over the propagation phase")
    p_profile.add_argument("--events", action="store_true",
                           help="attach an event log and report per-phase "
                                "event counts (disables record pooling)")
    p_profile.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="self-adjusting execution backend (default: $REPRO_BACKEND, "
             "else interp)",
    )
    p_profile.add_argument(
        "--mode", choices=["eager", "lazy"], default="eager",
        help="propagation mode: lazy follows each change with a demand "
             "of the output's surface, so the feeds: line shows live "
             "laziness counters",
    )
    p_profile.set_defaults(fn=_cmd_profile)

    p_snapshot = sub.add_parser(
        "snapshot",
        help="save, restore, or inspect content-addressed session "
             "snapshots (DESIGN.md Section 10)",
    )
    snap_sub = p_snapshot.add_subparsers(dest="action", required=True)
    p_snap_save = snap_sub.add_parser(
        "save", help="run an app and snapshot the live session"
    )
    p_snap_save.add_argument("app")
    p_snap_save.add_argument("file")
    p_snap_save.add_argument("-n", type=int, default=64, help="input size")
    p_snap_save.add_argument("--changes", type=int, default=0,
                             help="random changes to absorb before saving")
    p_snap_save.add_argument("--seed", type=int, default=0)
    p_snap_save.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="self-adjusting execution backend (default: $REPRO_BACKEND, "
             "else interp)",
    )
    p_snap_save.add_argument("--mode", choices=["eager", "lazy"],
                             default="eager")
    p_snap_save.set_defaults(fn=_cmd_snapshot)
    p_snap_load = snap_sub.add_parser(
        "load", help="restore a session from a snapshot file"
    )
    p_snap_load.add_argument("file")
    p_snap_load.add_argument("--app", default=None,
                             help="override the app recorded in the header")
    p_snap_load.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="must match the snapshot's backend (content-addressed)",
    )
    p_snap_load.add_argument("--check", action="store_true",
                             help="verify the restored output against the "
                                  "app's reference function")
    p_snap_load.set_defaults(fn=_cmd_snapshot)
    p_snap_inspect = snap_sub.add_parser(
        "inspect", help="print a snapshot's header without decoding it"
    )
    p_snap_inspect.add_argument("file")
    p_snap_inspect.set_defaults(fn=_cmd_snapshot)

    p_apps = sub.add_parser("apps", help="list the bundled benchmark apps")
    p_apps.set_defaults(fn=_cmd_apps)

    p_serve = sub.add_parser(
        "serve",
        help="serve a pool of incremental sessions over JSON frames "
        "(TCP or unix socket)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7777)
    p_serve.add_argument("--unix", default=None, metavar="PATH",
                         help="serve on a unix socket instead of TCP")
    p_serve.add_argument("--mode", choices=["eager", "lazy"], default="lazy",
                         help="default propagation mode for opened documents")
    p_serve.add_argument("--backend", default=None,
                         help="engine backend (default: $REPRO_BACKEND/interp)")
    p_serve.add_argument("--slice-budget", type=int, default=256,
                         help="re-executions per fair-scheduling slice")
    p_serve.add_argument("--on-error",
                         choices=["raise", "rollback", "rebuild"],
                         default="rollback",
                         help="per-document recovery policy")
    p_serve.add_argument("--max-sessions", type=int, default=1024)
    p_serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="durably checkpoint documents here: snapshots "
                              "+ fsync'd write-ahead edit journals; reopened "
                              "documents recover warm after a crash")
    p_serve.add_argument("--checkpoint-every", type=int, default=64,
                         help="acknowledged edits between snapshots "
                              "(default 64)")
    p_serve.add_argument("--no-journal-fsync", action="store_true",
                         help="skip the per-edit fsync (faster acks; a "
                              "crash may lose edits the OS had not flushed)")
    p_serve.add_argument("--max-edits-per-round", type=int, default=None,
                         help="per-document admission quota: staged edits "
                              "per scheduling round")
    p_serve.add_argument("--max-bytes-per-round", type=int, default=None,
                         help="per-document admission quota: staged JSON "
                              "bytes per scheduling round")
    p_serve.add_argument("--max-frame", type=int, default=2**22,
                         help="per-request frame size limit in bytes; "
                              "larger frames get a FrameTooLargeError "
                              "error frame (default 4 MiB)")
    p_serve.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
