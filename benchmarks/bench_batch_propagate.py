"""Batched change propagation vs sequential propagation.

The batching claim: coalescing k input edits into one propagation pass
means every affected read re-executes at most once, while k sequential
edit/propagate rounds re-run the shared upper spine of the computation
(merge layers, reduction trees) up to k times.  On msort the edits land
in distinct leaves but share the root merge path, so a 32-edit batch
must beat 32 sequential propagations by at least 2x.

Also measured: the space side of the tentpole.  500 edit/propagate
rounds (batched, 4 edits each) must leave ``trace_size`` within 1.5x of
a fresh run on the final data -- eager record discard plus table
compaction keep the trace from creeping.

``REPRO_BATCH_SIZES`` overrides the input sizes (e.g. "64" for a CI
smoke run); the claims are only asserted at the defaults.
"""

import os
import random

from repro.api import Session
from repro.apps import REGISTRY
from repro.bench import format_series

from _util import emit, once

_SIZES_ENV = os.environ.get("REPRO_BATCH_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "64 128 256").split()]
_SMOKE = _SIZES_ENV is not None

EDITS = 32
ATTEMPTS = 5
ROUNDS = 125  # x4 edits per round = 500 edits for the space check


def _run_and_edit(n, seed=3):
    """Fresh msort session with EDITS staged-but-unpropagated changes
    queued up by a deterministic editor closure."""
    app = REGISTRY["msort"]
    rng = random.Random(seed)
    session = Session(app)
    session.run(data=app.make_data(n, rng))
    return app, rng, session


def _sequential_time(n):
    """Total seconds over EDITS edit/propagate rounds (edits untimed)."""
    app, rng, session = _run_and_edit(n)
    total = 0.0
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
        total += session.propagate().seconds
    return total


def _batched_time(n):
    """Seconds for the single pass propagating all EDITS staged edits.

    Edits stage without propagating (the uniform edit convention), so a
    batch's cost is exactly one propagate over the coalesced queue.
    """
    app, rng, session = _run_and_edit(n)
    for step in range(EDITS):
        app.apply_change(session.input_handle, rng, step)
    return session.propagate().seconds


def _space_growth():
    """(trace after 500 batched edits) / (fresh-run trace on final data)."""
    app = REGISTRY["map"]
    rng = random.Random(11)
    session = Session(app)
    session.run(data=app.make_data(128, random.Random(11)))
    step = 0
    for _round in range(ROUNDS):
        with session.batch():
            for _ in range(4):
                app.apply_change(session.input_handle, rng, step)
                step += 1
    fresh = Session(app)
    fresh.run(data=app.handle_data(session.input_handle))
    return session.trace_size() / fresh.trace_size(), session.trace_size()


def test_batch_propagate_msort(benchmark, capsys):
    def run():
        sequential = [
            min(_sequential_time(n) for _ in range(ATTEMPTS)) for n in SIZES
        ]
        batched = [
            min(_batched_time(n) for _ in range(ATTEMPTS)) for n in SIZES
        ]
        growth, trace = _space_growth()
        return sequential, batched, growth, trace

    sequential, batched, growth, trace = once(benchmark, run)

    speedups = [s / b for s, b in zip(sequential, batched)]
    series = {
        f"{EDITS} sequential props (s)": sequential,
        f"one {EDITS}-edit batch (s)": batched,
        "batch speedup": speedups,
    }
    text = format_series(
        f"Batched propagation: msort, {EDITS} edits, batch vs sequential",
        SIZES,
        series,
    )
    text += (
        f"\ntrace growth after 500 batched edits (map, n=128): "
        f"{growth:.3f}x fresh run ({trace} records)"
    )

    if not _SMOKE:
        at256 = SIZES.index(256)
        assert speedups[at256] >= 2.0, (
            f"batched propagation lost its 2x edge at n=256: "
            f"{speedups[at256]:.2f}x"
        )
        assert growth <= 1.5, (
            f"trace grew to {growth:.2f}x a fresh run over 500 batched edits"
        )

    emit(capsys, "Batch propagate", text)
