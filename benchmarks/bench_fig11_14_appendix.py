"""Figures 11-14 (appendix): scaling plots for split, qsort, vec-mult,
and mat-add.

For each benchmark: complete-run time (conventional and self-adjusting),
change-propagation time, and speedup across a sweep of input sizes --
the same three series as Figure 6, for four more applications.

Shape claims (paper Section 4.5): "for all our benchmarks, the overheads
of self-adjusting versions are constant and do not depend on the input
size, whereas speedups ... increase with the input size."
"""

import pytest

from repro.apps import REGISTRY
from repro.api import measure_app
from repro.bench import format_series

from _util import emit, once

SWEEPS = {
    "split": [500, 1000, 2000, 4000],
    "qsort": [100, 200, 400, 800],
    "vec-mult": [500, 1000, 2000, 4000],
    "mat-add": [8, 16, 32],
}
FIGURES = {"split": 11, "qsort": 12, "vec-mult": 13, "mat-add": 14}


@pytest.mark.parametrize("name", list(SWEEPS))
def test_appendix_scaling(benchmark, capsys, name):
    app = REGISTRY[name]
    sizes = SWEEPS[name]

    samples = 20 if name == "qsort" else 8

    def run():
        return [
            measure_app(app, n, prop_samples=samples, seed=5, repeats=3)
            for n in sizes
        ]

    rows = once(benchmark, run)
    series = {
        "conv run (s)": [r.conv_run for r in rows],
        "self-adj run (s)": [r.sa_run for r in rows],
        "propagation (s)": [r.avg_prop for r in rows],
        "speedup": [r.speedup for r in rows],
        "overhead": [r.overhead for r in rows],
    }
    text = format_series(
        f"Figure {FIGURES[name]}: {name}", sizes, series, fmt=lambda v: f"{v:.4g}"
    )

    overheads = series["overhead"]
    # Wide bound: sub-10ms wall times jitter on a loaded machine.
    assert max(overheads) < 4.5 * min(overheads), "overhead must stay ~constant"
    # Propagation grows strictly slower than recomputation (with slack for
    # timer noise), so the speedup trend is upward across the sweep.
    conv_growth = series["conv run (s)"][-1] / series["conv run (s)"][0]
    prop_growth = series["propagation (s)"][-1] / max(series["propagation (s)"][0], 1e-12)
    assert prop_growth < 1.2 * conv_growth, "propagation must scale better"
    assert min(series["speedup"]) > 3

    emit(capsys, f"Figure {FIGURES[name]}", text)
