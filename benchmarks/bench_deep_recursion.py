"""Depth sweep: the stack backend vs the interpreter on deep cons chains.

The recursive backends (interp, compiled) nest several Python frames per
list cell, so chain depth is capped by the process recursion limit --
``Engine`` raises it to 600k, which buys roughly 10^5 frames of headroom
and still overflows on a 10^5-element chain.  The stack backend runs the
same program under an explicit control stack: here it is measured with
the recursion limit *clamped to CPython's default of 1000* to demonstrate
that its depth is genuinely bounded, not just deferred.

The sweep maps a cons chain of n ∈ {10^3, 10^4, 10^5} elements, then
edits the head element (the deep-re-execution worst case) and propagates.
Checked claims at the default sizes: the stack backend completes every
size at the default recursion limit, and the interpreter overflows at the
largest -- the workload class that motivates the backend.

``REPRO_DEEP_SWEEP_SIZES`` overrides the sizes (e.g. "1000" for a CI
smoke run); the claims are only asserted at the defaults.
``REPRO_BENCH_REPEAT`` overrides the timing attempts per configuration.
"""

import os
import random
import sys
import time

from repro.apps import REGISTRY
from repro.sac.engine import Engine

from _util import bench_repeat, emit, format_spread_rows, once

_SIZES_ENV = os.environ.get("REPRO_DEEP_SWEEP_SIZES")
SIZES = [int(s) for s in (_SIZES_ENV or "1000 10000 100000").split()]
_SMOKE = _SIZES_ENV is not None

#: CPython's default recursion limit: the stack backend runs under it.
DEFAULT_LIMIT = 1000

ATTEMPTS = bench_repeat(3)


def _measure(backend, n, clamp_limit):
    """One (run, prop) timing of the map app, or None on RecursionError.

    ``clamp_limit`` drops the recursion limit after instance creation
    (the engine constructor raises it); the caller's limit is restored.
    """
    app = REGISTRY["map"]
    rng = random.Random(7)
    data = app.make_data(n, rng)
    engine = Engine()
    instance = app.instance(engine, backend=backend)
    input_value, handle = app.make_sa_input(engine, data)
    saved = sys.getrecursionlimit()
    if clamp_limit is not None:
        sys.setrecursionlimit(clamp_limit)
    try:
        t0 = time.perf_counter()
        instance.apply(input_value)
        t1 = time.perf_counter()
        handle.set(0, 1_000_000_000)
        t2 = time.perf_counter()
        engine.propagate()
        t3 = time.perf_counter()
    except RecursionError:
        return None
    finally:
        sys.setrecursionlimit(saved)
    return t1 - t0, t3 - t2


def _sweep():
    out = {}
    for n in SIZES:
        stack_tries = [
            _measure("stack", n, DEFAULT_LIMIT) for _ in range(ATTEMPTS)
        ]
        interp_tries = [_measure("interp", n, None) for _ in range(ATTEMPTS)]
        out[n] = (stack_tries, interp_tries)
    return out


def _fmt(value):
    return f"{value:>14.5f}" if value is not None else f"{'overflow':>14}"


def test_deep_recursion_sweep(benchmark, capsys):
    results = once(benchmark, _sweep)

    header = (
        f"{'n':>8} {'stack run (s)':>14} {'stack prop (s)':>14} "
        f"{'interp run (s)':>14} {'interp prop (s)':>14}"
    )
    lines = [
        "Depth sweep: map over an n-element cons chain, head edit + propagate",
        f"(stack backend at recursion limit {DEFAULT_LIMIT}; interp at the "
        "engine's raised limit)",
        header,
        "-" * len(header),
    ]
    spread_rows = {}
    for n in SIZES:
        stack_tries, interp_tries = results[n]
        s_runs = [t[0] for t in stack_tries if t]
        s_props = [t[1] for t in stack_tries if t]
        i_runs = [t[0] for t in interp_tries if t]
        i_props = [t[1] for t in interp_tries if t]
        lines.append(
            f"{n:>8} {_fmt(min(s_runs) if s_runs else None)} "
            f"{_fmt(min(s_props) if s_props else None)} "
            f"{_fmt(min(i_runs) if i_runs else None)} "
            f"{_fmt(min(i_props) if i_props else None)}"
        )
        if s_props:
            spread_rows[f"stack prop n={n}"] = s_props
        if i_props:
            spread_rows[f"interp prop n={n}"] = i_props
    text = "\n".join(lines)
    text += "\n\n" + format_spread_rows(
        f"Timing spread over {ATTEMPTS} attempt(s)", spread_rows
    )

    if not _SMOKE:
        for n in SIZES:
            stack_tries, _ = results[n]
            assert all(t is not None for t in stack_tries), (
                f"stack backend overflowed at n={n} "
                f"(recursion limit {DEFAULT_LIMIT})"
            )
        deepest = max(SIZES)
        assert all(t is None for t in results[deepest][1]), (
            f"interp unexpectedly completed n={deepest}; deepen the sweep "
            "so the results still demonstrate the overflow boundary"
        )

    emit(capsys, "Deep recursion", text)
