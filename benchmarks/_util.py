"""Shared plumbing for the benchmark suite.

Input sizes are scaled down from the paper's (we interpret SXML on CPython
rather than compile SML to native code; see DESIGN.md Section 2).  Every
benchmark prints the same rows/series the paper reports, in addition to the
pytest-benchmark timing of a representative operation.
"""

from __future__ import annotations

import contextlib
import io
import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(capsys, title: str, text: str) -> None:
    """Print benchmark output to the real terminal and save it to a file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    filename = title.lower().replace(" ", "_").replace("/", "-") + ".txt"
    with open(os.path.join(RESULTS_DIR, filename), "w") as fh:
        fh.write(text + "\n")
    banner = f"\n===== {title} =====\n"
    if capsys is not None:
        with capsys.disabled():
            print(banner + text)
    else:  # pragma: no cover
        print(banner + text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
