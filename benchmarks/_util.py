"""Shared plumbing for the benchmark suite.

Input sizes are scaled down from the paper's (we interpret SXML on CPython
rather than compile SML to native code; see DESIGN.md Section 2).  Every
benchmark prints the same rows/series the paper reports, in addition to the
pytest-benchmark timing of a representative operation.
"""

from __future__ import annotations

import contextlib
import io
import os
import statistics
from typing import Iterable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_repeat(default: int = 5) -> int:
    """Timing attempts per configuration.

    ``REPRO_BENCH_REPEAT`` overrides (CI smoke runs set it to 1; set it
    higher on a quiet machine for tighter spreads).
    """
    value = os.environ.get("REPRO_BENCH_REPEAT")
    return int(value) if value else default


def spread(samples: Sequence[float]) -> dict:
    """Noise summary of repeated timings: min / median / stddev.

    The *minimum* is the headline number (the standard defense against
    scheduler noise: the fastest attempt is the one with the least
    interference); median and stddev are reported alongside so a noisy
    run is visible in the checked-in results rather than silently folded
    into the headline.
    """
    xs = sorted(samples)
    return {
        "min": xs[0],
        "median": statistics.median(xs),
        "stddev": statistics.pstdev(xs) if len(xs) > 1 else 0.0,
    }


def format_spread_rows(title: str, rows: dict) -> str:
    """Render ``{label: [samples...]}`` as a min/median/stddev table."""
    header = f"{'measurement':<34} {'min (s)':>12} {'median (s)':>12} {'stddev (s)':>12} {'attempts':>9}"
    lines = [title, header, "-" * len(header)]
    for label, samples in rows.items():
        s = spread(samples)
        lines.append(
            f"{label:<34} {s['min']:>12.6f} {s['median']:>12.6f} "
            f"{s['stddev']:>12.6f} {len(samples):>9}"
        )
    return "\n".join(lines)


def emit(capsys, title: str, text: str) -> None:
    """Print benchmark output to the real terminal and save it to a file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    filename = title.lower().replace(" ", "_").replace("/", "-") + ".txt"
    with open(os.path.join(RESULTS_DIR, filename), "w") as fh:
        fh.write(text + "\n")
    banner = f"\n===== {title} =====\n"
    if capsys is not None:
        with capsys.disabled():
            print(banner + text)
    else:  # pragma: no cover
        print(banner + text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
